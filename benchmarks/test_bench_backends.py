"""Benchmarks of the fluid backend and the streamed result sinks.

Two questions are answered here:

* how much cheaper is the fluid backend — a full week of trace through
  ``Scenario(backend="fluid")`` versus the event engine on a 15-minute
  slice (the event engine cannot touch week-scale traces at all; its
  number is the per-15-minutes cost to extrapolate from);
* what does streaming results to a ``JsonlSink`` cost versus
  accumulating them in memory — guarded to stay a rounding error
  (target <5% of sweep wall-clock; asserted with an absolute slack so
  scheduler noise on sub-second sweeps cannot flake the suite).
"""

from __future__ import annotations

import time

from repro.api import (
    BinnedTrace,
    InMemorySink,
    JsonlSink,
    Scenario,
    ScenarioGrid,
    read_jsonl,
    run_grid,
    run_scenario,
)
from repro.workload.synthetic import make_week_trace

#: Policies for the sink-overhead sweep (one fluid run each, millisecond
#: scale — the write path is exercised relative to tiny simulations,
#: which is the *worst case* for relative sink overhead).
SINK_POLICIES = ("SinglePool", "ScaleInst", "ScaleShard", "ScaleFreq", "DynamoLLM")


def _week_scenario():
    bins = make_week_trace("conversation", seed=7, rate_scale=40.0)
    return Scenario(
        policy="DynamoLLM",
        trace=BinnedTrace(name="conversation-week", bins=bins),
        backend="fluid",
    )


def test_fluid_week(benchmark):
    """A full week (2016 x 5-minute bins) on the fluid backend."""
    summary = benchmark.pedantic(
        run_scenario, args=(_week_scenario(),), rounds=1, iterations=1
    )
    assert summary.duration_s == 7 * 24 * 3600.0
    assert summary.energy_kwh > 0.0
    assert summary.carbon is not None and summary.carbon.total_kg > 0.0


def test_event_quarter_hour(benchmark, bench_scenario):
    """The event engine on 15 minutes of trace — the comparison point.

    The fluid week above simulates ~670x more trace time; comparing the
    two wall-clocks shows the backend gap the README documents.
    """
    summary = benchmark.pedantic(
        run_scenario, args=(bench_scenario,), kwargs={"lean": True},
        rounds=1, iterations=1,
    )
    assert summary.energy_kwh > 0.0


def _day_grid():
    bins = make_week_trace("conversation", seed=7, rate_scale=40.0, bin_seconds=900.0)
    trace = BinnedTrace(name="conversation-day", bins=bins[:96])
    return ScenarioGrid(
        Scenario(policy=policy, trace=trace, backend="fluid")
        for policy in SINK_POLICIES
    )


def _sweep_seconds(grid, sink_factory):
    best = float("inf")
    for repeat in range(3):
        # One file per repeat: file sinks append to (never truncate) an
        # existing results file, so reusing a path would accumulate.
        sink = sink_factory(repeat)
        started = time.perf_counter()
        run_grid(grid, sink=sink)
        best = min(best, time.perf_counter() - started)
        assert len(sink.results if hasattr(sink, "results") else read_jsonl(sink.path)) == len(grid)
    return best


def test_jsonl_sink_overhead_guard(tmp_path):
    """Streaming to JSONL must cost ~nothing next to the simulations.

    Best-of-3 sweeps, in-memory vs JSONL.  The guard allows 5% relative
    overhead plus 0.25s absolute slack: on a sweep this small the slack
    dominates, so only a genuinely broken write path (per-write reopen,
    accidental fsync, serialising timelines) can trip it.
    """
    grid = _day_grid()
    in_memory = _sweep_seconds(grid, lambda repeat: InMemorySink())
    jsonl = _sweep_seconds(
        grid, lambda repeat: JsonlSink(str(tmp_path / f"bench{repeat}.jsonl"))
    )
    assert jsonl <= in_memory * 1.05 + 0.25, (jsonl, in_memory)


def test_resume_scan_overhead_guard(tmp_path):
    """Resuming a finished sweep must cost file-scan time, not sim time.

    A full sweep runs once; rerunning it with ``resume=True`` skips
    every scenario before traces are materialised, so the rerun must be
    far cheaper than the sweep itself (bounded here at half the original
    wall-clock plus scheduler slack — in practice it is milliseconds).
    """
    grid = _day_grid()
    path = str(tmp_path / "resume.jsonl")
    started = time.perf_counter()
    run_grid(grid, sink=JsonlSink(path))
    full = time.perf_counter() - started

    started = time.perf_counter()
    sink = run_grid(grid, sink=JsonlSink(path, resume=True))
    rerun = time.perf_counter() - started
    assert sink.report.skipped == len(grid) and sink.report.ran == 0
    assert len(read_jsonl(path)) == len(grid)
    assert rerun <= full * 0.5 + 0.1, (rerun, full)


def test_streamed_sweep_matches_accumulated(tmp_path):
    """The streamed records carry the same numbers as an in-memory run."""
    grid = _day_grid()
    path = tmp_path / "stream.jsonl"
    run_grid(grid, sink=JsonlSink(str(path)))
    summaries = run_grid(grid)
    by_key = {record["scenario"]: record for record in read_jsonl(str(path))}
    assert set(by_key) == set(summaries)
    for key, summary in summaries.items():
        assert by_key[key]["energy_kwh"] == summary.energy_kwh
        assert by_key[key]["gpu_hours"] == summary.gpu_hours
