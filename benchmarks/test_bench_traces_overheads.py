"""Benchmarks regenerating Figures 1-3 (trace characterisation, overheads)."""

from __future__ import annotations

from repro.experiments.overheads import figure3_frequency_switch_throughput
from repro.experiments.traces import figure1_request_mix, figure2_weekly_load, weekly_load_statistics


def test_figure1_request_mix(benchmark):
    """Figure 1: daily request-type distribution per service."""
    mix = benchmark.pedantic(figure1_request_mix, rounds=1, iterations=1)
    print("\nFigure 1 — request-type mix per day (fractions)")
    for service, per_day in mix.items():
        for day, fractions in per_day.items():
            top = sorted(fractions.items(), key=lambda item: -item[1])[:3]
            print(f"  {service:12s} {day}: " + ", ".join(f"{k}={v:.2f}" for k, v in top))
    assert set(mix) == {"coding", "conversation"}


def test_figure2_weekly_load(benchmark):
    """Figure 2: normalised weekly load per service."""
    series = benchmark.pedantic(figure2_weekly_load, rounds=1, iterations=1)
    stats = weekly_load_statistics()
    print("\nFigure 2 — weekly load statistics")
    for service, values in stats.items():
        print(
            f"  {service}: peak/average {values['peak_over_average']:.1f}x, "
            f"peak/valley {values['peak_over_valley']:.1f}x"
        )
    assert stats["coding"]["peak_over_valley"] > stats["conversation"]["peak_over_valley"]
    assert all(len(points) == 168 for points in series.values())


def test_figure3_frequency_switch_throughput(benchmark):
    """Figure 3: throughput with constant vs per-iteration frequency setting."""
    rows = benchmark(figure3_frequency_switch_throughput)
    print("\nFigure 3 — throughput (requests/s) per request type")
    for name, row in rows.items():
        print(
            f"  {name}: const={row['const_freq_rps']:.1f}  "
            f"switch={row['switch_freq_rps']:.1f}  optimized={row['optimized_switch_rps']:.1f}"
        )
    assert all(row["switch_freq_rps"] < row["const_freq_rps"] for row in rows.values())
