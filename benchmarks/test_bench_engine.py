"""Benchmarks of the unified scenario/engine API.

Measures the stepped :class:`~repro.api.engine.SimulationEngine` with the
full observer set against ``lean=True`` (summary observers only), and a
12-scenario sweep serial vs thread-parallel.  The lean and parallel modes
exist purely for sweep speed — their summary metrics are asserted equal
to the full/serial runs.
"""

from __future__ import annotations

import pickle

from repro.api.executor import run_grid, run_scenario, runs


def _engine_run(scenario, lean):
    return run_scenario(scenario, lean=lean)


def test_engine_full_observers(benchmark, bench_scenario):
    """One DynamoLLM run with the full observer set (timelines included)."""
    summary = benchmark.pedantic(
        _engine_run, args=(bench_scenario, False), rounds=1, iterations=1
    )
    assert summary.energy_kwh > 0.0
    assert summary.frequency_timeline  # timelines recorded


def test_engine_lean_observers(benchmark, bench_scenario):
    """Same run with lean observers — same summary metrics, no timelines."""
    summary = benchmark.pedantic(
        _engine_run, args=(bench_scenario, True), rounds=1, iterations=1
    )
    assert summary.energy_kwh > 0.0
    assert not summary.frequency_timeline  # timelines skipped

    reference = run_scenario(bench_scenario, lean=False)
    assert summary.energy_kwh == reference.energy_kwh
    assert summary.latency.count == reference.latency.count


def test_sweep_serial(benchmark, bench_grid):
    """12-scenario sweep executed serially."""
    results = benchmark.pedantic(
        run_grid, args=(bench_grid,), kwargs={"lean": True}, rounds=1, iterations=1
    )
    assert len(results) == len(bench_grid)


def test_lean_transfer_payload_regression(bench_scenario):
    """Lean sweep results must stay cheap to pickle (process-pool transfer).

    ``run_grid(mode="process")`` sends every RunSummary back through a
    pipe; before compaction the per-request outcome objects dominated
    short scenarios.  Guard both the relative win over a full summary
    and an absolute per-request byte budget, and check the compact
    summary still answers every headline query identically.
    """
    full = run_scenario(bench_scenario, lean=False)
    (lean,) = runs([bench_scenario], lean=True)

    full_bytes = len(pickle.dumps(full))
    lean_bytes = len(pickle.dumps(lean))
    requests = full.latency.count
    assert lean_bytes < full_bytes / 4, (lean_bytes, full_bytes)
    assert lean_bytes / max(1, requests) < 64.0, (lean_bytes, requests)

    assert lean.energy_kwh == full.energy_kwh
    assert lean.latency.count == full.latency.count
    assert lean.latency.ttft_percentile(99) == full.latency.ttft_percentile(99)
    assert lean.latency.tbt_percentile(50) == full.latency.tbt_percentile(50)
    assert lean.slo_attainment() == full.slo_attainment()
    assert lean.power.mean_cluster_power() == full.power.mean_cluster_power()
    assert lean.carbon.total_kg == full.carbon.total_kg
    assert lean.cost.total_usd == full.cost.total_usd


def test_sweep_parallel(benchmark, bench_grid):
    """Same sweep on four worker threads — results must match serial."""
    results = benchmark.pedantic(
        run_grid,
        args=(bench_grid,),
        kwargs={"workers": 4, "lean": True},
        rounds=1,
        iterations=1,
    )
    assert len(results) == len(bench_grid)
    serial = run_grid(bench_grid, lean=True)
    assert {k: s.energy_kwh for k, s in results.items()} == {
        k: s.energy_kwh for k, s in serial.items()
    }
