"""Benchmarks of the unified scenario/engine API.

Measures the stepped :class:`~repro.api.engine.SimulationEngine` with the
full observer set against ``lean=True`` (summary observers only), and a
12-scenario sweep serial vs thread-parallel.  The lean and parallel modes
exist purely for sweep speed — their summary metrics are asserted equal
to the full/serial runs.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.api.executor import run_grid, run_scenario, runs


def _engine_run(scenario, lean):
    return run_scenario(scenario, lean=lean)


def test_engine_full_observers(benchmark, bench_scenario):
    """One DynamoLLM run with the full observer set (timelines included)."""
    summary = benchmark.pedantic(
        _engine_run, args=(bench_scenario, False), rounds=1, iterations=1
    )
    assert summary.energy_kwh > 0.0
    assert summary.frequency_timeline  # timelines recorded


def test_engine_lean_observers(benchmark, bench_scenario):
    """Same run with lean observers — same summary metrics, no timelines."""
    summary = benchmark.pedantic(
        _engine_run, args=(bench_scenario, True), rounds=1, iterations=1
    )
    assert summary.energy_kwh > 0.0
    assert not summary.frequency_timeline  # timelines skipped

    reference = run_scenario(bench_scenario, lean=False)
    assert summary.energy_kwh == reference.energy_kwh
    assert summary.latency.count == reference.latency.count


def test_sweep_serial(benchmark, bench_grid):
    """12-scenario sweep executed serially."""
    results = benchmark.pedantic(
        run_grid, args=(bench_grid,), kwargs={"lean": True}, rounds=1, iterations=1
    )
    assert len(results) == len(bench_grid)


def test_lean_transfer_payload_regression(bench_scenario):
    """Lean sweep results must stay cheap to pickle (process-pool transfer).

    ``run_grid(mode="process")`` sends every RunSummary back through a
    pipe; before compaction the per-request outcome objects dominated
    short scenarios.  Guard both the relative win over a full summary
    and an absolute per-request byte budget, and check the compact
    summary still answers every headline query identically.
    """
    full = run_scenario(bench_scenario, lean=False)
    (lean,) = runs([bench_scenario], lean=True)

    full_bytes = len(pickle.dumps(full))
    lean_bytes = len(pickle.dumps(lean))
    requests = full.latency.count
    assert lean_bytes < full_bytes / 4, (lean_bytes, full_bytes)
    assert lean_bytes / max(1, requests) < 64.0, (lean_bytes, requests)

    assert lean.energy_kwh == full.energy_kwh
    assert lean.latency.count == full.latency.count
    assert lean.latency.ttft_percentile(99) == full.latency.ttft_percentile(99)
    assert lean.latency.tbt_percentile(50) == full.latency.tbt_percentile(50)
    assert lean.slo_attainment() == full.slo_attainment()
    assert lean.power.mean_cluster_power() == full.power.mean_cluster_power()
    assert lean.carbon.total_kg == full.carbon.total_kg
    assert lean.cost.total_usd == full.cost.total_usd


def test_sweep_parallel(benchmark, bench_grid):
    """Same sweep on four worker threads — results must match serial."""
    results = benchmark.pedantic(
        run_grid,
        args=(bench_grid,),
        kwargs={"workers": 4, "lean": True},
        rounds=1,
        iterations=1,
    )
    assert len(results) == len(bench_grid)
    serial = run_grid(bench_grid, lean=True)
    assert {k: s.energy_kwh for k, s in results.items()} == {
        k: s.energy_kwh for k, s in serial.items()
    }


# ----------------------------------------------------------------------
# Performance trajectory: the event-engine campaign wall-clock is pinned
# in BENCH_event_engine.json at the repository root.
# ----------------------------------------------------------------------
BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_event_engine.json"


def _host_fingerprint():
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
    }


def _same_host_class(recorded, current):
    return (recorded.get("machine"), recorded.get("cpu_count")) == (
        current.get("machine"),
        current.get("cpu_count"),
    )


def test_event_engine_campaign_trajectory(tmp_path):
    """Run the bundled event-backend sensitivity campaign and pin its speed.

    The 72-scenario ``accuracy_slo_wide`` campaign is the workload the
    vectorized engine hot path was built for.  Every run measures the
    serial wall-clock; with ``REPRO_BENCH_RECORD=1`` (the CI bench leg
    sets it) the measurement is appended to ``BENCH_event_engine.json``
    so the performance trajectory accumulates alongside the code.  A run
    slower than ``regression_threshold`` x the best recorded run on a
    matching host class (machine + cpu_count) fails; hosts with no
    recorded baseline only record.
    """
    from repro.api import read_jsonl
    from repro.experiments.manifests import run_bundled_campaign

    out = tmp_path / "campaign.jsonl"
    start = time.perf_counter()
    run_bundled_campaign("accuracy_slo_wide", out=str(out), workers=1)
    elapsed = time.perf_counter() - start

    # The manifest may shard its results file; collect every shard.
    records = [
        record
        for path in sorted(tmp_path.glob("campaign*.jsonl"))
        for record in read_jsonl(str(path))
    ]
    assert len(records) == 72, len(records)
    assert all(r["error"] is None for r in records)
    requests = sum(int(r["requests"]) for r in records)
    assert requests > 0

    data = json.loads(BENCH_FILE.read_text())
    host = _host_fingerprint()
    baseline = [r for r in data["runs"] if _same_host_class(r["host"], host)]
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "elapsed_s": round(elapsed, 3),
        "scenarios": len(records),
        "requests": requests,
        "requests_per_s": round(requests / elapsed, 1),
        "workers": 1,
        "host": host,
    }
    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        data["runs"].append(entry)
        BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")

    if not baseline:
        pytest.skip(
            f"no recorded baseline for host class {host['machine']}/"
            f"{host['cpu_count']}cpu; measured {elapsed:.2f}s"
        )
    best = min(r["elapsed_s"] for r in baseline)
    threshold = data.get("regression_threshold", 1.2)
    assert elapsed <= best * threshold, (
        f"event-engine campaign regressed: {elapsed:.2f}s vs best recorded "
        f"{best:.2f}s on this host class ({threshold}x threshold)"
    )
