"""Benchmarks regenerating Figures 14-16 and the cost analysis (Section V-D/E/F)."""

from __future__ import annotations

from repro.experiments.large_scale import (
    cost_summary,
    figure14_weekly_energy,
    figure15_daily_energy,
    figure16_carbon,
)

#: Week-long fluid runs at a scale that spans tens of servers at peak while
#: keeping the benchmark runtime reasonable.
RATE_SCALE = 25.0


def test_figure14_weekly_energy(benchmark):
    """Figure 14: normalised weekly energy for Conversation and Coding."""
    result = benchmark.pedantic(
        lambda: figure14_weekly_energy(rate_scale=RATE_SCALE), rounds=1, iterations=1
    )
    print("\nFigure 14 — normalised weekly energy")
    for service, values in result.items():
        rendered = ", ".join(f"{name}={value:.2f}" for name, value in values.items())
        print(f"  {service}: {rendered}")
    for service in result:
        assert result[service]["DynamoLLM"] < 0.7
    # Coding has deeper valleys, so DynamoLLM saves more there.
    assert result["coding"]["DynamoLLM"] < result["conversation"]["DynamoLLM"]


def test_figure15_daily_energy(benchmark):
    """Figure 15: energy per 5-minute interval over a day."""
    series = benchmark.pedantic(
        lambda: figure15_daily_energy(rate_scale=RATE_SCALE), rounds=1, iterations=1
    )
    base_total = sum(value for _, value in series["SinglePool"])
    dynamo_total = sum(value for _, value in series["DynamoLLM"])
    print("\nFigure 15 — daily energy (kWh)")
    print(f"  SinglePool: {base_total:.1f} kWh   DynamoLLM: {dynamo_total:.1f} kWh")
    print(f"  daily saving: {1.0 - dynamo_total / base_total:.0%}")
    assert dynamo_total < base_total
    assert len(series["SinglePool"]) == len(series["DynamoLLM"]) == 288


def test_figure16_carbon(benchmark):
    """Figure 16: operational carbon emissions over the week."""
    result = benchmark.pedantic(
        lambda: figure16_carbon(rate_scale=RATE_SCALE), rounds=1, iterations=1
    )
    print("\nFigure 16 — weekly operational CO2")
    for name, tonnes in result["weekly_tonnes"].items():
        print(f"  {name}: {tonnes:.2f} t")
    print(f"  saving: {result['saving_fraction']:.0%}")
    assert result["weekly_tonnes"]["DynamoLLM"] < result["weekly_tonnes"]["SinglePool"]
    assert result["saving_fraction"] > 0.2


def test_cost_summary(benchmark):
    """Section V-F: GPU and energy cost savings over the week."""
    result = benchmark.pedantic(lambda: cost_summary(rate_scale=RATE_SCALE), rounds=1, iterations=1)
    print("\nCost analysis (week, Conversation)")
    print(
        f"  servers: {result['baseline_avg_servers']:.1f} -> {result['dynamo_avg_servers']:.1f}   "
        f"cost saving: {result['saving_fraction']:.0%}   "
        f"GPU saving: ${result['gpu_saving_usd_per_hour']:.0f}/h   "
        f"energy saving: ${result['energy_saving_usd_per_hour']:.2f}/h"
    )
    assert result["saving_fraction"] > 0.2
    assert result["gpu_saving_usd_per_hour"] > result["energy_saving_usd_per_hour"]
