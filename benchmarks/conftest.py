"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Heavy
cluster simulations run with ``rounds=1`` via ``benchmark.pedantic`` so
the harness stays tractable; the analytical tables run as ordinary
benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.llm.catalog import LLAMA2_70B
from repro.perf.profiler import get_default_profile
from repro.workload.synthetic import make_one_hour_trace


@pytest.fixture(scope="session")
def profile():
    return get_default_profile(LLAMA2_70B)


@pytest.fixture(scope="session")
def bench_trace():
    """A 15-minute slice of the 1-hour trace used for cluster benchmarks."""
    trace = make_one_hour_trace("conversation", seed=7, rate_scale=10.0)
    return trace.slice(0.0, 900.0)


@pytest.fixture(scope="session")
def bench_config(profile):
    return ExperimentConfig(profile=profile, max_servers=24)
