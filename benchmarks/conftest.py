"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Heavy
cluster simulations run with ``rounds=1`` via ``benchmark.pedantic`` so
the harness stays tractable; the analytical tables run as ordinary
benchmarks.  The engine benchmarks (``test_bench_engine.py``) compare
the unified ``repro.api`` engine in full and lean observer modes.
"""

from __future__ import annotations

import pytest

from repro.api.scenario import Scenario, TraceSpec
from repro.experiments.runner import ExperimentConfig
from repro.llm.catalog import LLAMA2_70B
from repro.perf.profiler import get_default_profile
from repro.workload.synthetic import make_one_hour_trace


@pytest.fixture(scope="session")
def profile():
    return get_default_profile(LLAMA2_70B)


@pytest.fixture(scope="session")
def bench_trace():
    """A 15-minute slice of the 1-hour trace used for cluster benchmarks."""
    trace = make_one_hour_trace("conversation", seed=7, rate_scale=10.0)
    return trace.slice(0.0, 900.0)


@pytest.fixture(scope="session")
def bench_config(profile):
    return ExperimentConfig(profile=profile, max_servers=24)


@pytest.fixture(scope="session")
def bench_scenario(bench_trace, bench_config):
    """A DynamoLLM scenario over the benchmark trace (engine benchmarks)."""
    return Scenario(policy="DynamoLLM", trace=bench_trace, base_config=bench_config)


@pytest.fixture(scope="session")
def bench_grid(bench_config):
    """A 12-scenario grid for sweep benchmarks (2 policies x 2 acc x 3 SLO)."""
    from repro.api.scenario import sweep

    return sweep(
        policies=("SinglePool", "DynamoLLM"),
        traces=(TraceSpec(rate_scale=6.0, duration_s=300.0),),
        accuracies=(None, 0.8),
        slo_scales=(None, 2.0, 4.0),
        base_config=bench_config,
    )
