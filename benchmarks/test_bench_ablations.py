"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the value of individual
mechanisms: the hierarchical decomposition vs the exact optimiser, the
minimal-movement re-sharding planner vs a naive full reload, and
fragmentation handling.
"""

from __future__ import annotations

from repro.api import SimulationEngine
from repro.core.optimizer import plan_global, plan_sharding
from repro.core.resharding import CANONICAL_LAYOUTS, plan_reshard
from repro.policies import DYNAMO_LLM
from repro.policies.base import PolicySpec


def test_hierarchical_vs_global_optimizer(benchmark, profile):
    """How close the per-pool heuristic gets to the exact Equation-1 optimum."""

    def run():
        gaps = []
        for request_type, load in (("SS", 1500.0), ("MM", 4000.0), ("LL", 6000.0)):
            heuristic = plan_sharding(profile, request_type, total_gpus=24, load_tps=load)
            exact = plan_global(profile, request_type, total_gpus=24, load_tps=load)
            gaps.append(
                (request_type, heuristic.expected_power_watts, exact.expected_power_watts)
            )
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — hierarchical heuristic vs exact optimiser (expected W)")
    for request_type, heuristic_power, exact_power in gaps:
        print(
            f"  {request_type}: heuristic={heuristic_power:7.1f} W  exact={exact_power:7.1f} W  "
            f"gap={(heuristic_power / exact_power - 1.0):+.1%}"
        )
    # The heuristic can never beat the exact optimum, and stays within a
    # small constant factor of it (it fixes the frequency at the maximum and
    # uses a single TP degree per pool, so some gap is expected).
    for _type, heuristic_power, exact_power in gaps:
        assert heuristic_power >= exact_power - 1e-6
        assert heuristic_power <= exact_power * 2.0


def test_resharding_matching_vs_naive(benchmark):
    """Data moved by the max-matching planner vs a naive full re-load."""

    def run():
        rows = []
        for source in ("TP2", "TP4", "2TP4", "TP8"):
            for destination in ("TP4", "TP8", "4TP2"):
                plan = plan_reshard(CANONICAL_LAYOUTS[source], CANONICAL_LAYOUTS[destination])
                naive_shards = sum(
                    len(shards) for shards in CANONICAL_LAYOUTS[destination].gpu_shards()
                )
                rows.append((source, destination, plan.shards_moved, naive_shards))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — shards moved: matching planner vs naive reload")
    total_plan = total_naive = 0
    for source, destination, moved, naive in rows:
        total_plan += moved
        total_naive += naive
        print(f"  {source:>5s} -> {destination:<5s}: {moved:2d} vs {naive:2d} eighths")
    print(f"  total: {total_plan} vs {total_naive} ({1 - total_plan / total_naive:.0%} less data moved)")
    assert total_plan < total_naive


def test_fragmentation_handling_ablation(benchmark, bench_trace, bench_config):
    """DynamoLLM with and without cross-pool fragmentation handling."""
    no_fragmentation = PolicySpec(
        name="Dynamo-NoFrag",
        multi_pool=True,
        scale_instances=True,
        scale_sharding=True,
        scale_frequency=True,
        proactive_provisioning=True,
        fragmentation_handling=False,
        overhead_aware=True,
        emergency_handling=True,
    )
    trace = bench_trace.slice(0.0, 600.0)

    def run():
        with_fragmentation = SimulationEngine(DYNAMO_LLM, trace, bench_config).run()
        without_fragmentation = SimulationEngine(no_fragmentation, trace, bench_config).run()
        return with_fragmentation, without_fragmentation

    with_frag, without_frag = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — fragmentation handling")
    print(
        f"  with:    {with_frag.energy_kwh:.3f} kWh, {with_frag.average_servers:.1f} servers, "
        f"SLO {with_frag.slo_attainment():.3f}"
    )
    print(
        f"  without: {without_frag.energy_kwh:.3f} kWh, {without_frag.average_servers:.1f} servers, "
        f"SLO {without_frag.slo_attainment():.3f}"
    )
    # Consolidating trickle pools must not use more servers than keeping them.
    assert with_frag.average_servers <= without_frag.average_servers + 0.5
