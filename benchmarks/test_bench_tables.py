"""Benchmarks regenerating the paper's Tables I-VI."""

from __future__ import annotations

from repro.experiments.characterization import (
    format_heatmap,
    table1_energy_heatmap,
    table2_load_sweep,
    table3_model_sweep,
    table4_slo_table,
)
from repro.experiments.overheads import (
    format_matrix,
    table5_instance_creation,
    table6_resharding_matrix,
)


def test_table1_energy_heatmap(benchmark):
    """Table I: energy per request type x TP x frequency (Llama2-70B, 2K TPS)."""
    rows = benchmark(table1_energy_heatmap)
    print("\nTable I — energy (Wh/request), '--' = SLO violated")
    for line in format_heatmap(rows):
        print(line)
    assert all(rows["LL"][f"TP2@{f}"] is None for f in (800, 1200, 1600, 1980))
    assert rows["SS"]["TP2@1600"] is not None


def test_table2_load_sweep(benchmark):
    """Table II: energy for MM requests under low/medium/high load."""
    rows = benchmark(table2_load_sweep)
    print("\nTable II — MM requests across load levels")
    for line in format_heatmap(rows):
        print(line)
    # Higher load shrinks the feasible region (the paper's key observation).
    feasible = {
        level: sum(1 for value in row.values() if value is not None)
        for level, row in rows.items()
    }
    assert feasible["low"] > feasible["medium"] > feasible["high"]


def test_table3_model_sweep(benchmark):
    """Table III: energy for MM requests across the model catalog."""
    rows = benchmark(table3_model_sweep)
    print("\nTable III — MM requests across models")
    for line in format_heatmap(rows):
        print(line)
    assert rows["Llama2-13B"]["TP2@1200"] is not None
    assert all(rows["Falcon-180B"][f"TP2@{f}"] is None for f in (800, 1200, 1600, 1980))


def test_table4_slo_table(benchmark):
    """Table IV: classification thresholds and SLOs."""
    table = benchmark(table4_slo_table)
    print("\nTable IV — thresholds and SLOs")
    for name, row in table.items():
        print(
            f"  {name}: input<{row['input_threshold']:.0f}, output<{row['output_threshold']:.0f}, "
            f"TTFT {row['ttft_slo_s'] * 1000:.0f} ms, TBT {row['tbt_slo_s'] * 1000:.0f} ms"
        )
    assert table["SS"]["ttft_slo_s"] == 0.25


def test_table5_instance_creation(benchmark):
    """Table V: overheads of creating a new inference server."""
    table = benchmark(table5_instance_creation)
    print("\nTable V — instance-creation overheads (seconds)")
    for path, breakdown in table.items():
        print(f"  {path}: {breakdown}")
    assert table["cold_boot"]["total"] > 300


def test_table6_resharding_matrix(benchmark):
    """Table VI: re-sharding transfer time between layouts (units of T)."""
    matrix = benchmark(table6_resharding_matrix)
    print("\nTable VI — re-sharding overheads (units of T)")
    for line in format_matrix(matrix):
        print(line)
    print(f"  T = {matrix['_unit_T_s']['T'] * 1000:.1f} ms for Llama2-70B over NVLink")
    assert matrix["TP4"]["TP8"] == 1
    assert matrix["TP2"]["4TP2"] == 4
