"""Benchmarks of the whole-program linter over the real tree.

Two guards back the CI wiring: the cold full-tree lint must stay
tractable (it runs on every push), and the warm run against a populated
cache must be at least 5x faster than the cold run — the incremental
cache is only worth carrying if it actually short-circuits the
per-file rule passes.
"""

from __future__ import annotations

import os
import time

from repro.lint.engine import iter_python_files, lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The same roots the CI lint job checks.
LINT_ROOTS = tuple(
    os.path.join(REPO_ROOT, leaf)
    for leaf in ("src", "tests", "benchmarks", "examples")
)

#: Cold full-tree wall-clock ceiling, with generous CI-runner slack (the
#: local cold run is ~2-3 s).
COLD_BUDGET_S = 30.0

#: Required warm-over-cold speedup from a populated cache.
MIN_WARM_SPEEDUP = 5.0


def _tree_files():
    return list(iter_python_files(LINT_ROOTS))


def test_cold_full_tree_lint(benchmark, tmp_path):
    """Cold lint of the whole tree (graph build + every rule pass)."""
    cache = str(tmp_path / "lint-cache.json")
    report = benchmark.pedantic(
        lint_paths, args=(_tree_files(),), kwargs={"cache": cache},
        rounds=1, iterations=1,
    )
    assert report.files_checked > 100
    assert report.files_reused == 0
    assert benchmark.stats.stats.max <= COLD_BUDGET_S


def test_warm_cache_speedup(benchmark, tmp_path):
    """Warm run must reuse every file and beat the cold run by >= 5x."""
    cache = str(tmp_path / "lint-cache.json")
    files = _tree_files()

    started = time.perf_counter()
    cold = lint_paths(files, cache=cache)
    cold_s = time.perf_counter() - started

    warm = benchmark.pedantic(
        lint_paths, args=(files,), kwargs={"cache": cache},
        rounds=1, iterations=1,
    )
    warm_s = benchmark.stats.stats.max

    assert warm.files_reused == warm.files_checked == cold.files_checked
    assert warm.findings == cold.findings
    assert warm_s * MIN_WARM_SPEEDUP <= cold_s, (warm_s, cold_s)
