"""Benchmarks regenerating Figures 11-13: the sensitivity studies."""

from __future__ import annotations

from repro.experiments.runner import ExperimentConfig
from repro.experiments.sensitivity import (
    compare_levels,
    figure11_predictor_accuracy,
    figure12_load_levels,
    figure13_pool_count,
)
from repro.workload.synthetic import make_one_hour_trace

_SENS_TRACE = None


def _sensitivity_trace():
    global _SENS_TRACE
    if _SENS_TRACE is None:
        _SENS_TRACE = make_one_hour_trace("conversation", seed=7, rate_scale=8.0).slice(0.0, 600.0)
    return _SENS_TRACE


def test_figure11_predictor_accuracy(benchmark, profile):
    """Figure 11: energy and TTFT vs output-length predictor accuracy."""
    config = ExperimentConfig(profile=profile, max_servers=24)

    def run():
        return figure11_predictor_accuracy(
            accuracies=(1.0, 0.8, 0.5), trace=_sensitivity_trace(), config=config
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFigure 11 — sensitivity to predictor accuracy")
    for name, row in results.items():
        print(
            f"  {name:11s} energy={row['energy_kwh']:6.3f} kWh  "
            f"p99 TTFT={row['p99_ttft_s']:5.2f} s  SLO={row['slo_attainment']:.3f}"
        )
    # Mis-predictions cost energy/latency only modestly (robustness claim).
    assert results["Dyn-50%"]["energy_kwh"] < results["SinglePool"]["energy_kwh"]
    assert results["Dyn-100%"]["energy_kwh"] <= results["Dyn-50%"]["energy_kwh"] * 1.3


def test_figure12_load_levels(benchmark, profile):
    """Figure 12: energy of the six systems under Poisson load levels."""
    config = ExperimentConfig(profile=profile, max_servers=24)

    def run():
        return figure12_load_levels(
            levels=("low", "medium", "high"), duration_s=600.0, config=config, load_multiplier=4.0
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    savings = compare_levels(results)
    print("\nFigure 12 — energy (kWh) per load level")
    for level, energies in results.items():
        rendered = ", ".join(f"{name}={value:.2f}" for name, value in energies.items())
        print(f"  {level:6s}: {rendered}")
        print(f"          DynamoLLM saving vs SinglePool: {savings[level]['DynamoLLM']:.0%}")
    # Savings shrink as the load grows (less SLO slack), but stay positive.
    assert savings["low"]["DynamoLLM"] > savings["high"]["DynamoLLM"] > 0.0


def test_figure13_pool_count(benchmark, profile):
    """Figure 13: energy and TTFT vs the number of request pools."""
    config = ExperimentConfig(profile=profile, max_servers=24)

    def run():
        return figure13_pool_count(pool_counts=(2, 4, 9), trace=_sensitivity_trace(), config=config)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFigure 13 — sensitivity to the number of pools")
    for count, row in results.items():
        print(
            f"  {count} pools: energy={row['energy_kwh']:6.3f} kWh  "
            f"p99 TTFT={row['p99_ttft_s']:5.2f} s  SLO={row['slo_attainment']:.3f}"
        )
    assert set(results) == {2, 4, 9}
    assert all(row["energy_kwh"] > 0 for row in results.values())
