"""Benchmarks regenerating Figures 6-10: the cluster-level evaluation.

One simulation of the six systems over a slice of the 1-hour trace
feeds all five figures, exactly as in the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments.cluster_eval import (
    figure6_energy_by_system,
    figure7_latency_percentiles,
    figure8_power_percentiles,
    figure9_frequency_timeline,
    figure10_sharding_timeline,
    normalized_energy,
)
from repro.api import run_policies
from repro.policies import ALL_POLICIES


@pytest.fixture(scope="module")
def summaries(bench_trace, bench_config):
    """Shared six-system run (computed once per benchmark session)."""
    return run_policies(bench_trace, ALL_POLICIES, bench_config)


def test_figure6_energy_by_system(benchmark, bench_trace, bench_config, summaries):
    """Figure 6: energy per system with per-request-type breakdown."""
    def extract():
        return figure6_energy_by_system(summaries)

    energy = benchmark.pedantic(extract, rounds=1, iterations=1)
    normalized = normalized_energy(summaries)
    print("\nFigure 6 — energy per system (kWh), normalised to SinglePool")
    for name, breakdown in energy.items():
        print(f"  {name:11s} total={breakdown['total']:7.3f} kWh  ({normalized[name]:.2f}x)")
    assert normalized["DynamoLLM"] < 0.8
    assert normalized["DynamoLLM"] <= min(
        value for name, value in normalized.items() if name != "DynamoLLM"
    ) + 1e-9


def test_figure7_latency_percentiles(benchmark, summaries):
    """Figure 7: TTFT/TBT percentiles per system."""
    table = benchmark.pedantic(lambda: figure7_latency_percentiles(summaries), rounds=1, iterations=1)
    print("\nFigure 7 — latency percentiles (seconds)")
    for name, row in table.items():
        print(
            f"  {name:11s} TTFT p50={row['ttft_s'][50]:.3f} p99={row['ttft_s'][99]:.3f}   "
            f"TBT p50={row['tbt_s'][50]:.4f} p99={row['tbt_s'][99]:.4f}"
        )
    # Every system keeps the TBT tail under the 100 ms SLO.
    assert all(row["tbt_s"][99] < 0.1 for row in table.values())
    # Separating pools removes head-of-line blocking relative to SinglePool.
    assert table["MultiPool"]["ttft_s"][99] <= table["SinglePool"]["ttft_s"][99]


def test_figure8_power_percentiles(benchmark, summaries):
    """Figure 8: cluster and per-GPU power percentiles per system."""
    table = benchmark.pedantic(lambda: figure8_power_percentiles(summaries), rounds=1, iterations=1)
    print("\nFigure 8 — power percentiles")
    for name, row in table.items():
        print(
            f"  {name:11s} cluster p50={row['cluster_kw'][50]:6.1f} kW p99={row['cluster_kw'][99]:6.1f} kW   "
            f"per-GPU p50={row['per_gpu_w'][50]:5.0f} W p99={row['per_gpu_w'][99]:5.0f} W"
        )
    assert table["DynamoLLM"]["cluster_kw"][50] < table["SinglePool"]["cluster_kw"][50]
    assert table["DynamoLLM"]["per_gpu_w"][50] < table["SinglePool"]["per_gpu_w"][50]


def test_figure9_frequency_timeline(benchmark, summaries):
    """Figure 9: average GPU frequency over time for DynamoLLM."""
    series = benchmark.pedantic(
        lambda: figure9_frequency_timeline(summaries, pools=("SL", "LL")), rounds=1, iterations=1
    )
    total = [value for _, value in series["total"] if value > 0]
    print("\nFigure 9 — average GPU frequency (MHz) over time (DynamoLLM)")
    print(f"  mean={sum(total) / len(total):.0f}  min={min(total):.0f}  max={max(total):.0f}")
    # DynamoLLM runs well below the 1980 MHz the baseline pins.
    assert sum(total) / len(total) < 1900.0


def test_figure10_sharding_timeline(benchmark, summaries):
    """Figure 10: GPUs per TP degree over time for DynamoLLM."""
    series = benchmark.pedantic(
        lambda: figure10_sharding_timeline(summaries, pools=("SL", "ML", "LL")),
        rounds=1,
        iterations=1,
    )
    total = series["total"]
    peak_by_tp = {tp: max(value for _, value in total[tp]) for tp in ("TP2", "TP4", "TP8")}
    print("\nFigure 10 — peak GPUs per sharding (DynamoLLM):", peak_by_tp)
    # The cluster uses more than one tensor-parallel degree over the run.
    assert sum(1 for value in peak_by_tp.values() if value > 0) >= 2
