"""Tests for the cluster simulator: frequency, VM, instance, server, cluster."""

import pytest

from repro.cluster.cluster import GPUCluster
from repro.cluster.frequency import FrequencyController
from repro.cluster.instance import InferenceInstance
from repro.cluster.server import Server
from repro.cluster.vm import VMProvisioner
from repro.core.hw import (
    DEFAULT_SWITCH_OVERHEAD_S,
    OPTIMIZED_SWITCH_OVERHEAD_S,
    cold_boot_time_s,
    warm_boot_time_s,
)
from repro.llm.catalog import LLAMA2_70B
from repro.workload.request import Request


def make_request(arrival=0.0, n_in=600, n_out=50):
    return Request(arrival_time=arrival, input_tokens=n_in, output_tokens=n_out)


class TestFrequencyController:
    def test_starts_at_max_frequency(self):
        controller = FrequencyController()
        assert controller.current_frequency_mhz == 1980

    def test_set_frequency_records_switch(self):
        controller = FrequencyController()
        assert controller.set_frequency(1200, now=1.0)
        assert controller.switch_count == 1
        assert controller.current_frequency_mhz == 1200

    def test_same_frequency_is_noop(self):
        controller = FrequencyController()
        assert not controller.set_frequency(1980)
        assert controller.switch_count == 0

    def test_invalid_frequency_rejected(self):
        controller = FrequencyController()
        with pytest.raises(ValueError):
            controller.set_frequency(100)

    def test_penalty_consumed_from_serving_time(self):
        controller = FrequencyController(optimized=False)
        controller.set_frequency(1200)
        remaining = controller.consume_penalty(1.0)
        assert remaining == pytest.approx(1.0 - DEFAULT_SWITCH_OVERHEAD_S)

    def test_optimized_penalty_is_smaller(self):
        assert OPTIMIZED_SWITCH_OVERHEAD_S < DEFAULT_SWITCH_OVERHEAD_S
        controller = FrequencyController(optimized=True)
        controller.set_frequency(1200)
        remaining = controller.consume_penalty(1.0)
        assert remaining == pytest.approx(1.0 - OPTIMIZED_SWITCH_OVERHEAD_S)

    def test_penalty_carries_over(self):
        controller = FrequencyController(optimized=False)
        controller.set_frequency(1200)
        assert controller.consume_penalty(0.01) == 0.0
        remaining = controller.consume_penalty(1.0)
        assert remaining == pytest.approx(1.0 - (DEFAULT_SWITCH_OVERHEAD_S - 0.01))

    def test_frequency_history(self):
        controller = FrequencyController()
        controller.set_frequency(1200, now=5.0)
        controller.set_frequency(1600, now=10.0)
        assert controller.frequency_at(0.0) == 1980
        assert controller.frequency_at(7.0) == 1200
        assert controller.frequency_at(12.0) == 1600


class TestVMProvisioner:
    def test_boot_times_match_table5(self):
        assert cold_boot_time_s() > 360.0  # ~6-8 minutes in the paper
        assert warm_boot_time_s() < 60.0

    def test_reactive_provisioning_pays_cold_boot(self):
        provisioner = VMProvisioner(proactive=False)
        request = provisioner.request_server("s1", now=0.0)
        assert request.ready_at == pytest.approx(cold_boot_time_s())

    def test_proactive_provisioning_is_fast(self):
        provisioner = VMProvisioner(proactive=True)
        request = provisioner.request_server("s1", now=0.0)
        assert request.ready_at == pytest.approx(warm_boot_time_s())

    def test_collect_ready_retires_requests(self):
        provisioner = VMProvisioner(proactive=True)
        provisioner.request_server("s1", now=0.0)
        assert provisioner.collect_ready(1.0) == []
        ready = provisioner.collect_ready(warm_boot_time_s() + 1.0)
        assert len(ready) == 1
        assert provisioner.pending_count() == 0


class TestServer:
    def test_allocate_and_release(self):
        server = Server()
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        slots = server.allocate(instance)
        assert len(slots) == 4
        assert server.free_gpus == 4
        assert server.release(instance.instance_id) == 4
        assert server.free_gpus == 8

    def test_cannot_overallocate(self):
        server = Server()
        first = InferenceInstance(LLAMA2_70B, tensor_parallelism=8)
        server.allocate(first)
        second = InferenceInstance(LLAMA2_70B, tensor_parallelism=2)
        with pytest.raises(ValueError):
            server.allocate(second)

    def test_offline_server_cannot_host(self):
        server = Server(online=False)
        assert not server.can_host(2)

    def test_resize_allocation_grow_and_shrink(self):
        server = Server()
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        server.allocate(instance)
        server.resize_allocation(instance.instance_id, 8)
        assert server.free_gpus == 0
        server.resize_allocation(instance.instance_id, 2)
        assert server.free_gpus == 6

    def test_resize_rejects_overgrowth(self):
        server = Server()
        a = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        b = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        server.allocate(a)
        server.allocate(b)
        with pytest.raises(ValueError):
            server.resize_allocation(a.instance_id, 8)

    def test_idle_power_zero_when_offline(self):
        server = Server(online=False)
        assert server.idle_gpu_power() == 0.0

    def test_idle_power_counts_free_gpus(self):
        server = Server()
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        server.allocate(instance)
        per_gpu = server.spec.gpu.idle_watts + server.spec.host_idle_watts / 8
        assert server.idle_gpu_power() == pytest.approx(4 * per_gpu)


class TestInferenceInstance:
    def test_enqueue_and_complete_request(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=8, request_type="MM")
        request = make_request(n_in=500, n_out=20)
        instance.enqueue(request, now=0.0)
        outcomes = []
        for step in range(30):
            instance.step(float(step), 1.0)
            outcomes.extend(instance.drain_completed())
            if outcomes:
                break
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.ttft > 0.0
        assert outcome.tbt > 0.0
        assert outcome.completion_time >= outcome.first_token_time

    def test_ttft_never_negative(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=8)
        request = make_request(arrival=0.7, n_in=300, n_out=5)
        instance.enqueue(request, now=0.0)
        for step in range(10):
            instance.step(float(step), 1.0)
        outcomes = instance.drain_completed()
        assert outcomes and outcomes[0].ttft >= 0.0

    def test_energy_accumulates_even_when_idle(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        stats = instance.step(0.0, 1.0)
        assert stats.power_watts > 0.0
        assert instance.total_energy_wh > 0.0

    def test_busy_instance_draws_more_power_than_idle(self):
        idle = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        busy = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        for i in range(20):
            busy.enqueue(make_request(n_in=800, n_out=100), now=0.0)
        idle_stats = idle.step(0.0, 1.0)
        busy_stats = busy.step(0.0, 1.0)
        assert busy_stats.power_watts > idle_stats.power_watts

    def test_offline_instance_does_not_progress(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        instance.enqueue(make_request(n_in=400, n_out=50), now=0.0)
        instance.mark_offline(until=10.0)
        stats = instance.step(0.0, 1.0)
        assert stats.prefill_tokens == 0
        assert stats.decode_tokens == 0

    def test_frequency_change_costs_serving_time(self):
        instance = InferenceInstance(
            LLAMA2_70B, tensor_parallelism=8, optimized_frequency_switching=False
        )
        instance.enqueue(make_request(n_in=8000, n_out=500), now=0.0)
        instance.set_frequency(800, now=0.0)
        stats = instance.step(0.0, 1.0)
        # One switch penalty (65 ms) of prefill work is lost.
        assert stats.prefill_tokens > 0

    def test_resharding_changes_tp_and_degrades(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        instance.begin_resharding(8, now=0.0, transfer_time_s=0.5, sync_time_s=1.0, requires_downtime=False)
        assert instance.tensor_parallelism == 8
        assert instance.degraded_until > 0.0
        assert not instance.is_offline(0.0)

    def test_resharding_with_downtime_marks_offline(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        instance.begin_resharding(2, now=0.0, transfer_time_s=0.5, sync_time_s=1.0, requires_downtime=True)
        assert instance.is_offline(1.0)
        assert not instance.is_offline(2.0)

    def test_squash_stale_requests(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=2)
        instance.enqueue(make_request(), now=0.0)
        instance.enqueue(make_request(), now=50.0)
        squashed = instance.squash_stale(now=60.0, wait_threshold_s=30.0)
        assert len(squashed) == 1
        assert squashed[0].squashed
        assert instance.queue_length == 1

    def test_steal_and_adopt_moves_waiting_requests(self):
        source = InferenceInstance(LLAMA2_70B, tensor_parallelism=2)
        target = InferenceInstance(LLAMA2_70B, tensor_parallelism=2)
        for _ in range(4):
            source.enqueue(make_request(), now=0.0)
        stolen = source.steal_waiting(2)
        target.adopt(stolen, now=1.0)
        assert source.queue_length == 2
        assert target.queue_length == 2

    def test_reorder_queue_by_deadline(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=2)
        loose = make_request(arrival=0.0, n_in=2000, n_out=50)   # 2 s TTFT SLO
        tight = make_request(arrival=0.0, n_in=100, n_out=50)    # 0.25 s TTFT SLO
        instance.enqueue(loose, now=0.0)
        instance.enqueue(tight, now=0.0)
        instance.reorder_queue_by_deadline(lambda request: 2.0 if request.input_tokens > 1000 else 0.25)
        assert instance.waiting[0].request is tight

    def test_kv_capacity_limits_admission(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=2, request_type="LL")
        for _ in range(40):
            instance.enqueue(make_request(n_in=4000, n_out=500), now=0.0)
        instance.step(0.0, 1.0)
        assert instance.kv_tokens_used <= instance.kv_capacity
        assert instance.queue_length > 0

    def test_load_estimate_tracks_arrivals(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4, request_type="MM")
        for step in range(10):
            instance.enqueue(make_request(arrival=float(step), n_in=600, n_out=10), now=float(step))
            instance.step(float(step), 1.0)
        assert instance.load_estimate_tps > 0.0

    def test_energy_attributed_to_request_types(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=8, request_type="MM")
        instance.enqueue(make_request(n_in=600, n_out=30), now=0.0)
        instance.enqueue(make_request(n_in=100, n_out=30), now=0.0)
        for step in range(15):
            instance.step(float(step), 1.0)
        assert set(instance.energy_by_type_wh) >= {"MS", "SS"} or set(instance.energy_by_type_wh) >= {"MM"}
        assert sum(instance.energy_by_type_wh.values()) == pytest.approx(instance.total_energy_wh, rel=0.01)


class TestGPUCluster:
    def make_cluster(self, servers=2):
        return GPUCluster(LLAMA2_70B, initial_servers=servers, max_servers=8)

    def test_initial_servers_online(self):
        cluster = self.make_cluster(3)
        assert cluster.online_server_count == 3
        assert cluster.online_gpu_count == 24

    def test_create_instance_allocates_gpus(self):
        cluster = self.make_cluster()
        instance = cluster.create_instance(4, pool="MM")
        assert instance is not None
        assert cluster.active_gpu_count == 4
        assert cluster.free_gpu_count == 12

    def test_create_instance_fails_when_full(self):
        cluster = self.make_cluster(1)
        assert cluster.create_instance(8) is not None
        assert cluster.create_instance(2) is None

    def test_remove_instance_returns_leftovers(self):
        cluster = self.make_cluster()
        instance = cluster.create_instance(4, pool="MM")
        instance.enqueue(make_request(), now=0.0)
        leftovers = cluster.remove_instance(instance.instance_id)
        assert len(leftovers) == 1
        assert cluster.active_gpu_count == 0

    def test_scale_out_is_delayed_by_provisioning(self):
        cluster = self.make_cluster(1)
        cluster.scale_to(3, now=0.0)
        assert cluster.online_server_count == 1
        cluster.collect_provisioned(now=1e6)
        assert cluster.online_server_count == 3

    def test_scale_in_only_removes_empty_servers(self):
        cluster = self.make_cluster(2)
        cluster.create_instance(8, pool="MM")  # occupies one server fully
        cluster.scale_to(0, now=0.0)
        assert cluster.online_server_count == 1

    def test_reshard_instance_updates_allocation(self):
        cluster = self.make_cluster()
        instance = cluster.create_instance(4, pool="MM")
        ok = cluster.reshard_instance(
            instance.instance_id, 8, now=0.0, transfer_time_s=0.1, sync_time_s=0.5, requires_downtime=False
        )
        assert ok
        assert instance.tensor_parallelism == 8
        assert cluster.active_gpu_count == 8

    def test_reshard_fails_without_room(self):
        cluster = self.make_cluster(1)
        first = cluster.create_instance(4, pool="MM")
        cluster.create_instance(4, pool="MM")
        assert not cluster.reshard_instance(
            first.instance_id, 8, now=0.0, transfer_time_s=0.1, sync_time_s=0.5, requires_downtime=False
        )

    def test_step_accounts_energy_and_outcomes(self):
        cluster = self.make_cluster(1)
        instance = cluster.create_instance(8, pool="MM", request_type="MM")
        instance.enqueue(make_request(n_in=400, n_out=10), now=0.0)
        total_outcomes = []
        for step in range(20):
            stats = cluster.step(float(step), 1.0)
            total_outcomes.extend(stats.outcomes)
        assert cluster.total_energy_wh > 0.0
        assert len(total_outcomes) == 1
        assert cluster.gpu_hours > 0.0

    def test_idle_servers_still_draw_power(self):
        cluster = self.make_cluster(2)
        stats = cluster.step(0.0, 1.0)
        assert stats.power_watts > 0.0
        assert stats.online_gpus == 16

    def test_pool_breakdown_in_step_stats(self):
        cluster = self.make_cluster(2)
        cluster.create_instance(4, pool="SS", request_type="SS")
        cluster.create_instance(4, pool="LL", request_type="LL")
        stats = cluster.step(0.0, 1.0)
        assert set(stats.pool_power_watts) == {"SS", "LL"}
        assert stats.gpus_by_tp == {4: 8}

    def test_instances_in_pool(self):
        cluster = self.make_cluster(2)
        cluster.create_instance(2, pool="SS")
        cluster.create_instance(2, pool="SS")
        cluster.create_instance(2, pool="MM")
        assert len(cluster.instances_in_pool("SS")) == 2

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            GPUCluster(LLAMA2_70B, initial_servers=5, max_servers=2)
