"""Tests for ``repro lint``: engine, rules, fixtures, CLI.

Layers:

* golden fixtures — the deliberate violations under ``tests/lint_fixtures/``
  must produce exactly the findings pinned in ``expected.json`` (rule id,
  line, column, message);
* the repaired-tree regression — ``src`` (and ``tests``/``benchmarks``/
  ``examples``) lint clean, so any reintroduced violation fails here
  before CI;
* per-rule unit tests on inline snippets;
* seeded property tests that per-line suppressions and
  ``--select``/``--ignore`` filtering are honoured for arbitrary
  finding/rule subsets;
* CLI exit-code and format contracts.
"""

import json
import os
import random

import pytest

from repro.lint import Finding, lint_paths, lint_source, rule_catalog
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import (
    EXCLUDED_DIRS,
    PARSE_ERROR_ID,
    LintUsageError,
    iter_python_files,
    parse_suppressions,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
BASELINE_PATH = os.path.join(REPO_ROOT, "lint_baseline.json")


def _walk_fixture_files():
    found = []
    for dirpath, dirnames, filenames in os.walk(FIXTURE_DIR):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                found.append(os.path.join(dirpath, name))
    return found


#: Recursive: the whole-program fixtures live in a mini-package under
#: lint_fixtures/repro/ so they get layered module names (sim.*, ...).
FIXTURE_FILES = _walk_fixture_files()


def fixture_findings(**kwargs):
    return lint_paths(FIXTURE_FILES, **kwargs)


# ======================================================================
# Golden fixtures
# ======================================================================
class TestGoldenFixtures:
    def test_fixture_findings_match_golden(self):
        with open(os.path.join(FIXTURE_DIR, "expected.json")) as handle:
            expected = json.load(handle)
        report = fixture_findings()
        actual = [
            {
                "path": os.path.relpath(finding.path, FIXTURE_DIR).replace(
                    os.sep, "/"
                ),
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in report.findings
        ]
        assert actual == expected

    def test_all_five_families_are_exercised(self):
        rules = {finding.rule for finding in fixture_findings().findings}
        assert {rule[:3] for rule in rules} == {"DET", "UNT", "CNC", "IMM", "ARC"}
        # The whole-program ids specifically, not just their families.
        for rule_id in (
            "ARC001", "ARC002", "ARC003", "ARC004",
            "DET005", "UNT004", "UNT005",
        ):
            assert rule_id in rules

    def test_taint_fixture_pins_cross_file_chain(self):
        """DET005 catches what DET001 cannot: the call site of a clean-
        looking wrapper, with the full cross-file path in the message."""
        report = fixture_findings()
        engine_path = os.path.join("repro", "sim", "taint_engine.py")
        at_call_site = [
            f for f in report.findings if f.path.endswith(engine_path)
        ]
        assert [f.rule for f in at_call_site] == ["DET005"]
        (finding,) = at_call_site
        assert (
            "sim.taint_helpers.elapsed_s() -> "
            "sim.taint_helpers._read_clock() -> time.time()"
        ) in finding.message

    def test_clean_fixture_has_no_findings_but_one_suppression(self):
        report = lint_paths([os.path.join(FIXTURE_DIR, "clean_suppressed.py")])
        assert report.findings == []
        assert report.suppressed == 1
        assert report.exit_code == 0

    def test_findings_are_sorted_and_stable(self):
        findings = fixture_findings().findings
        assert findings == sorted(findings)
        assert findings == fixture_findings().findings


# ======================================================================
# Repaired-tree regression: the whole repo lints clean modulo the
# reviewed baseline (the ratchet: new findings fail here before CI)
# ======================================================================
class TestRepairedTree:
    def test_src_is_clean_modulo_reviewed_baseline(self):
        report = lint_paths([os.path.join(REPO_ROOT, "src")])
        result = apply_baseline(report, load_baseline(BASELINE_PATH))
        assert result.new_findings == (), "\n".join(
            finding.format() for finding in result.new_findings
        )
        assert result.stale == (), (
            "baselined finding fixed — prune lint_baseline.json with "
            "--update-baseline: " + repr(result.stale)
        )
        assert report.files_checked > 80

    def test_baseline_is_empty(self):
        """The core->cluster upward coupling was the only reviewed debt;
        the protocol layer (repro.core.interfaces) retired it.  The
        baseline must stay empty — new architectural debt needs a fix,
        not a baseline entry."""
        baseline = load_baseline(BASELINE_PATH)
        assert baseline.existed
        assert baseline.entries == {}

    def test_tests_benchmarks_examples_have_zero_findings(self):
        report = lint_paths(
            [
                os.path.join(REPO_ROOT, "tests"),
                os.path.join(REPO_ROOT, "benchmarks"),
                os.path.join(REPO_ROOT, "examples"),
            ]
        )
        assert report.findings == [], "\n".join(
            finding.format() for finding in report.findings
        )

    def test_fixture_directory_is_skipped_when_walking(self):
        walked = list(iter_python_files([os.path.join(REPO_ROOT, "tests")]))
        assert not any("lint_fixtures" in path for path in walked)
        assert "lint_fixtures" in EXCLUDED_DIRS

    def test_explicit_fixture_paths_are_still_linted(self):
        report = lint_paths([os.path.join(FIXTURE_DIR, "det_violations.py")])
        assert report.findings


# ======================================================================
# Determinism rules
# ======================================================================
class TestDeterminismRules:
    def lint(self, source, path="repro/sim/sample.py"):
        return lint_source(source, path=path)

    def test_wall_clock_calls_flagged(self):
        source = "import time\nstarted = time.time()\n"
        rules = [finding.rule for finding in self.lint(source)]
        assert rules == ["DET001"]

    def test_datetime_now_flagged_via_from_import(self):
        source = "from datetime import datetime\nstamp = datetime.now()\n"
        assert [f.rule for f in self.lint(source)] == ["DET001"]

    def test_aliased_import_resolved(self):
        source = "import time as clock\nvalue = clock.perf_counter()\n"
        assert [f.rule for f in self.lint(source)] == ["DET001"]

    def test_stdlib_random_functions_flagged(self):
        source = "import random\nvalue = random.random()\n"
        assert [f.rule for f in self.lint(source)] == ["DET002"]

    def test_seeded_random_instance_allowed(self):
        source = "import random\nrng = random.Random(7)\n"
        assert self.lint(source) == []

    def test_unseeded_random_instance_flagged(self):
        source = "import random\nrng = random.Random()\n"
        assert [f.rule for f in self.lint(source)] == ["DET002"]

    def test_numpy_legacy_global_rng_flagged(self):
        source = "import numpy as np\nnp.random.seed(3)\nx = np.random.rand()\n"
        assert [f.rule for f in self.lint(source)] == ["DET003", "DET003"]

    def test_default_rng_outside_rng_module_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng(11)\n"
        assert [f.rule for f in self.lint(source)] == ["DET004"]

    def test_rng_module_itself_exempt(self):
        source = "import numpy as np\nrng = np.random.default_rng(11)\n"
        assert lint_source(source, path="src/repro/sim/rng.py") == []

    def test_cli_and_benchmarks_exempt(self):
        source = "import time\nstarted = time.perf_counter()\n"
        assert lint_source(source, path="src/repro/__main__.py") == []
        assert lint_source(source, path="benchmarks/test_bench_x.py") == []
        assert lint_source(source, path="examples/quickstart.py") == []

    def test_unrelated_attribute_calls_not_flagged(self):
        source = "clock = object()\nvalue = clock.time()\n"
        assert self.lint(source) == []


# ======================================================================
# Unit-suffix rules
# ======================================================================
class TestUnitRules:
    def lint(self, source):
        return lint_source(source, path="repro/metrics/sample.py")

    def test_additive_mix_flagged(self):
        assert [f.rule for f in self.lint("total = a_kw + b_w\n")] == ["UNT001"]

    def test_comparison_mix_flagged(self):
        assert [f.rule for f in self.lint("ok = a_s > b_ms\n")] == ["UNT001"]

    def test_assignment_mix_flagged(self):
        assert [f.rule for f in self.lint("total_kwh = step_wh\n")] == ["UNT002"]

    def test_augmented_mix_flagged(self):
        assert [f.rule for f in self.lint("total_j += step_kwh\n")] == ["UNT003"]

    def test_keyword_argument_mix_flagged(self):
        assert [f.rule for f in self.lint("f(power_w=step_kw)\n")] == ["UNT002"]

    def test_cross_dimension_message_names_dimensions(self):
        (finding,) = self.lint("total_kg = spend_usd\n")
        assert "incompatible dimensions" in finding.message

    def test_same_suffix_passes(self):
        assert self.lint("total_wh = total_wh + step_wh\n") == []

    def test_conversion_expression_is_escape_hatch(self):
        assert self.lint("total_wh += step_kwh * 1000.0\n") == []
        assert self.lint("total_kwh = wh_to_kwh(step_wh)\n") == []

    def test_per_rate_suffixes_are_not_quantities(self):
        assert self.lint("cost_usd = price_per_kwh * 2\n") == []
        assert self.lint("x = price_per_kwh + cost_usd\n") == []

    def test_multiplication_changes_units_legitimately(self):
        assert self.lint("energy = power_kw * duration_s\n") == []

    def test_attribute_suffixes_checked(self):
        assert [f.rule for f in self.lint("self.total_wh += acc.step_kwh\n")] == [
            "UNT003"
        ]


# ======================================================================
# Concurrency rules
# ======================================================================
class TestConcurrencyRules:
    def lint(self, source):
        return lint_source(source, path="repro/api/sample.py")

    def test_mutable_default_flagged(self):
        for default in ("[]", "{}", "set()", "dict()", "list()"):
            findings = self.lint(f"def f(x={default}):\n    return x\n")
            assert [f.rule for f in findings] == ["CNC001"], default

    def test_none_default_passes(self):
        assert self.lint("def f(x=None, y=()):\n    return x, y\n") == []

    def test_lambda_submit_flagged(self):
        source = "def go(pool, job):\n    return pool.submit(lambda: job())\n"
        assert [f.rule for f in self.lint(source)] == ["CNC002"]

    def test_named_function_submit_passes(self):
        source = "def go(pool, run, job):\n    return pool.submit(run, job)\n"
        assert self.lint(source) == []

    def test_submitted_callable_writing_sink_flagged(self):
        source = (
            "def work(job, sink):\n"
            "    sink.write(job.key, job.run())\n"
            "def go(pool, jobs, sink):\n"
            "    return [pool.submit(work, job, sink) for job in jobs]\n"
        )
        assert [f.rule for f in self.lint(source)] == ["CNC003"]

    def test_consumer_side_sink_write_passes(self):
        source = (
            "def work(job):\n"
            "    return job.run()\n"
            "def go(pool, jobs, sink):\n"
            "    futures = [pool.submit(work, job) for job in jobs]\n"
            "    for future in futures:\n"
            "        sink.write('k', future.result())\n"
        )
        assert self.lint(source) == []


# ======================================================================
# Immutability rules
# ======================================================================
class TestImmutabilityRules:
    def lint(self, source):
        return lint_source(source, path="repro/api/sample.py")

    def test_setattr_outside_post_init_flagged(self):
        source = "def f(spec):\n    object.__setattr__(spec, 'x', 1)\n"
        assert [f.rule for f in self.lint(source)] == ["IMM001"]

    def test_setattr_inside_post_init_allowed(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Box:\n"
            "    x: int\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', abs(self.x))\n"
        )
        assert self.lint(source) == []

    def test_annotated_parameter_mutation_flagged(self):
        source = "def f(scenario: 'Scenario'):\n    scenario.policy = 'x'\n"
        assert [f.rule for f in self.lint(source)] == ["IMM002"]

    def test_constructed_local_mutation_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Box:\n"
            "    x: int\n"
            "def f():\n"
            "    box = Box(x=1)\n"
            "    box.x = 2\n"
        )
        assert [f.rule for f in self.lint(source)] == ["IMM002"]

    def test_self_mutation_in_frozen_class_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Box:\n"
            "    x: int\n"
            "    def bump(self):\n"
            "        self.x = self.x + 1\n"
        )
        assert [f.rule for f in self.lint(source)] == ["IMM002"]

    def test_rebinding_clears_tracked_type(self):
        source = (
            "def f(scenario: 'Scenario'):\n"
            "    scenario = scenario.with_(policy='x')\n"
            "    scenario.attr = 1\n"
        )
        assert self.lint(source) == []

    def test_unfrozen_dataclass_mutation_passes(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Bag:\n"
            "    x: int\n"
            "def f():\n"
            "    bag = Bag(x=1)\n"
            "    bag.x = 2\n"
        )
        assert self.lint(source) == []

    def test_frozen_classes_collected_across_files(self, tmp_path):
        defining = tmp_path / "defs.py"
        defining.write_text(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class CrossFileSpec:\n"
            "    x: int\n"
        )
        mutating = tmp_path / "use.py"
        mutating.write_text(
            "def f(spec: 'CrossFileSpec'):\n    spec.x = 2\n"
        )
        report = lint_paths([str(defining), str(mutating)])
        assert [f.rule for f in report.findings] == ["IMM002"]


# ======================================================================
# Architecture rules (whole-program: layering, cycles, privacy)
# ======================================================================
class TestArchitectureRules:
    def lint(self, source, path):
        return lint_source(source, path=path)

    def test_upward_import_flagged(self):
        source = "from repro.api.scenario import Scenario\n"
        assert [f.rule for f in self.lint(source, "repro/sim/x.py")] == ["ARC001"]

    def test_downward_and_sideways_imports_pass(self):
        assert self.lint("from repro.sim.clock import Clock\n", "repro/api/x.py") == []
        assert self.lint("from repro.sim.rng import make_rng\n", "repro/llm/x.py") == []

    def test_unlayered_modules_exempt(self):
        source = "from repro.api.scenario import Scenario\n"
        assert self.lint(source, "tests/test_x.py") == []
        assert self.lint(source, "src/repro/__main__.py") == []

    def test_function_level_upward_import_still_flagged(self):
        source = (
            "def late():\n"
            "    from repro.experiments.grid import build\n"
            "    return build\n"
        )
        assert [f.rule for f in self.lint(source, "repro/metrics/x.py")] == ["ARC001"]

    def _construction_pair(self, tmp_path, consumer_pkg, consumer_src):
        provider = tmp_path / "repro" / "cluster"
        provider.mkdir(parents=True)
        (provider / "fleet.py").write_text("class Fleet:\n    pass\n")
        consumer = tmp_path / "repro" / consumer_pkg
        consumer.mkdir(parents=True, exist_ok=True)
        (consumer / "x.py").write_text(consumer_src)
        return lint_paths([str(provider / "fleet.py"), str(consumer / "x.py")])

    def test_upward_construction_flagged_even_when_deferred(self):
        """ARC004 rides the call graph: the deferred import draws ARC001,
        and the constructor call itself draws ARC004 on top."""
        report = fixture_findings()
        construct_path = os.path.join("repro", "core", "arc_construct.py")
        at_site = [f for f in report.findings if f.path.endswith(construct_path)]
        assert [f.rule for f in at_site] == ["ARC001", "ARC004"]
        assert "constructs 'cluster.accounting.GPUFleet'" in at_site[1].message
        assert "composition root" in at_site[1].message

    def test_aliased_upward_construction_flagged(self, tmp_path):
        report = self._construction_pair(
            tmp_path,
            "core",
            "def build():\n"
            "    from repro.cluster.fleet import Fleet as F\n"
            "    return F()\n",
        )
        assert "ARC004" in {f.rule for f in report.findings}

    def test_downward_construction_passes(self, tmp_path):
        report = self._construction_pair(
            tmp_path,
            "api",
            "from repro.cluster.fleet import Fleet\n"
            "def build():\n"
            "    return Fleet()\n",
        )
        assert report.findings == []

    def test_receiving_upward_object_is_not_construction(self, tmp_path):
        """Injection is the sanctioned pattern: calling methods on a
        received instance must not trip ARC004 (only building one does)."""
        report = self._construction_pair(
            tmp_path,
            "core",
            "def drive(fleet):\n"
            "    return fleet.scale_to(4)\n",
        )
        assert report.findings == []

    def test_cycle_flagged_in_both_modules(self, tmp_path):
        package = tmp_path / "repro" / "policies"
        package.mkdir(parents=True)
        (package / "a.py").write_text("from repro.policies.b import g\n")
        (package / "b.py").write_text("from repro.policies.a import f\n")
        report = lint_paths([str(package / "a.py"), str(package / "b.py")])
        assert [f.rule for f in report.findings] == ["ARC002", "ARC002"]

    def test_deferred_import_breaks_cycle(self, tmp_path):
        package = tmp_path / "repro" / "policies"
        package.mkdir(parents=True)
        (package / "a.py").write_text(
            "def f():\n    from repro.policies.b import g\n    return g\n"
        )
        (package / "b.py").write_text("from repro.policies.a import f\n")
        report = lint_paths([str(package / "a.py"), str(package / "b.py")])
        assert report.findings == []

    def test_type_checking_imports_never_cycle(self, tmp_path):
        package = tmp_path / "repro" / "policies"
        package.mkdir(parents=True)
        (package / "a.py").write_text(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.policies.b import G\n"
        )
        (package / "b.py").write_text("from repro.policies.a import f\n")
        report = lint_paths([str(package / "a.py"), str(package / "b.py")])
        assert report.findings == []

    def test_cross_package_private_name_flagged(self):
        source = "from repro.cluster.power_model import _budget\n"
        assert [f.rule for f in self.lint(source, "repro/api/x.py")] == ["ARC003"]

    def test_same_package_private_name_allowed(self):
        source = "from repro.cluster.power_model import _budget\n"
        assert self.lint(source, "repro/cluster/x.py") == []

    def test_dunder_names_are_not_private(self):
        source = "from repro.cluster.power_model import __version__\n"
        assert self.lint(source, "repro/api/x.py") == []


# ======================================================================
# Flow rules (whole-program: determinism taint, unit flow)
# ======================================================================
class TestFlowDeterminism:
    def test_wrapper_call_flagged_with_path(self):
        source = (
            "import time\n"
            "def _read_clock():\n"
            "    return time.time()\n"
            "def elapsed_s():\n"
            "    return _read_clock()\n"
        )
        findings = lint_source(source, path="repro/sim/x.py")
        assert [f.rule for f in findings] == ["DET001", "DET005"]
        assert "sim.x._read_clock() -> time.time()" in findings[1].message

    def test_suppressed_sink_still_taints(self):
        """A DET001 suppression is a waiver at the sink line, not a
        determinism proof: callers are still flagged by DET005."""
        source = (
            "import time\n"
            "def _read_clock():\n"
            "    return time.time()  # repro-lint: disable=DET001\n"
            "def elapsed_s():\n"
            "    return _read_clock()\n"
        )
        findings = lint_source(source, path="repro/sim/x.py")
        assert [f.rule for f in findings] == ["DET005"]

    def test_cross_file_taint_via_lint_paths(self, tmp_path):
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        (package / "helpers.py").write_text(
            "import time\n"
            "def elapsed_s():\n"
            "    return time.time()  # repro-lint: disable=DET001\n"
        )
        (package / "engine.py").write_text(
            "from repro.sim.helpers import elapsed_s\n"
            "def step():\n"
            "    return elapsed_s()\n"
        )
        report = lint_paths([str(package / "helpers.py"), str(package / "engine.py")])
        assert [f.rule for f in report.findings] == ["DET005"]
        (finding,) = report.findings
        assert finding.path.endswith("engine.py")
        assert "sim.helpers.elapsed_s() -> time.time()" in finding.message

    def test_global_rng_taints_too(self):
        source = (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
            "def pick():\n"
            "    return draw()\n"
        )
        findings = lint_source(source, path="repro/workload/x.py")
        assert [f.rule for f in findings] == ["DET002", "DET005"]

    def test_seeded_rng_does_not_taint(self):
        source = (
            "import random\n"
            "def make(seed):\n"
            "    return random.Random(seed)\n"
            "def use(seed):\n"
            "    return make(seed).random()\n"
        )
        assert lint_source(source, path="repro/workload/x.py") == []

    def test_unlayered_call_sites_not_flagged(self):
        source = (
            "import time\n"
            "def elapsed_s():\n"
            "    return time.time()  # repro-lint: disable=DET001\n"
            "def probe():\n"
            "    return elapsed_s()\n"
        )
        assert lint_source(source, path="tests/test_x.py") == []
        assert lint_source(source, path="benchmarks/test_bench_x.py") == []


class TestFlowUnits:
    def lint(self, source):
        return lint_source(source, path="repro/metrics/sample.py")

    def test_positional_suffix_conflict_flagged(self):
        source = (
            "def record_power_kw(power_kw):\n"
            "    return power_kw\n"
            "def f(load_w):\n"
            "    record_power_kw(load_w)\n"
        )
        findings = self.lint(source)
        assert [f.rule for f in findings] == ["UNT004"]
        assert "'load_w'" in findings[0].message
        assert "'power_kw'" in findings[0].message

    def test_matching_positional_suffix_passes(self):
        source = (
            "def record_power_kw(power_kw):\n"
            "    return power_kw\n"
            "def f(load_kw):\n"
            "    record_power_kw(load_kw)\n"
        )
        assert self.lint(source) == []

    def test_unsuffixed_argument_or_parameter_passes(self):
        source = (
            "def record_power_kw(power_kw):\n"
            "    return power_kw\n"
            "def scale(value):\n"
            "    record_power_kw(value)\n"
        )
        assert self.lint(source) == []

    def test_star_args_skip_positional_binding(self):
        source = (
            "def record_power_kw(power_kw):\n"
            "    return power_kw\n"
            "def f(args_w):\n"
            "    record_power_kw(*args_w)\n"
        )
        assert self.lint(source) == []

    def test_method_call_binds_past_self(self):
        source = (
            "class Meter:\n"
            "    def add_wh(self, step_wh):\n"
            "        return step_wh\n"
            "    def tick(self, step_kwh):\n"
            "        self.add_wh(step_kwh)\n"
        )
        assert [f.rule for f in self.lint(source)] == ["UNT004"]

    def test_return_suffix_mismatch_flagged(self):
        source = (
            "def step_energy_wh():\n"
            "    return 1.0\n"
            "def f():\n"
            "    total_kwh = step_energy_wh()\n"
            "    return total_kwh\n"
        )
        assert [f.rule for f in self.lint(source)] == ["UNT005"]

    def test_conversion_helper_carries_result_suffix(self):
        source = (
            "def wh_to_kwh(value_wh):\n"
            "    return value_wh / 1000.0\n"
            "def f(step_wh):\n"
            "    total_kwh = wh_to_kwh(step_wh)\n"
            "    return total_kwh\n"
        )
        assert self.lint(source) == []

    def test_unsuffixed_function_name_passes(self):
        source = (
            "def compute():\n"
            "    return 1.0\n"
            "def f():\n"
            "    total_kwh = compute()\n"
            "    return total_kwh\n"
        )
        assert self.lint(source) == []


# ======================================================================
# Suppressions and filtering (seeded property tests)
# ======================================================================
def _suppress_lines(source: str, targets):
    """Append per-line disable comments for {line: rule} targets."""
    lines = source.splitlines()
    for line_number, rule in targets.items():
        lines[line_number - 1] += f"  # repro-lint: disable={rule}"
    return "\n".join(lines) + "\n"


class TestSuppressions:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_suppression_subsets_are_honoured(self, seed):
        rng = random.Random(seed)
        for path in FIXTURE_FILES:
            with open(path) as handle:
                source = handle.read()
            findings = lint_source(source, path=path)
            if not findings:
                continue
            chosen = rng.sample(findings, rng.randint(1, len(findings)))
            # One finding per line: comments attach per physical line.
            targets = {f.line: f.rule for f in chosen}
            kept = lint_source(
                _suppress_lines(source, targets), path=path
            )
            for finding in findings:
                expected_gone = targets.get(finding.line) == finding.rule
                still_there = any(
                    k.rule == finding.rule and k.line == finding.line
                    for k in kept
                )
                assert still_there != expected_gone

    def test_disable_all_suppresses_every_rule_on_the_line(self):
        source = "import time\nx = time.time()  # repro-lint: disable=all\n"
        assert lint_source(source, path="repro/sim/s.py") == []

    def test_suppression_is_per_line_not_per_file(self):
        source = (
            "import time\n"
            "x = time.time()  # repro-lint: disable=DET001\n"
            "y = time.time()\n"
        )
        findings = lint_source(source, path="repro/sim/s.py")
        assert [(f.rule, f.line) for f in findings] == [("DET001", 3)]

    def test_comma_separated_ids(self):
        source = "total_kwh = step_wh  # repro-lint: disable=UNT002,DET001\n"
        assert lint_source(source, path="repro/metrics/s.py") == []

    def test_parse_suppressions_shapes(self):
        parsed = parse_suppressions(
            "x = 1  # repro-lint: disable=A001, B002\ny = 2\n"
        )
        assert parsed == {1: {"A001", "B002"}}


class TestSelectIgnore:
    ALL_IDS = sorted(
        rule_id for rule_id in rule_catalog() if rule_id != PARSE_ERROR_ID
    )

    @pytest.mark.parametrize("seed", range(5))
    def test_select_keeps_exactly_matching_rules(self, seed):
        rng = random.Random(100 + seed)
        baseline = fixture_findings().findings
        subset = rng.sample(self.ALL_IDS, rng.randint(1, len(self.ALL_IDS)))
        report = fixture_findings(select=subset)
        expected = [f for f in baseline if f.rule in subset]
        assert report.findings == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_ignore_drops_exactly_matching_rules(self, seed):
        rng = random.Random(200 + seed)
        baseline = fixture_findings().findings
        subset = rng.sample(self.ALL_IDS, rng.randint(1, len(self.ALL_IDS)))
        report = fixture_findings(ignore=subset)
        expected = [f for f in baseline if f.rule not in subset]
        assert report.findings == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_ignore_wins_over_select(self, seed):
        rng = random.Random(300 + seed)
        baseline = fixture_findings().findings
        selected = set(rng.sample(self.ALL_IDS, rng.randint(1, len(self.ALL_IDS))))
        ignored = set(rng.sample(self.ALL_IDS, rng.randint(1, len(self.ALL_IDS))))
        report = fixture_findings(select=sorted(selected), ignore=sorted(ignored))
        expected = [
            f for f in baseline if f.rule in (selected - ignored)
        ]
        assert report.findings == expected

    def test_family_prefix_selects_whole_family(self):
        report = fixture_findings(select=["DET"])
        assert report.findings
        assert all(f.rule.startswith("DET") for f in report.findings)

    def test_comma_separated_entries(self):
        split = fixture_findings(select=["DET001,UNT001"]).findings
        listed = fixture_findings(select=["DET001", "UNT001"]).findings
        assert split == listed


# ======================================================================
# Parse errors and engine edges
# ======================================================================
class TestEngineEdges:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_ID]

    def test_parse_error_survives_select_but_not_ignore(self):
        assert lint_source("def broken(:\n", select=["DET"])
        assert lint_source("def broken(:\n", ignore=[PARSE_ERROR_ID]) == []

    def test_missing_path_raises_with_path_in_message(self):
        with pytest.raises(FileNotFoundError, match="no/such/file"):
            lint_paths(["no/such/file.py"])

    def test_explicit_non_python_file_is_usage_error(self):
        with pytest.raises(LintUsageError, match="README.md"):
            lint_paths([os.path.join(REPO_ROOT, "README.md")])

    def test_directories_still_only_walk_python_files(self):
        walked = list(iter_python_files([os.path.join(REPO_ROOT, "src")]))
        assert walked
        assert all(path.endswith(".py") for path in walked)

    def test_finding_format_is_clickable(self):
        finding = Finding(path="a.py", line=3, col=7, rule="DET001", message="m")
        assert finding.format() == "a.py:3:7: DET001 m"

    def test_rule_catalog_covers_all_families(self):
        catalog = rule_catalog()
        for expected in (
            "DET001", "DET002", "DET003", "DET004", "DET005",
            "UNT001", "UNT002", "UNT003", "UNT004", "UNT005",
            "CNC001", "CNC002", "CNC003",
            "IMM001", "IMM002",
            "ARC001", "ARC002", "ARC003", "ARC004", PARSE_ERROR_ID,
        ):
            assert expected in catalog


# ======================================================================
# CLI contracts
# ======================================================================
class TestLintCli:
    def test_clean_tree_exits_zero_with_baseline(self, capsys):
        code = lint_main(
            [os.path.join(REPO_ROOT, "src"), "--baseline", BASELINE_PATH]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "0 finding(s)" in err
        assert "0 baselined" in err
        assert "0 stale" in err

    def test_fixture_violations_exit_nonzero(self, capsys):
        code = lint_main([os.path.join(FIXTURE_DIR, "det_violations.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "det_violations.py" in out

    def test_json_format_round_trips(self, capsys):
        code = lint_main(
            [os.path.join(FIXTURE_DIR, "unit_violations.py"), "--format", "json"]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["files_checked"] == 1
        assert all(
            set(f) == {"path", "line", "col", "rule", "message"}
            for f in report["findings"]
        )

    def test_select_and_ignore_flags(self, capsys):
        path = os.path.join(FIXTURE_DIR, "det_violations.py")
        assert lint_main([path, "--select", "UNT"]) == 0
        assert lint_main([path, "--ignore", "DET"]) == 0
        assert lint_main([path, "--select", "DET", "--ignore", "DET"]) == 0
        capsys.readouterr()

    def test_unknown_rule_id_is_usage_error(self, capsys):
        assert lint_main(["--select", "NOPE99", FIXTURE_DIR]) == 2
        assert "NOPE99" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["no/such/dir"]) == 2
        assert "no/such/dir" in capsys.readouterr().err

    def test_non_python_file_is_usage_error(self, capsys):
        assert lint_main([os.path.join(REPO_ROOT, "README.md")]) == 2
        err = capsys.readouterr().err
        assert "README.md" in err and "not a Python file" in err

    def test_list_rules_groups_by_family_with_invariants(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET005", "UNT004", "UNT005",
                        "ARC001", "ARC002", "ARC003", "ARC004", "IMM002"):
            assert rule_id in out
        for family in ("determinism", "units", "concurrency", "immutability",
                       "architecture", "flow-determinism", "flow-units"):
            assert f"\n{family}\n" in f"\n{out}"
        # Every family states its invariant ahead of its rule ids.
        assert out.count("invariant:") >= 7

    def test_github_format_emits_error_annotations(self, capsys):
        path = os.path.join(
            FIXTURE_DIR, "repro", "sim", "taint_engine.py"
        )
        helper = os.path.join(
            FIXTURE_DIR, "repro", "sim", "taint_helpers.py"
        )
        code = lint_main([helper, path, "--format", "github"])
        assert code == 1
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("::error ")]
        assert lines
        det005 = [line for line in lines if "title=DET005" in line]
        assert det005
        assert "file=" in det005[0] and ",line=" in det005[0]
        # Annotation properties escape colons/commas; data escapes newlines.
        assert "taint_engine.py" in det005[0]

    def test_cache_flag_reuses_results(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.json")
        target = os.path.join(FIXTURE_DIR, "unit_violations.py")
        first = lint_main([target, "--cache", cache])
        second = lint_main([target, "--cache", cache])
        assert first == second == 1
        err = capsys.readouterr().err
        assert "1 from cache" in err

    def test_baseline_flags_round_trip(self, tmp_path, capsys):
        target = os.path.join(FIXTURE_DIR, "unit_violations.py")
        baseline = str(tmp_path / "baseline.json")
        # Without a baseline the fixture fails; update, then it passes.
        assert lint_main([target]) == 1
        assert lint_main([target, "--baseline", baseline, "--update-baseline"]) == 0
        assert lint_main([target, "--baseline", baseline]) == 0
        capsys.readouterr()

    def test_python_m_repro_lint_subcommand(self, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main(
            ["lint", os.path.join(REPO_ROOT, "src"), "--baseline", BASELINE_PATH]
        )
        assert code == 0
        code = repro_main(["lint", os.path.join(FIXTURE_DIR, "imm_violations.py")])
        assert code == 1
        capsys.readouterr()

    def test_piped_output_closed_early_exits_quietly(self):
        """`repro-lint --list-rules | head -1` must behave like a filter:
        exit 0, no BrokenPipeError traceback."""
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        script = (
            "import subprocess, sys\n"
            "proc = subprocess.Popen(\n"
            "    [sys.executable, '-m', 'repro.lint.cli', '--list-rules'],\n"
            "    stdout=subprocess.PIPE, stderr=subprocess.PIPE)\n"
            "proc.stdout.readline()\n"
            "proc.stdout.close()\n"
            "proc.wait()\n"
            "sys.stderr.write(proc.stderr.read().decode())\n"
            "sys.exit(proc.returncode)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert "Traceback" not in result.stderr


# ======================================================================
# mypy ratchet (skipped where mypy is not installed; CI always runs it)
# ======================================================================
class TestMypyRatchet:
    def test_mypy_config_passes(self):
        pytest.importorskip("mypy")
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
