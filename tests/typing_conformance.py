"""Static protocol conformance, checked by mypy — never executed.

Each function is an assignment-compatibility assertion: mypy verifies
that the concrete ``repro.cluster`` class on the parameter side is
structurally assignable to the ``repro.core.interfaces`` protocol on
the return side.  A signature drift on either side (a renamed method, a
narrowed argument, a widened return) turns into a mypy error here long
before a simulation would hit it.

``tests/test_interfaces.py::TestStaticConformance`` runs mypy over this
module (skipped locally when mypy is not installed; CI always has it).
The runtime half of the contract — ``isinstance`` via
``@runtime_checkable`` — lives in the same test file.
"""

from repro.cluster.cluster import GPUCluster
from repro.cluster.frequency import FrequencyController
from repro.cluster.instance import InferenceInstance, RequestState
from repro.cluster.vm import VMProvisioner
from repro.core.interfaces import (
    BootCostModel,
    ClusterLike,
    FrequencyPlanLike,
    InstanceLike,
    QueuedRequestLike,
)


def cluster_satisfies_cluster_like(cluster: GPUCluster) -> ClusterLike:
    return cluster


def instance_satisfies_instance_like(instance: InferenceInstance) -> InstanceLike:
    return instance


def controller_satisfies_frequency_plan_like(
    controller: FrequencyController,
) -> FrequencyPlanLike:
    return controller


def provisioner_satisfies_boot_cost_model(
    provisioner: VMProvisioner,
) -> BootCostModel:
    return provisioner


def request_state_satisfies_queued_request_like(
    state: RequestState,
) -> QueuedRequestLike:
    return state
