"""Tests for the DynamoLLM core: resharding, overheads, optimizer, controllers."""

import pytest

from repro.cluster.cluster import GPUCluster
from repro.core.cluster_manager import ClusterManager
from repro.core.framework import ControllerEpochs, ControllerKnobs, DynamoLLM
from repro.core.instance_manager import InstanceManager
from repro.core.optimizer import minimal_gpu_budget, plan_global, plan_sharding
from repro.core.overheads import OverheadModel
from repro.core.pool_manager import PoolManager
from repro.core.pools import PoolState, build_pool_states
from repro.core.resharding import (
    CANONICAL_LAYOUTS,
    ShardLayout,
    overhead_matrix,
    plan_reshard,
    requires_downtime,
    reshard_time_units,
    shard_transfer_unit_s,
)
from repro.llm.catalog import LLAMA2_13B, LLAMA2_70B
from repro.workload.classification import DEFAULT_SCHEME
from repro.workload.load_predictor import TemplateLoadPredictor
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.request import Request


class TestShardLayout:
    def test_layout_names(self):
        assert ShardLayout((8,)).name == "TP8"
        assert ShardLayout((2, 2, 2, 2)).name == "4TP2"
        assert ShardLayout((2, 4)).name.count("TP") == 2

    def test_layout_rejects_too_many_gpus(self):
        with pytest.raises(ValueError):
            ShardLayout((8, 2))

    def test_layout_rejects_bad_tp(self):
        with pytest.raises(ValueError):
            ShardLayout((3,))

    def test_gpu_shards_cover_model(self):
        shards = ShardLayout((4,)).gpu_shards()
        covered = set()
        for shard_set in shards:
            covered |= shard_set
        assert covered == set(range(8))

    def test_tp8_gpu_holds_one_shard_each(self):
        shards = ShardLayout((8,)).gpu_shards()
        assert all(len(s) == 1 for s in shards)


class TestReshardPlanner:
    """The planner must reproduce the paper's Table VI overheads."""

    @pytest.mark.parametrize(
        "source,destination,expected_units",
        [
            ("TP4", "TP8", 1),
            ("TP2", "TP8", 1),
            ("TP2", "TP4", 2),
            ("TP2", "4TP2", 4),
            ("TP4", "TP2", 2),
            ("TP8", "TP4", 1),
            ("TP8", "TP2", 1),
            ("2TP4", "TP8", 0),
            ("TP4", "2TP4", 2),
            ("TP8", "TP8", 0),
            ("TP2", "TP2", 0),
            ("4TP2", "TP8", 0),
            ("4TP2", "TP4", 0),
        ],
    )
    def test_table6_entries(self, source, destination, expected_units):
        units = reshard_time_units(CANONICAL_LAYOUTS[source], CANONICAL_LAYOUTS[destination])
        assert units == expected_units

    def test_matrix_diagonal_is_zero(self):
        matrix = overhead_matrix()
        for name in matrix:
            assert matrix[name][name] == 0

    def test_plan_transfers_only_missing_shards(self):
        plan = plan_reshard(CANONICAL_LAYOUTS["TP4"], CANONICAL_LAYOUTS["TP8"])
        assert plan.shards_moved == 4
        assert plan.time_units == 1
        # Every transfer sources a shard the destination did not hold.
        sources = CANONICAL_LAYOUTS["TP4"].gpu_shards()
        for src, dst, shards in plan.transfers:
            assert shards <= sources[src]

    def test_transfer_time_uses_nvlink_unit(self):
        plan = plan_reshard(CANONICAL_LAYOUTS["TP4"], CANONICAL_LAYOUTS["TP8"])
        unit = shard_transfer_unit_s(LLAMA2_70B)
        assert plan.transfer_time_s(LLAMA2_70B) == pytest.approx(unit)
        # 70B over 300 GB/s: one eighth (17.5 GB) takes ~58 ms.
        assert 0.03 < unit < 0.1

    def test_bytes_moved(self):
        plan = plan_reshard(CANONICAL_LAYOUTS["TP2"], CANONICAL_LAYOUTS["TP4"])
        assert plan.bytes_moved(LLAMA2_70B) == pytest.approx(
            plan.shards_moved * LLAMA2_70B.weight_bytes / 8
        )

    def test_downtime_required_for_70b_shrink_to_tp2(self):
        assert requires_downtime(4, 2, LLAMA2_70B)

    def test_no_downtime_for_growth(self):
        assert not requires_downtime(4, 8, LLAMA2_70B)
        assert not requires_downtime(2, 8, LLAMA2_70B)

    def test_no_downtime_for_small_model(self):
        assert not requires_downtime(4, 2, LLAMA2_13B)

    def test_no_downtime_for_tp8_to_tp4_70b(self):
        assert not requires_downtime(8, 4, LLAMA2_70B)


class TestOverheadModel:
    def test_scale_out_time_depends_on_optimization(self):
        optimized = OverheadModel(LLAMA2_70B, optimized_scale_out=True)
        naive = OverheadModel(LLAMA2_70B, optimized_scale_out=False)
        assert optimized.scale_out_time_s() < naive.scale_out_time_s()

    def test_reshard_total_includes_sync(self):
        overheads = OverheadModel(LLAMA2_70B)
        assert overheads.reshard_total_time_s(4, 8) > overheads.reshard_transfer_time_s(4, 8)

    def test_reshard_energy_positive(self):
        overheads = OverheadModel(LLAMA2_70B)
        assert overheads.reshard_energy_wh(4, 8) > 0.0

    def test_worth_it_requires_positive_saving(self):
        overheads = OverheadModel(LLAMA2_70B)
        assert not overheads.reshard_is_worth_it(4, 8, power_saving_watts=-10.0, horizon_s=300.0)

    def test_worth_it_for_large_saving(self):
        overheads = OverheadModel(LLAMA2_70B)
        assert overheads.reshard_is_worth_it(4, 8, power_saving_watts=2000.0, horizon_s=300.0)

    def test_not_worth_it_for_tiny_saving_short_horizon(self):
        overheads = OverheadModel(LLAMA2_70B)
        assert not overheads.reshard_is_worth_it(4, 8, power_saving_watts=1.0, horizon_s=5.0)

    def test_as_table_keys(self):
        table = OverheadModel(LLAMA2_70B).as_table()
        assert {"scale_out_s", "engine_sync_s", "frequency_switch_s", "shard_unit_T_s"} <= set(table)


class TestOptimizer:
    def test_plan_sharding_feasible_for_moderate_load(self, profile):
        plan = plan_sharding(profile, "MM", total_gpus=16, load_tps=3000.0)
        assert plan.feasible
        assert plan.total_gpus <= 16
        assert plan.total_load == pytest.approx(3000.0)

    def test_plan_sharding_infeasible_without_gpus(self, profile):
        assert not plan_sharding(profile, "MM", total_gpus=0, load_tps=100.0).feasible

    def test_plan_sharding_prefers_small_tp_at_low_load(self, profile):
        plan = plan_sharding(profile, "SS", total_gpus=8, load_tps=300.0)
        assert plan.feasible
        assert plan.allocations[0].tensor_parallelism == 2

    def test_plan_sharding_uses_more_gpus_at_high_load(self, profile):
        low = plan_sharding(profile, "MM", total_gpus=32, load_tps=1000.0)
        high = plan_sharding(profile, "MM", total_gpus=32, load_tps=12000.0)
        assert high.total_gpus > low.total_gpus

    def test_plan_sharding_fixed_frequency(self, profile):
        plan = plan_sharding(profile, "MM", total_gpus=8, load_tps=1000.0, frequency_mhz=1980)
        assert plan.feasible
        assert all(a.frequency_mhz == 1980 for a in plan.allocations)

    def test_instance_configs_flatten(self, profile):
        plan = plan_sharding(profile, "MM", total_gpus=16, load_tps=6000.0)
        configs = plan.instance_configs()
        assert len(configs) == plan.total_instances

    def test_plan_global_at_least_as_good_as_heuristic(self, profile):
        heuristic = plan_sharding(profile, "MM", total_gpus=16, load_tps=4000.0, frequency_mhz=1980)
        optimal = plan_global(profile, "MM", total_gpus=16, load_tps=4000.0)
        assert optimal.feasible
        assert optimal.expected_power_watts <= heuristic.expected_power_watts + 1e-6

    def test_plan_global_respects_gpu_budget(self, profile):
        plan = plan_global(profile, "SS", total_gpus=8, load_tps=2000.0)
        assert plan.feasible
        assert plan.total_gpus <= 8

    def test_minimal_gpu_budget_zero_for_no_load(self, profile):
        assert minimal_gpu_budget(profile, "MM", 0.0, max_gpus=64) == 0

    def test_minimal_gpu_budget_grows_with_load(self, profile):
        small = minimal_gpu_budget(profile, "MM", 500.0, max_gpus=64)
        large = minimal_gpu_budget(profile, "MM", 15000.0, max_gpus=64)
        assert 0 < small < large <= 64


class TestPoolStates:
    def test_build_pool_states_covers_scheme(self):
        pools = build_pool_states(DEFAULT_SCHEME)
        assert len(pools) == 9
        assert pools["LL"].governing_type == "LL"

    def test_load_window_tracks_arrivals(self):
        pool = PoolState(name="MM", member_types=("MM",), governing_type="MM")
        pool.observe_arrival(600)
        pool.roll_window(1.0, smoothing_s=1.0)
        assert pool.load_ema_tps == pytest.approx(600.0)
        assert pool.epoch_peak_tps >= 600.0

    def test_reset_epoch_peak(self):
        pool = PoolState(name="MM", member_types=("MM",), governing_type="MM")
        pool.observe_arrival(1200)
        pool.roll_window(1.0, smoothing_s=1.0)
        pool.observe_arrival(0)
        pool.roll_window(1.0, smoothing_s=1.0)
        pool.reset_epoch_peak()
        assert pool.epoch_peak_tps == pytest.approx(pool.load_ema_tps)


def _make_stack(profile, knobs=None, static_servers=4, max_servers=12):
    """Build a small cluster + DynamoLLM controller for controller tests."""
    cluster = GPUCluster(LLAMA2_70B, initial_servers=0, max_servers=max_servers)
    controller = DynamoLLM(
        model=LLAMA2_70B,
        cluster=cluster,
        profile=profile,
        knobs=knobs or ControllerKnobs(),
        epochs=ControllerEpochs(scale_epoch_s=60.0, shard_epoch_s=30.0, frequency_epoch_s=5.0),
        static_servers=static_servers,
        expected_load_fractions={"MM": 0.6, "LL": 0.4},
    )
    return cluster, controller


class TestClusterManager:
    def test_routing_uses_predicted_type(self, profile):
        cluster, controller = _make_stack(profile)
        manager = controller.cluster_manager
        request = Request(arrival_time=0.0, input_tokens=600, output_tokens=200)
        pool = manager.pool_for(request)
        assert pool == "MM"
        assert request.predicted_type == "MM"

    def test_overloaded_pool_spills_to_larger(self, profile):
        cluster, controller = _make_stack(profile)
        manager = controller.cluster_manager
        request = Request(arrival_time=0.0, input_tokens=600, output_tokens=200)
        pool = manager.pool_for(request, overloaded={"MM": True})
        assert pool != "MM"

    def test_scale_epoch_provisions_for_load(self, profile):
        cluster, controller = _make_stack(profile)
        manager = controller.cluster_manager
        manager.seed_history(0.0, {"MM": 8000.0})
        budgets = manager.scale_epoch(0.0)
        assert budgets["MM"] >= 1
        assert cluster.online_server_count + cluster.provisioner.pending_count() >= 1

    def test_scale_epoch_consolidates_trickle_pools(self, profile):
        cluster, controller = _make_stack(profile)
        manager = controller.cluster_manager
        manager.seed_history(0.0, {"SS": 20.0, "LL": 6000.0})
        manager.scale_epoch(0.0)
        assert manager.pools["SS"].spill_fraction == 1.0
        assert manager.pools["SS"].gpu_budget == 0

    def test_static_budgets_preserved_without_scaling(self, profile):
        knobs = ControllerKnobs(scale_instances=False, scale_sharding=False, scale_frequency=False)
        cluster, controller = _make_stack(profile, knobs=knobs)
        manager = controller.cluster_manager
        before = {name: pool.server_budget for name, pool in manager.pools.items()}
        manager.scale_epoch(0.0)
        after = {name: pool.server_budget for name, pool in manager.pools.items()}
        assert before == after

    def test_node_capacity_positive(self, profile):
        cluster, controller = _make_stack(profile)
        assert controller.cluster_manager.node_capacity("MM") > 0


class TestPoolAndInstanceManagers:
    def test_setup_creates_instances(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 4000.0, "LL": 3000.0})
        assert len(cluster.instances) > 0

    def test_select_instance_prefers_idle(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 6000.0})
        manager = controller.pool_managers["MM"]
        request = Request(arrival_time=0.0, input_tokens=600, output_tokens=200)
        chosen = manager.select_instance(request, now=0.0)
        assert chosen is not None
        assert chosen.pool == "MM"

    def test_shard_epoch_scales_with_budget(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 2000.0})
        manager = controller.pool_managers["MM"]
        pool = controller.cluster_manager.pools["MM"]
        before = manager.gpus_in_use()
        pool.gpu_budget = max(before * 2, 16)
        pool.predicted_load_tps = 12000.0
        manager.shard_epoch(10.0)
        assert manager.gpus_in_use() >= before

    def test_frequency_epoch_lowers_frequency_at_low_load(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 3000.0})
        instance_manager = controller.instance_managers["MM"]
        chosen = instance_manager.frequency_epoch(1.0)
        assert chosen
        assert all(frequency < 1980 for frequency in chosen.values())

    def test_frequency_disabled_keeps_max(self, profile):
        knobs = ControllerKnobs(scale_frequency=False)
        cluster, controller = _make_stack(profile, knobs=knobs)
        controller.setup(0.0, warm_loads={"MM": 3000.0})
        instance_manager = controller.instance_managers["MM"]
        instance_manager.frequency_epoch(1.0)
        for instance in controller.pool_managers["MM"].instances():
            assert instance.frequency.current_frequency_mhz == 1980

    def test_emergency_boosts_frequency(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 3000.0})
        manager = controller.pool_managers["MM"]
        instance = manager.instances()[0]
        instance.set_frequency(800, now=0.0)
        for index in range(20):
            instance.enqueue(
                Request(arrival_time=0.0, input_tokens=600, output_tokens=200), now=0.0
            )
        instance_manager = controller.instance_managers["MM"]
        instance_manager.frequency_epoch(40.0)
        assert instance.frequency.current_frequency_mhz == 1980

    def test_is_overloaded_when_no_instances(self, profile):
        cluster, controller = _make_stack(profile)
        assert controller.pool_managers["SS"].is_overloaded(0.0)


class TestFramework:
    def test_route_enqueues_request(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 3000.0, "LL": 2000.0})
        request = Request(arrival_time=0.0, input_tokens=600, output_tokens=200)
        instance = controller.route(request, now=0.0)
        assert instance is not None
        assert instance.active_requests == 1
        assert controller.routed_requests == 1

    def test_route_falls_back_when_pool_empty(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"LL": 2000.0})
        request = Request(arrival_time=0.0, input_tokens=100, output_tokens=50)  # SS
        instance = controller.route(request, now=0.0)
        assert instance is not None

    def test_on_step_fires_epochs(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 3000.0})
        for step in range(70):
            controller.on_step(float(step), 1.0)
        assert controller.events.count("scale_epoch") >= 1

    def test_pool_summary_structure(self, profile):
        cluster, controller = _make_stack(profile)
        controller.setup(0.0, warm_loads={"MM": 3000.0})
        summary = controller.pool_summary()
        assert set(summary) == set(DEFAULT_SCHEME.pool_names())
        assert {"servers", "gpus", "load_tps", "instances"} <= set(summary["MM"])

    def test_static_policy_fills_budget_with_tp8(self, profile):
        knobs = ControllerKnobs(
            scale_instances=False, scale_sharding=False, scale_frequency=False
        )
        cluster, controller = _make_stack(profile, knobs=knobs, static_servers=3)
        controller.setup(0.0)
        for instance in cluster.instances.values():
            assert instance.tensor_parallelism == 8
            assert instance.frequency.current_frequency_mhz == 1980
