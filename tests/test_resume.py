"""Resumable, fault-tolerant sweeps: restart semantics end to end.

The durability contract pinned here:

* file sinks **append** to an existing results file — a fresh sink on a
  half-written file preserves the prior records, reuses the CSV header
  and seeds ``count`` from disk; a torn final line (crash mid-write) is
  repaired on open and tolerated by the readers;
* ``resume=True`` executes exactly the scenarios missing from the sink
  (counted here via an execution counter) and the resumed file's record
  content equals an uninterrupted run's;
* a scenario that raises mid-sweep becomes a structured error record —
  the other scenarios complete, pool futures are not leaked, and a
  resumed sweep retries the failure;
* scenario keys are the record identity, so streamed sweeps reject
  duplicates instead of silently collapsing them.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    BinnedTrace,
    CsvSink,
    InMemorySink,
    JsonlSink,
    Scenario,
    ScenarioGrid,
    SweepReport,
    completed_keys,
    error_record,
    read_csv,
    read_jsonl,
    run_grid,
    run_policies,
    runs,
    sink_for_path,
    sweep,
)
from repro.policies import DYNAMO_LLM, SINGLE_POOL
from repro.policies.base import PolicySpec
from repro.workload.synthetic import make_week_trace

POLICY_NAMES = ("SinglePool", "MultiPool", "ScaleInst", "ScaleShard", "ScaleFreq", "DynamoLLM")


class ExplodingSpec(PolicySpec):
    """A policy that raises when the fluid runner asks for its scheme.

    ``_prepared`` does not touch ``scheme()`` on the fluid backend, so
    the failure happens inside the job — mid-sweep, exactly like a
    scenario whose simulation blows up.
    """

    def scheme(self, override=None):
        raise RuntimeError("simulated mid-sweep failure")


EXPLODING = ExplodingSpec(
    name="Exploding", multi_pool=True, scale_instances=True,
    scale_sharding=True, scale_frequency=True,
)


@pytest.fixture(scope="module")
def mini_trace():
    """Eight half-hour bins — seconds of fluid simulation per policy."""
    bins = make_week_trace("conversation", seed=7, rate_scale=10.0, bin_seconds=1800.0)
    return BinnedTrace(name="mini", bins=bins[:8])


@pytest.fixture(scope="module")
def mini_grid(mini_trace):
    return sweep(policies=POLICY_NAMES, traces=(mini_trace,), backends=("fluid",))


def _truncate_jsonl(path, keep):
    """Keep the first ``keep`` records, simulating a killed sweep."""
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:keep])
    return lines


# ----------------------------------------------------------------------
# Sink restart semantics: a *new* sink instance on a half-written file
# ----------------------------------------------------------------------
class TestSinkRestart:
    def test_fresh_jsonl_sink_appends_and_seeds_count(self, mini_grid, mini_trace, tmp_path):
        path = tmp_path / "restart.jsonl"
        run_grid(mini_grid, sink=JsonlSink(str(path)))
        _truncate_jsonl(path, 3)

        sink = JsonlSink(str(path))  # fresh instance, like a new process
        extra = sweep(policies=("SinglePool",), traces=(mini_trace,),
                      backends=("fluid",)).with_(label="again")
        run_grid(extra, sink=sink)
        records = read_jsonl(str(path))
        assert len(records) == sink.count == 4  # 3 preserved + 1 appended
        assert records[:3] == read_jsonl(str(path))[:3]
        assert sink.written == 1

    def test_fresh_csv_sink_reuses_header_and_count(self, mini_trace, tmp_path):
        path = tmp_path / "restart.csv"
        first = sweep(policies=("SinglePool", "DynamoLLM"), traces=(mini_trace,),
                      backends=("fluid",))
        run_grid(first, sink=CsvSink(str(path)))

        sink = CsvSink(str(path))
        second = sweep(policies=("ScaleInst",), traces=(mini_trace,), backends=("fluid",))
        run_grid(second, sink=sink)
        text = path.read_text()
        assert text.count("scenario,policy") == 1  # no duplicate header
        records = read_csv(str(path))
        assert [r["policy"] for r in records] == ["SinglePool", "DynamoLLM", "ScaleInst"]
        assert sink.count == 3

    def test_jsonl_torn_final_line_repaired_on_open(self, mini_grid, tmp_path):
        path = tmp_path / "torn.jsonl"
        run_grid(mini_grid, sink=JsonlSink(str(path)))
        whole = path.read_text()
        lines = whole.splitlines(keepends=True)
        path.write_text("".join(lines[:2]) + lines[2][: len(lines[2]) // 2])

        sink = JsonlSink(str(path))
        sink.open()
        assert sink.count == 2  # the torn half-record does not count
        sink.close()
        assert path.read_text() == "".join(lines[:2])  # partial record dropped

    def test_jsonl_complete_final_line_missing_newline_is_kept(self, tmp_path):
        path = tmp_path / "no-newline.jsonl"
        path.write_text('{"scenario": "a", "error": null}')  # no trailing \n
        sink = JsonlSink(str(path))
        sink.open()
        sink.close()
        assert sink.count == 1
        assert path.read_text().endswith("}\n")
        assert completed_keys(str(path)) == {"a"}

    def test_read_jsonl_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"scenario": "a", "error": null}\n{"scenario": "b", "ene')
        records = read_jsonl(str(path))
        assert [r["scenario"] for r in records] == ["a"]
        assert completed_keys(str(path)) == {"a"}

    def test_read_jsonl_rejects_corrupt_middle_line(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"scenario": "a"}\nnot json at all\n{"scenario": "b"}\n')
        with pytest.raises(ValueError, match="unparsable"):
            read_jsonl(str(path))

    def test_read_csv_drops_torn_final_row(self, mini_trace, tmp_path):
        path = tmp_path / "torn.csv"
        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(mini_trace,),
                     backends=("fluid",))
        run_grid(grid, sink=CsvSink(str(path)))
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1][:20])
        records = read_csv(str(path))
        assert [r["policy"] for r in records] == ["SinglePool"]
        assert completed_keys(str(path)) == {records[0]["scenario"]}

    def test_csv_sink_repairs_torn_final_row_on_open(self, mini_trace, tmp_path):
        path = tmp_path / "torn-repair.csv"
        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(mini_trace,),
                     backends=("fluid",))
        run_grid(grid, sink=CsvSink(str(path)))
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1][:20])
        sink = CsvSink(str(path))
        sink.open()
        sink.close()
        assert sink.count == 1
        assert path.read_text() == "".join(lines[:-1])

    def test_csv_torn_inside_last_cell_is_rerun_not_lost(self, mini_trace, tmp_path):
        """A row torn *inside its final cell* (every column delimiter
        present) must be repaired before resume counts completed keys —
        counting it as done would skip the scenario and then delete its
        only record."""
        path = tmp_path / "torn-cell.csv"
        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(mini_trace,),
                     backends=("fluid",))
        run_grid(grid, sink=CsvSink(str(path)))
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        # Chop inside the last cell, keeping all commas: drop the
        # row terminator and the final few characters of the last cell.
        torn = lines[-1].rstrip("\r\n")[:-2]
        path.write_text("".join(lines[:-1]) + torn)

        sink = run_grid(grid, sink=CsvSink(str(path), resume=True))
        assert sink.report.skipped == 1 and sink.report.ran == 1  # rerun, not lost
        records = read_csv(str(path))
        assert sorted(r["scenario"] for r in records) == sorted(grid.keys())
        assert all(r["energy_kwh"] > 0 for r in records)

    def test_csv_header_only_file_gets_no_second_header(self, mini_trace, tmp_path):
        """A sweep that died after the header (torn first data row)
        must not gain a duplicate header on restart."""
        path = tmp_path / "header-only.csv"
        empty = CsvSink(str(path))
        empty.open()  # writes the canonical header up front
        empty.close()
        assert read_csv(str(path)) == []

        grid = sweep(policies=("SinglePool",), traces=(mini_trace,), backends=("fluid",))
        run_grid(grid, sink=CsvSink(str(path), resume=True))
        text = path.read_text()
        assert text.count("scenario,policy") == 1
        (record,) = read_csv(str(path))
        assert record["policy"] == "SinglePool"
        assert completed_keys(str(path)) == {record["scenario"]}

    @pytest.mark.parametrize("suffix", ["jsonl", "csv"])
    def test_newline_terminated_torn_record_is_repaired(self, mini_trace, tmp_path, suffix):
        """A truncation landing exactly on the row terminator leaves a
        short-but-newline-terminated final record.  The readers tolerate
        it only while it is last, so the repair must drop it — otherwise
        a resumed append strands it as a corrupt *middle* record and
        every later read hard-fails."""
        path = tmp_path / f"torn-terminated.{suffix}"
        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(mini_trace,),
                     backends=("fluid",))
        sink_type = JsonlSink if suffix == "jsonl" else CsvSink
        run_grid(grid, sink=sink_type(str(path)))
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        # Chop characters out of the final record but keep its newline.
        path.write_text("".join(lines[:-1]) + lines[-1][:-12] + "\n")

        sink = run_grid(grid, sink=sink_type(str(path), resume=True))
        assert sink.report.skipped == 1 and sink.report.ran == 1
        reader = read_jsonl if suffix == "jsonl" else read_csv
        records = reader(str(path))  # parses cleanly end to end
        assert sorted(r["scenario"] for r in records) == sorted(grid.keys())
        assert all(not r.get("error") for r in records)

    def test_completed_keys_of_missing_file_is_empty(self, tmp_path):
        assert completed_keys(str(tmp_path / "nope.jsonl")) == set()

    def test_error_records_do_not_count_as_completed(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        sink = JsonlSink(str(path))
        with sink:
            sink.write_error("bad/one", RuntimeError("boom"))
        record = read_jsonl(str(path))[0]
        assert record == error_record("bad/one", RuntimeError("boom"))
        assert "RuntimeError: boom" in record["error"]
        assert completed_keys(str(path)) == set()


# ----------------------------------------------------------------------
# Resume: interrupted sweeps rerun exactly the missing scenarios
# ----------------------------------------------------------------------
class TestResume:
    def _counting(self, monkeypatch):
        """Count actual job executions through the streaming path."""
        from repro.api import executor

        calls = []
        original = executor._run_job

        def counted(job, lean, isolate=False):
            calls.append(job.scenario.key)
            return original(job, lean, isolate)

        monkeypatch.setattr(executor, "_run_job", counted)
        return calls

    @pytest.mark.parametrize("workers", [None, 3])
    def test_interrupted_sweep_resumes_missing_scenarios_only(
        self, mini_grid, tmp_path, monkeypatch, workers
    ):
        n, k = len(mini_grid), 4
        baseline = tmp_path / "full.jsonl"
        run_grid(mini_grid, sink=JsonlSink(str(baseline)))
        uninterrupted = {r["scenario"]: r for r in read_jsonl(str(baseline))}

        path = tmp_path / "interrupted.jsonl"
        run_grid(mini_grid, sink=JsonlSink(str(path)))
        _truncate_jsonl(path, k)

        calls = self._counting(monkeypatch)
        sink = run_grid(
            mini_grid, workers=workers, sink=JsonlSink(str(path)), resume=True
        )
        assert len(calls) == n - k  # exactly the missing scenarios ran
        assert sink.report == SweepReport(total=n, skipped=k, ran=n - k, failed=0)
        resumed = {r["scenario"]: r for r in read_jsonl(str(path))}
        assert resumed == uninterrupted  # record content equals one pass
        assert sink.count == n

    def test_resume_on_complete_file_runs_nothing(self, mini_grid, tmp_path, monkeypatch):
        path = tmp_path / "done.jsonl"
        run_grid(mini_grid, sink=JsonlSink(str(path)))
        calls = self._counting(monkeypatch)
        sink = run_grid(mini_grid, sink=JsonlSink(str(path), resume=True))
        assert calls == []
        assert sink.report.skipped == len(mini_grid)
        assert len(read_jsonl(str(path))) == len(mini_grid)

    def test_sink_resume_flag_implies_resume(self, mini_grid, tmp_path):
        path = tmp_path / "flag.jsonl"
        run_grid(mini_grid, sink=JsonlSink(str(path)))
        sink = run_grid(mini_grid, sink=JsonlSink(str(path), resume=True))
        assert sink.report.ran == 0 and sink.report.skipped == len(mini_grid)

    def test_resume_skips_before_traces_materialise(self, tmp_path, monkeypatch):
        """Completed scenarios must not even build their traces."""
        from repro.api import TraceSpec

        spec = TraceSpec(kind="week", service="conversation", rate_scale=10.0,
                         duration_s=4 * 3600.0)
        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(spec,),
                     backends=("fluid",))
        path = tmp_path / "lazy.jsonl"
        run_grid(grid, sink=JsonlSink(str(path)))

        def explode(self, *args, **kwargs):
            raise AssertionError("trace rebuilt despite resume")

        monkeypatch.setattr(TraceSpec, "build_bins", explode)
        sink = run_grid(grid, sink=JsonlSink(str(path), resume=True))
        assert sink.report.skipped == 2

    def test_resume_without_sink_raises(self, mini_grid):
        with pytest.raises(ValueError, match="requires sink="):
            runs(list(mini_grid), resume=True)
        with pytest.raises(ValueError, match="requires sink="):
            run_grid(mini_grid, resume=True)

    def test_resume_with_in_memory_sink(self, mini_grid):
        sink = InMemorySink()
        run_grid(mini_grid, sink=sink)
        report = run_grid(mini_grid, sink=sink, resume=True).report
        assert report.skipped == len(mini_grid) and report.ran == 0

    def test_run_policies_resume(self, mini_trace, tmp_path):
        path = tmp_path / "policies.jsonl"
        run_policies(mini_trace, (SINGLE_POOL,), backend="fluid",
                     sink=JsonlSink(str(path)))
        sink = run_policies(
            mini_trace, (SINGLE_POOL, DYNAMO_LLM), backend="fluid",
            sink=JsonlSink(str(path)), resume=True,
        )
        assert sink.report == SweepReport(total=2, skipped=1, ran=1, failed=0)
        assert sorted(r["scenario"] for r in read_jsonl(str(path))) == [
            "DynamoLLM", "SinglePool",
        ]

    def test_run_policies_resume_without_sink_raises(self, mini_trace):
        with pytest.raises(ValueError, match="requires sink="):
            run_policies(mini_trace, (SINGLE_POOL,), backend="fluid", resume=True)

    def test_run_policies_resume_is_trace_aware(self, mini_trace, tmp_path):
        """Policy-name keys do not encode the trace, so resuming a sink
        file written for a *different* trace must rerun everything."""
        other = BinnedTrace(name="other", bins=mini_trace.bins)
        path = tmp_path / "shared.jsonl"
        run_policies(other, (SINGLE_POOL, DYNAMO_LLM), backend="fluid",
                     sink=JsonlSink(str(path)))
        sink = run_policies(
            mini_trace, (SINGLE_POOL, DYNAMO_LLM), backend="fluid",
            sink=JsonlSink(str(path)), resume=True,
        )
        assert sink.report.skipped == 0 and sink.report.ran == 2
        records = read_jsonl(str(path))
        assert sorted(r["trace"] for r in records) == ["mini", "mini", "other", "other"]

    def test_run_policies_resume_skips_budget_profiling(self, tmp_path, monkeypatch):
        """A fully-completed event-backend resume must not pay the
        static-budget trace profiling."""
        from repro.workload.synthetic import make_one_hour_trace

        trace = make_one_hour_trace("conversation", seed=9, rate_scale=3.0).slice(0.0, 60.0)
        path = tmp_path / "budget.jsonl"
        run_policies(trace, (SINGLE_POOL,), sink=JsonlSink(str(path)), lean=True)

        from repro.experiments import runner

        def explode(*args, **kwargs):
            raise AssertionError("budget recomputed despite full resume")

        monkeypatch.setattr(runner, "recommended_static_servers", explode)
        sink = run_policies(
            trace, (SINGLE_POOL,), sink=JsonlSink(str(path)), resume=True, lean=True
        )
        assert sink.report.skipped == 1 and sink.report.ran == 0

    def test_csv_resume_round_trip(self, mini_grid, tmp_path):
        path = tmp_path / "resume.csv"
        run_grid(mini_grid, sink=CsvSink(str(path)))
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        path.write_text("".join(lines[:3]))  # header + 2 rows

        sink = run_grid(mini_grid, sink=CsvSink(str(path), resume=True))
        assert sink.report.skipped == 2
        records = read_csv(str(path))
        assert sorted(r["scenario"] for r in records) == sorted(mini_grid.keys())
        assert path.read_text().count("scenario,policy") == 1  # single header


# ----------------------------------------------------------------------
# Fault tolerance: a raising scenario cannot abort the sweep
# ----------------------------------------------------------------------
class TestFaultTolerance:
    def _grid_with_failure(self, mini_trace):
        return ScenarioGrid(
            [Scenario(policy="SinglePool", trace=mini_trace, backend="fluid"),
             Scenario(policy=EXPLODING, trace=mini_trace, backend="fluid"),
             Scenario(policy="DynamoLLM", trace=mini_trace, backend="fluid")]
        )

    @pytest.mark.parametrize("workers", [None, 3])
    def test_raising_scenario_yields_error_record(self, mini_trace, tmp_path, workers):
        grid = self._grid_with_failure(mini_trace)
        path = tmp_path / "fail.jsonl"
        sink = run_grid(grid, workers=workers, sink=JsonlSink(str(path)))
        assert sink.report == SweepReport(total=3, skipped=0, ran=2, failed=1)
        records = read_jsonl(str(path))
        assert len(records) == 3
        by_key = {r["scenario"]: r for r in records}
        failure = by_key["Exploding/mini/fluid"]
        assert failure["error"] == "RuntimeError: simulated mid-sweep failure"
        for key in ("SinglePool/mini/fluid", "DynamoLLM/mini/fluid"):
            assert by_key[key]["error"] is None
            assert by_key[key]["energy_kwh"] > 0

    def test_resume_retries_failed_scenarios(self, mini_trace, tmp_path):
        grid = self._grid_with_failure(mini_trace)
        path = tmp_path / "retry.jsonl"
        run_grid(grid, sink=JsonlSink(str(path)))
        sink = run_grid(grid, sink=JsonlSink(str(path), resume=True))
        # The two successes are skipped; the failure is retried (and
        # fails again, appending a second error record).
        assert sink.report == SweepReport(total=3, skipped=2, ran=0, failed=1)
        records = read_jsonl(str(path))
        assert sum(1 for r in records if r.get("error")) == 2

    def test_csv_error_records(self, mini_trace, tmp_path):
        grid = self._grid_with_failure(mini_trace)
        path = tmp_path / "fail.csv"
        run_grid(grid, sink=CsvSink(str(path)))
        records = read_csv(str(path))
        assert len(records) == 3
        by_key = {r["scenario"]: r for r in records}
        failure = by_key["Exploding/mini/fluid"]
        assert failure["error"] == "RuntimeError: simulated mid-sweep failure"
        assert failure["energy_kwh"] is None  # metric cells left empty
        assert by_key["SinglePool/mini/fluid"]["error"] is None
        assert completed_keys(str(path)) == {
            "SinglePool/mini/fluid", "DynamoLLM/mini/fluid",
        }

    def test_csv_error_before_any_success_keeps_full_schema(self, mini_trace, tmp_path):
        """The failing scenario completing first must not freeze a
        two-column header for the whole file — the canonical header is
        written up front."""
        grid = ScenarioGrid(
            [Scenario(policy=EXPLODING, trace=mini_trace, backend="fluid"),
             Scenario(policy="SinglePool", trace=mini_trace, backend="fluid")]
        )
        path = tmp_path / "error-first.csv"
        run_grid(grid, sink=CsvSink(str(path)))
        records = read_csv(str(path))
        assert len(records) == 2
        assert {r["scenario"] for r in records} == {
            "Exploding/mini/fluid", "SinglePool/mini/fluid",
        }
        success = next(r for r in records if r["error"] is None)
        assert success["energy_kwh"] > 0

    def test_csv_error_only_sweep_still_persists_failures(self, mini_trace, tmp_path):
        grid = ScenarioGrid([Scenario(policy=EXPLODING, trace=mini_trace, backend="fluid")])
        path = tmp_path / "only-errors.csv"
        sink = run_grid(grid, sink=CsvSink(str(path)))
        assert sink.report.failed == 1
        (record,) = read_csv(str(path))
        assert record["scenario"] == "Exploding/mini/fluid"
        assert "RuntimeError" in record["error"]

    def test_csv_error_only_file_resumes_with_full_schema(self, mini_trace, tmp_path):
        """Successes appended to a file created by an error-only sweep
        keep their metric columns (the header is canonical up front)."""
        path = tmp_path / "errors-then-success.csv"
        bad = ScenarioGrid([Scenario(policy=EXPLODING, trace=mini_trace, backend="fluid")])
        run_grid(bad, sink=CsvSink(str(path)))
        # Resume with a *superset* grid (the error record's key must stay
        # part of the resumed grid — foreign keys are a mismatch error).
        wider = ScenarioGrid(
            [
                Scenario(policy=EXPLODING, trace=mini_trace, backend="fluid"),
                Scenario(policy="SinglePool", trace=mini_trace, backend="fluid"),
            ]
        )
        run_grid(wider, sink=CsvSink(str(path), resume=True))
        records = read_csv(str(path))
        success = next(r for r in records if r["error"] is None)
        assert success["energy_kwh"] > 0  # metrics survived the resume
        assert path.read_text().count("scenario,policy") == 1

    def test_csv_error_message_newlines_are_collapsed(self, mini_trace, tmp_path):
        """Raw newlines in exception text must not enter CSV cells — a
        crash after an embedded newline would be indistinguishable from
        a complete row."""

        class MultilineBoom(PolicySpec):
            def scheme(self, override=None):
                raise RuntimeError("line one\nline two\r\nline three")

        spec = MultilineBoom(name="Multiline", multi_pool=True, scale_instances=True,
                             scale_sharding=True, scale_frequency=True)
        grid = ScenarioGrid([Scenario(policy=spec, trace=mini_trace, backend="fluid")])
        path = tmp_path / "multiline.csv"
        run_grid(grid, sink=CsvSink(str(path)))
        (record,) = read_csv(str(path))
        assert record["error"] == "RuntimeError: line one line two line three"
        # Every physical line is a complete row: reader and repair agree.
        sink = CsvSink(str(path))
        sink.open()
        assert sink.count == 1
        sink.close()

    def test_csv_legacy_header_without_error_column_refuses_error_records(
        self, mini_trace, tmp_path
    ):
        """Appending an error row to a pre-error-column CSV would strip
        the message and read back as a success — refuse loudly."""
        path = tmp_path / "legacy.csv"
        path.write_text(
            "scenario,policy,trace,energy_kwh\r\nA,SinglePool,mini,1.0\r\n"
        )
        grid = ScenarioGrid([Scenario(policy=EXPLODING, trace=mini_trace, backend="fluid")])
        with pytest.raises(ValueError, match="no 'error' column"):
            run_grid(grid, sink=CsvSink(str(path)))
        # The legacy successes still read and resume fine.
        assert completed_keys(str(path)) == {"A"}

    def test_in_memory_sink_collects_errors(self, mini_trace):
        grid = self._grid_with_failure(mini_trace)
        sink = run_grid(grid, sink=InMemorySink())
        assert set(sink.results) == {"SinglePool/mini/fluid", "DynamoLLM/mini/fluid"}
        assert set(sink.errors) == {"Exploding/mini/fluid"}
        assert isinstance(sink.errors["Exploding/mini/fluid"], RuntimeError)

    def test_sink_failure_cancels_pending_and_keeps_file_valid(self, mini_grid, tmp_path):
        """A broken *sink* stops the sweep without leaking futures, and
        the file still parses up to the last completed write."""

        class BrokenAfterOne(JsonlSink):
            def write(self, key, summary):
                if self.written >= 1:
                    raise OSError("disk full")
                super().write(key, summary)

        path = tmp_path / "broken.jsonl"
        sink = BrokenAfterOne(str(path))
        with pytest.raises(OSError, match="disk full"):
            run_grid(mini_grid, workers=3, sink=sink)
        assert sink._handle is None  # closed despite the error
        records = read_jsonl(str(path))  # file integrity: parses cleanly
        assert len(records) == 1 and records[0]["error"] is None
        assert sink.report.ran == 1  # partial report still attached

    def test_broken_pool_aborts_instead_of_faking_error_records(
        self, mini_grid, tmp_path, monkeypatch
    ):
        """A dead executor pool fails every remaining future with
        BrokenExecutor — infrastructure failure, not the scenarios'.
        The sweep must abort rather than fill the file with bogus
        per-scenario error records."""
        from concurrent.futures.thread import BrokenThreadPool

        from repro.api import executor

        def broken(job, lean, isolate=False):
            raise BrokenThreadPool("worker died")

        monkeypatch.setattr(executor, "_run_job", broken)
        path = tmp_path / "broken-pool.jsonl"
        with pytest.raises(BrokenThreadPool):
            run_grid(mini_grid, workers=3, sink=JsonlSink(str(path)))
        assert all(
            "BrokenThreadPool" not in str(r.get("error"))
            for r in read_jsonl(str(path))
        )

    def test_serial_job_failure_keeps_streaming(self, mini_trace, tmp_path):
        grid = self._grid_with_failure(mini_trace)
        sink = run_grid(grid, sink=JsonlSink(str(tmp_path / "serial.jsonl")))
        records = read_jsonl(sink.path)
        # Serial streaming preserves input order, error record included.
        assert [bool(r.get("error")) for r in records] == [False, True, False]


# ----------------------------------------------------------------------
# Key collisions: the durability contract rejects them up front
# ----------------------------------------------------------------------
class TestKeyCollisions:
    def test_runs_with_sink_rejects_duplicate_keys(self, mini_trace, tmp_path):
        scenario = Scenario(policy="SinglePool", trace=mini_trace, backend="fluid")
        with pytest.raises(ValueError, match="SinglePool/mini/fluid"):
            runs([scenario, scenario], sink=JsonlSink(str(tmp_path / "dup.jsonl")))
        assert not (tmp_path / "dup.jsonl").exists()  # rejected before opening

    def test_scenario_grid_rejects_duplicate_keys(self, mini_trace):
        scenario = Scenario(policy="SinglePool", trace=mini_trace, backend="fluid")
        with pytest.raises(ValueError, match="duplicate scenario key"):
            ScenarioGrid([scenario, scenario])

    def test_run_policies_rejects_duplicate_names(self, mini_trace):
        with pytest.raises(ValueError, match="'SinglePool'"):
            run_policies(mini_trace, (SINGLE_POOL, SINGLE_POOL), backend="fluid")

    def test_runs_without_sink_allows_duplicates(self, mini_trace):
        # List output has no key identity; duplicates are fine there.
        scenario = Scenario(policy="SinglePool", trace=mini_trace, backend="fluid")
        summaries = runs([scenario, scenario])
        assert len(summaries) == 2


# ----------------------------------------------------------------------
# sink_for_path and the .json refusal
# ----------------------------------------------------------------------
class TestSinkForPath:
    def test_json_extension_rejected(self):
        with pytest.raises(ValueError, match=r"\.jsonl or \.ndjson"):
            sink_for_path("results.json")

    def test_ndjson_maps_to_jsonl_sink(self):
        assert isinstance(sink_for_path("results.ndjson"), JsonlSink)

    def test_resume_flag_passes_through(self):
        assert sink_for_path("a.jsonl", resume=True).resume is True
        assert sink_for_path("a.csv", resume=True).resume is True
        assert sink_for_path("a.jsonl").resume is False


# ----------------------------------------------------------------------
# OSError normalisation: raw OS failures become actionable ValueErrors
# ----------------------------------------------------------------------
class TestSinkOpenErrors:
    """File-system failures must surface as short actionable messages
    naming the offending path — the CLI shows ValueError text without a
    traceback, so raw OSError reprs are useless there."""

    def test_missing_parent_directory_names_path_and_fix(self, tmp_path):
        path = str(tmp_path / "no" / "such" / "dir" / "out.jsonl")
        sink = sink_for_path(path)
        with pytest.raises(ValueError) as excinfo:
            sink.open()
        message = str(excinfo.value)
        assert path in message
        assert "parent directory" in message

    def test_directory_target_names_path_and_fix(self, tmp_path):
        sink = sink_for_path(str(tmp_path) + "/dir.csv")
        (tmp_path / "dir.csv").mkdir()
        with pytest.raises(ValueError, match="not a directory"):
            sink.open()

    def test_reader_on_directory_is_actionable(self, tmp_path):
        target = tmp_path / "dir.jsonl"
        target.mkdir()
        with pytest.raises(ValueError) as excinfo:
            read_jsonl(str(target))
        assert str(target) in str(excinfo.value)

    def test_reader_on_missing_file_says_check_path(self, tmp_path):
        missing = str(tmp_path / "gone.csv")
        from repro.api.sinks import read_csv

        with pytest.raises(ValueError, match="check the path exists"):
            read_csv(missing)

    def test_cli_surfaces_sink_error_without_traceback(self, tmp_path, capsys):
        from repro.__main__ import main

        out = str(tmp_path / "missing-dir" / "out.jsonl")
        code = main(
            ["sweep", "--backend", "fluid", "--trace", "week",
             "--rate-scale", "10", "--duration", "3600",
             "--policies", "SinglePool", "--out", out]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert out in err

    def test_campaign_manifest_missing_file_is_actionable(self, tmp_path):
        from repro.api.campaign import ManifestError, load_manifest

        missing = str(tmp_path / "nope.json")
        with pytest.raises(ManifestError) as excinfo:
            load_manifest(missing)
        message = str(excinfo.value)
        assert missing in message
        assert "check the path" in message

    def test_campaign_manifest_directory_is_actionable(self, tmp_path):
        from repro.api.campaign import ManifestError, load_manifest

        target = tmp_path / "dir.json"
        target.mkdir()
        with pytest.raises(ManifestError, match="cannot read manifest"):
            load_manifest(str(target))


# ----------------------------------------------------------------------
# CLI: python -m repro sweep --out ... --resume
# ----------------------------------------------------------------------
class TestCliResume:
    ARGS = ["sweep", "--backend", "fluid", "--trace", "week",
            "--rate-scale", "10", "--duration", str(6 * 3600),
            "--policies", "SinglePool,ScaleInst,DynamoLLM"]

    def _sweep(self, out, *extra):
        from repro.__main__ import main

        return main(self.ARGS + ["--out", str(out)] + list(extra))

    def test_interrupt_and_resume_round_trip(self, tmp_path, capsys):
        out = tmp_path / "cli.jsonl"
        assert self._sweep(out) == 0
        full = read_jsonl(str(out))
        assert len(full) == 3

        _truncate_jsonl(out, 1)
        assert self._sweep(out, "--resume") == 0
        report = capsys.readouterr().err
        assert "2 ran, 1 skipped, 0 failed" in report
        resumed = read_jsonl(str(out))
        assert len(resumed) == 3
        assert {json.dumps(r, sort_keys=True) for r in resumed} == {
            json.dumps(r, sort_keys=True) for r in full
        }

    def test_existing_file_without_resume_is_refused(self, tmp_path, capsys):
        out = tmp_path / "cli.jsonl"
        assert self._sweep(out) == 0
        assert self._sweep(out) == 2
        assert "pass --resume" in capsys.readouterr().err
        assert len(read_jsonl(str(out))) == 3  # untouched

    def test_resume_requires_out(self, capsys):
        from repro.__main__ import main

        assert main(self.ARGS + ["--resume"]) == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_json_out_rejected(self, tmp_path, capsys):
        assert self._sweep(tmp_path / "cli.json") == 2
        assert ".jsonl or .ndjson" in capsys.readouterr().err

    def test_resume_on_fresh_path_is_a_fresh_sweep(self, tmp_path):
        out = tmp_path / "fresh.jsonl"
        assert self._sweep(out, "--resume") == 0
        assert len(read_jsonl(str(out))) == 3
