"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.llm.catalog import LLAMA2_70B
from repro.perf.profiler import get_default_profile
from repro.workload.synthetic import make_one_hour_trace


@pytest.fixture(scope="session")
def profile():
    """The default Llama2-70B energy-performance profile (cached)."""
    return get_default_profile(LLAMA2_70B)


@pytest.fixture(scope="session")
def short_trace():
    """A ~5-minute slice of the synthetic 1-hour Conversation trace."""
    trace = make_one_hour_trace("conversation", seed=7, rate_scale=6.0)
    return trace.slice(0.0, 300.0)


@pytest.fixture(scope="session")
def tiny_trace():
    """A ~2-minute low-rate trace for fast integration tests."""
    trace = make_one_hour_trace("conversation", seed=9, rate_scale=3.0)
    return trace.slice(0.0, 120.0)


@pytest.fixture()
def experiment_config(profile):
    """A small but complete experiment configuration reusing the profile."""
    return ExperimentConfig(profile=profile, max_servers=16)
