"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.resharding import ShardLayout, plan_reshard
from repro.llm.catalog import LLAMA2_70B
from repro.perf.config import InstanceConfig, WorkloadSlice
from repro.perf.latency_model import LatencyModel
from repro.perf.power_model import PowerModel
from repro.workload.classification import (
    REQUEST_TYPE_NAMES,
    classify_length,
    equivalent_prompt_tokens,
)
from repro.workload.slo import SLOPolicy

_LATENCY = LatencyModel(LLAMA2_70B)
_POWER = PowerModel()

frequencies = st.sampled_from([800, 1000, 1200, 1400, 1600, 1800, 1980])
tps = st.sampled_from([2, 4, 8])
input_tokens = st.integers(min_value=1, max_value=8192)
output_tokens = st.integers(min_value=1, max_value=2048)


class TestClassificationProperties:
    @given(n_in=input_tokens, n_out=output_tokens)
    def test_every_length_pair_has_exactly_one_bucket(self, n_in, n_out):
        bucket = classify_length(n_in, n_out)
        assert bucket.name in REQUEST_TYPE_NAMES

    @given(n_in=input_tokens, n_out=output_tokens)
    def test_classification_monotone_in_lengths(self, n_in, n_out):
        bucket = classify_length(n_in, n_out)
        larger = classify_length(min(8192, n_in * 2), min(100000, n_out * 2))
        assert larger.size_rank >= bucket.size_rank or larger.name == bucket.name

    @given(
        tokens=st.integers(min_value=1, max_value=8192),
        source=st.sampled_from(REQUEST_TYPE_NAMES),
        target=st.sampled_from(REQUEST_TYPE_NAMES),
    )
    def test_equivalent_tokens_roundtrip(self, tokens, source, target):
        converted = equivalent_prompt_tokens(tokens, source, target)
        back = equivalent_prompt_tokens(converted, target, source)
        assert abs(back - tokens) < 1e-6 * max(1.0, tokens)

    @given(tokens=st.integers(min_value=1, max_value=8192), name=st.sampled_from(REQUEST_TYPE_NAMES))
    def test_equivalent_tokens_positive(self, tokens, name):
        assert equivalent_prompt_tokens(tokens, name, "LL") > 0


class TestSLOProperties:
    @given(scale=st.floats(min_value=0.1, max_value=20.0), name=st.sampled_from(REQUEST_TYPE_NAMES))
    def test_scaling_slo_scales_both_targets(self, scale, name):
        from repro.workload.classification import RequestType

        policy = SLOPolicy()
        base = policy.slo_for(RequestType.from_name(name))
        scaled = base.scaled(scale)
        assert scaled.ttft_s > 0 and scaled.tbt_s > 0
        assert abs(scaled.ttft_s - base.ttft_s * scale) < 1e-9


class TestPowerProperties:
    @given(frequency=frequencies, activity=st.floats(min_value=0.0, max_value=1.0))
    def test_power_bounded_between_idle_and_tdp(self, frequency, activity):
        power = _POWER.gpu_power(frequency, activity)
        assert _POWER.gpu.idle_watts - 1e-9 <= power <= _POWER.gpu.tdp_watts + 1e-9

    @given(frequency=frequencies, a=st.floats(0.0, 1.0), b=st.floats(0.0, 1.0))
    def test_power_monotone_in_activity(self, frequency, a, b):
        low, high = sorted((a, b))
        assert _POWER.gpu_power(frequency, low) <= _POWER.gpu_power(frequency, high) + 1e-9

    @given(tp=tps, frequency=frequencies, activity=st.floats(0.0, 1.0))
    def test_instance_power_scales_with_gpu_count(self, tp, frequency, activity):
        power = _POWER.instance_power(tp, frequency, activity)
        assert power >= tp * _POWER.gpu.idle_watts


class TestLatencyProperties:
    @settings(max_examples=40, deadline=None)
    @given(tp=tps, frequency=frequencies, n_in=st.integers(64, 4096))
    def test_prefill_time_positive_and_monotone_in_length(self, tp, frequency, n_in):
        config = InstanceConfig(tp, frequency)
        short = _LATENCY.prefill_time(config, n_in)
        long = _LATENCY.prefill_time(config, n_in * 2)
        assert short > 0
        assert long > short

    @settings(max_examples=40, deadline=None)
    @given(tp=tps, frequency=frequencies, load=st.floats(min_value=0.0, max_value=3000.0))
    def test_operating_point_invariants(self, tp, frequency, load):
        workload = WorkloadSlice(input_tokens=600, output_tokens=220, prompt_tokens_per_second=load)
        point = _LATENCY.solve(InstanceConfig(tp, frequency), workload)
        assert 0.0 <= point.power_activity <= 1.0
        if point.feasible:
            assert point.ttft_s >= 0.0
            assert point.tbt_s >= 0.0
            assert point.batch_size >= 0.0
            assert point.kv_tokens <= _LATENCY.kv_capacity_tokens(point.config) + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(tp=tps, frequency=frequencies)
    def test_feasible_region_shrinks_with_load(self, tp, frequency):
        config = InstanceConfig(tp, frequency)
        low = _LATENCY.solve(config, WorkloadSlice(600, 220, 200.0))
        high = _LATENCY.solve(config, WorkloadSlice(600, 220, 20000.0))
        # If the high load is feasible the low load must be feasible too.
        if high.feasible:
            assert low.feasible


class TestReshardingProperties:
    layouts = st.sampled_from(
        [
            ShardLayout((2,)),
            ShardLayout((4,)),
            ShardLayout((8,)),
            ShardLayout((2, 2, 2, 2)),
            ShardLayout((4, 4)),
            ShardLayout((2, 4)),
        ]
    )

    @given(source=layouts, destination=layouts)
    def test_plan_covers_destination_needs(self, source, destination):
        plan = plan_reshard(source, destination)
        assert plan.time_units >= 0
        assert plan.shards_moved >= 0
        # Self-transition never moves data.
        if source == destination:
            assert plan.shards_moved == 0

    @given(source=layouts, destination=layouts)
    def test_time_units_bounded_by_full_model(self, source, destination):
        plan = plan_reshard(source, destination)
        assert plan.time_units <= 8
        assert plan.shards_moved <= 8 * 8
