"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.resharding import ShardLayout, plan_reshard
from repro.llm.catalog import LLAMA2_70B
from repro.perf.config import InstanceConfig, WorkloadSlice
from repro.perf.latency_model import LatencyModel
from repro.perf.power_model import PowerModel
from repro.workload.classification import (
    REQUEST_TYPE_NAMES,
    classify_length,
    equivalent_prompt_tokens,
)
from repro.workload.slo import SLOPolicy

_LATENCY = LatencyModel(LLAMA2_70B)
_POWER = PowerModel()

frequencies = st.sampled_from([800, 1000, 1200, 1400, 1600, 1800, 1980])
tps = st.sampled_from([2, 4, 8])
input_tokens = st.integers(min_value=1, max_value=8192)
output_tokens = st.integers(min_value=1, max_value=2048)


class TestClassificationProperties:
    @given(n_in=input_tokens, n_out=output_tokens)
    def test_every_length_pair_has_exactly_one_bucket(self, n_in, n_out):
        bucket = classify_length(n_in, n_out)
        assert bucket.name in REQUEST_TYPE_NAMES

    @given(n_in=input_tokens, n_out=output_tokens)
    def test_classification_monotone_in_lengths(self, n_in, n_out):
        bucket = classify_length(n_in, n_out)
        larger = classify_length(min(8192, n_in * 2), min(100000, n_out * 2))
        assert larger.size_rank >= bucket.size_rank or larger.name == bucket.name

    @given(
        tokens=st.integers(min_value=1, max_value=8192),
        source=st.sampled_from(REQUEST_TYPE_NAMES),
        target=st.sampled_from(REQUEST_TYPE_NAMES),
    )
    def test_equivalent_tokens_roundtrip(self, tokens, source, target):
        converted = equivalent_prompt_tokens(tokens, source, target)
        back = equivalent_prompt_tokens(converted, target, source)
        assert abs(back - tokens) < 1e-6 * max(1.0, tokens)

    @given(tokens=st.integers(min_value=1, max_value=8192), name=st.sampled_from(REQUEST_TYPE_NAMES))
    def test_equivalent_tokens_positive(self, tokens, name):
        assert equivalent_prompt_tokens(tokens, name, "LL") > 0


class TestSLOProperties:
    @given(scale=st.floats(min_value=0.1, max_value=20.0), name=st.sampled_from(REQUEST_TYPE_NAMES))
    def test_scaling_slo_scales_both_targets(self, scale, name):
        from repro.workload.classification import RequestType

        policy = SLOPolicy()
        base = policy.slo_for(RequestType.from_name(name))
        scaled = base.scaled(scale)
        assert scaled.ttft_s > 0 and scaled.tbt_s > 0
        assert abs(scaled.ttft_s - base.ttft_s * scale) < 1e-9


class TestPowerProperties:
    @given(frequency=frequencies, activity=st.floats(min_value=0.0, max_value=1.0))
    def test_power_bounded_between_idle_and_tdp(self, frequency, activity):
        power = _POWER.gpu_power(frequency, activity)
        assert _POWER.gpu.idle_watts - 1e-9 <= power <= _POWER.gpu.tdp_watts + 1e-9

    @given(frequency=frequencies, a=st.floats(0.0, 1.0), b=st.floats(0.0, 1.0))
    def test_power_monotone_in_activity(self, frequency, a, b):
        low, high = sorted((a, b))
        assert _POWER.gpu_power(frequency, low) <= _POWER.gpu_power(frequency, high) + 1e-9

    @given(tp=tps, frequency=frequencies, activity=st.floats(0.0, 1.0))
    def test_instance_power_scales_with_gpu_count(self, tp, frequency, activity):
        power = _POWER.instance_power(tp, frequency, activity)
        assert power >= tp * _POWER.gpu.idle_watts


class TestLatencyProperties:
    @settings(max_examples=40, deadline=None)
    @given(tp=tps, frequency=frequencies, n_in=st.integers(64, 4096))
    def test_prefill_time_positive_and_monotone_in_length(self, tp, frequency, n_in):
        config = InstanceConfig(tp, frequency)
        short = _LATENCY.prefill_time(config, n_in)
        long = _LATENCY.prefill_time(config, n_in * 2)
        assert short > 0
        assert long > short

    @settings(max_examples=40, deadline=None)
    @given(tp=tps, frequency=frequencies, load=st.floats(min_value=0.0, max_value=3000.0))
    def test_operating_point_invariants(self, tp, frequency, load):
        workload = WorkloadSlice(input_tokens=600, output_tokens=220, prompt_tokens_per_second=load)
        point = _LATENCY.solve(InstanceConfig(tp, frequency), workload)
        assert 0.0 <= point.power_activity <= 1.0
        if point.feasible:
            assert point.ttft_s >= 0.0
            assert point.tbt_s >= 0.0
            assert point.batch_size >= 0.0
            assert point.kv_tokens <= _LATENCY.kv_capacity_tokens(point.config) + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(tp=tps, frequency=frequencies)
    def test_feasible_region_shrinks_with_load(self, tp, frequency):
        config = InstanceConfig(tp, frequency)
        low = _LATENCY.solve(config, WorkloadSlice(600, 220, 200.0))
        high = _LATENCY.solve(config, WorkloadSlice(600, 220, 20000.0))
        # If the high load is feasible the low load must be feasible too.
        if high.feasible:
            assert low.feasible


class TestReshardingProperties:
    layouts = st.sampled_from(
        [
            ShardLayout((2,)),
            ShardLayout((4,)),
            ShardLayout((8,)),
            ShardLayout((2, 2, 2, 2)),
            ShardLayout((4, 4)),
            ShardLayout((2, 4)),
        ]
    )

    @given(source=layouts, destination=layouts)
    def test_plan_covers_destination_needs(self, source, destination):
        plan = plan_reshard(source, destination)
        assert plan.time_units >= 0
        assert plan.shards_moved >= 0
        # Self-transition never moves data.
        if source == destination:
            assert plan.shards_moved == 0

    @given(source=layouts, destination=layouts)
    def test_time_units_bounded_by_full_model(self, source, destination):
        plan = plan_reshard(source, destination)
        assert plan.time_units <= 8
        assert plan.shards_moved <= 8 * 8


# ======================================================================
# Seeded-RNG property tests (hypothesis-free): sinks, observer totals,
# resample mass conservation.  Each case draws randomized inputs from an
# explicit ``random.Random(seed)`` so failures replay deterministically.
# ======================================================================
import math
import random

import pytest

from repro.api import (
    BinnedTrace,
    CsvSink,
    JsonlSink,
    Scenario,
    read_csv,
    read_jsonl,
    run_grid,
    run_scenario,
    summary_record,
    sweep,
)
from repro.workload.loaders import resample_trace
from repro.workload.request import Request
from repro.workload.synthetic import make_week_trace
from repro.workload.traces import Trace


def _random_fluid_scenarios(rng: random.Random, count: int):
    """Randomized (cheap) fluid scenarios over distinct synthetic days."""
    scenarios = []
    for index in range(count):
        bins = make_week_trace(
            rng.choice(("conversation", "coding")),
            seed=rng.randrange(1, 1000),
            rate_scale=rng.choice((10.0, 25.0, 40.0)),
            bin_seconds=rng.choice((900.0, 1800.0)),
        )[: rng.randrange(8, 24)]
        scenarios.append(
            Scenario(
                policy=rng.choice(("SinglePool", "ScaleInst", "DynamoLLM")),
                trace=BinnedTrace(name=f"rand-{index}", bins=bins),
                backend="fluid",
            )
        )
    return scenarios


class TestSinkRoundTripProperties:
    def test_jsonl_round_trip_identical_records(self, tmp_path):
        from repro.api import ScenarioGrid

        rng = random.Random(20260729)
        scenarios = _random_fluid_scenarios(rng, 6)
        path = tmp_path / "roundtrip.jsonl"
        run_grid(ScenarioGrid(scenarios), sink=JsonlSink(str(path)))
        expected = {
            s.key: summary_record(s.key, run_scenario(s)) for s in scenarios
        }
        for record in read_jsonl(str(path)):
            assert record == expected[record["scenario"]]

    def test_csv_round_trip_identical_records(self, tmp_path):
        rng = random.Random(42)
        scenarios = _random_fluid_scenarios(rng, 4)
        path = tmp_path / "roundtrip.csv"
        from repro.api import ScenarioGrid

        run_grid(ScenarioGrid(scenarios), sink=CsvSink(str(path)))
        expected = {
            s.key: summary_record(s.key, run_scenario(s)) for s in scenarios
        }
        records = read_csv(str(path))
        assert len(records) == len(scenarios)
        for record in records:
            want = expected[record["scenario"]]
            assert set(record) == set(want)
            for name, value in want.items():
                # Python float/int reprs round-trip exactly through JSON.
                assert record[name] == value, name


class TestObserverInvariantProperties:
    """Streaming observer totals equal the post-hoc accounting."""

    def test_fluid_backend_randomized(self):
        rng = random.Random(7)
        for scenario in _random_fluid_scenarios(rng, 5):
            summary = run_scenario(scenario)
            assert summary.carbon.total_kg == summary.carbon_kg()
            assert summary.cost.total_usd == summary.cost_usd()
            assert summary.cost.gpu_hours == pytest.approx(summary.gpu_hours, rel=1e-12)

    def test_event_backend_randomized(self, profile):
        from repro.experiments.runner import ExperimentConfig
        from repro.workload.synthetic import make_one_hour_trace

        rng = random.Random(11)
        config = ExperimentConfig(profile=profile, max_servers=12)
        for _ in range(2):
            trace = make_one_hour_trace(
                "conversation",
                seed=rng.randrange(1, 100),
                rate_scale=rng.choice((3.0, 5.0)),
            ).slice(0.0, rng.choice((90.0, 150.0)))
            summary = run_scenario(
                Scenario(
                    policy=rng.choice(("SinglePool", "DynamoLLM")),
                    trace=trace,
                    base_config=config,
                ),
                lean=True,
            )
            assert summary.carbon.total_kg == summary.carbon_kg()
            assert summary.cost.total_usd == summary.cost_usd()
            weighted = sum(
                summary.pool_slo_attainment[pool] * count
                for pool, count in summary.pool_request_counts.items()
            )
            total = sum(summary.pool_request_counts.values())
            if total:
                assert weighted / total == pytest.approx(summary.slo_attainment())


class TestResampleMassConservation:
    """resample_trace's error diffusion conserves burst mass."""

    @staticmethod
    def _random_trace(rng: random.Random, bin_seconds: float, n_bins: int) -> Trace:
        requests = []
        for index in range(n_bins):
            # Bursty: some bins empty, some dense.  Arrivals sit on a
            # 40 ms grid away from bin edges, so distinct requests are
            # >= 40 ms apart and replica jitter (1 ms per extra copy)
            # can neither collide copies of different requests nor push
            # one across a bin boundary.
            count = rng.choice((0, 1, 2, 5, 12, 30))
            slots = rng.sample(range(1, int(bin_seconds / 0.04) - 1), count)
            for slot in slots:
                requests.append(
                    Request(
                        arrival_time=index * bin_seconds + slot * 0.04,
                        input_tokens=rng.randrange(8, 2000),
                        output_tokens=rng.randrange(2, 800),
                        service="conversation",
                    )
                )
        return Trace(name="prop", requests=requests)

    def test_prefix_counts_follow_error_diffusion(self):
        rng = random.Random(99)
        for factor in (0.3, 0.7, 1.5, 2.25, 3.0):
            trace = self._random_trace(rng, 10.0, 30)
            resampled = resample_trace(trace, factor)
            # Copies of request at time t land in [t, t + 20 ms) — the
            # grid spacing guarantees unambiguous recovery.
            copies = {round(r.arrival_time, 4): 0 for r in trace.requests}
            for r in resampled.requests:
                origin = round(0.04 * math.floor((r.arrival_time + 1e-9) / 0.04), 4)
                copies[origin] += 1
            cumulative = 0
            for k, request in enumerate(trace.requests, start=1):
                cumulative += copies[round(request.arrival_time, 4)]
                # carry stays in [0, 1): factor*k - 1 < cumulative <= factor*k
                assert factor * k - 1 - 1e-6 < cumulative <= factor * k + 1e-6

    def test_per_bin_mass_scales_uniformly(self):
        """Every bin's request count scales by the factor within one unit."""
        rng = random.Random(123)
        bin_seconds = 10.0
        for factor in (0.4, 1.8, 2.5):
            trace = self._random_trace(rng, bin_seconds, 40)
            resampled = resample_trace(trace, factor)

            def bin_counts(t):
                counts = {}
                for r in t.requests:
                    counts[int(r.arrival_time // bin_seconds)] = (
                        counts.get(int(r.arrival_time // bin_seconds), 0) + 1
                    )
                return counts

            original = bin_counts(trace)
            scaled = bin_counts(resampled)
            for index, count in original.items():
                assert abs(scaled.get(index, 0) - factor * count) <= 1.0 + 1e-6
            # No mass appears in bins that had none.
            assert set(scaled) <= set(original)

    def test_total_token_mass_conserved(self):
        rng = random.Random(5)
        trace = self._random_trace(rng, 10.0, 50)
        for factor in (0.5, 2.0, 3.5):
            resampled = resample_trace(trace, factor)
            # Request count is conserved exactly (carry bounded by 1).
            assert abs(len(resampled.requests) - factor * len(trace.requests)) < 1.0 + 1e-6
            # Token mass scales approximately: copies are whole requests,
            # so per-request rounding (±1 copy, weighted by that
            # request's tokens) leaves a small relative error.
            original_mass = sum(r.total_tokens for r in trace.requests)
            scaled_mass = sum(r.total_tokens for r in resampled.requests)
            assert scaled_mass == pytest.approx(factor * original_mass, rel=0.05)


class TestInstanceQueueCounterProperties:
    """Randomised oracle checks for the incrementally maintained
    waiting-queue minimum and running-batch KV counters."""

    @staticmethod
    def _oracle_oldest_wait(instance, now):
        if not instance.waiting:
            return 0.0
        return now - min(state.enqueue_time for state in instance.waiting)

    def test_oldest_wait_matches_oracle_across_queue_mutations(self):
        from repro.cluster.instance import InferenceInstance
        from repro.workload.classification import classify_request
        from repro.workload.request import Request
        from repro.workload.slo import DEFAULT_SLO_POLICY

        rng = random.Random(20260807)
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=8)
        donor = InferenceInstance(LLAMA2_70B, tensor_parallelism=8)
        slo_lookup = lambda request: DEFAULT_SLO_POLICY.slo_for(
            classify_request(request)
        ).ttft_s
        now = 0.0
        for _ in range(400):
            now += rng.uniform(0.0, 2.0)
            op = rng.randrange(6)
            if op in (0, 1):  # enqueue (possibly out of order arrivals)
                request = Request(
                    arrival_time=max(0.0, now - rng.uniform(0.0, 5.0)),
                    input_tokens=rng.randrange(1, 4000),
                    output_tokens=rng.randrange(1, 800),
                )
                instance.enqueue(request, now - rng.uniform(0.0, 3.0))
            elif op == 2 and instance.waiting:
                stolen = instance.steal_waiting(rng.randrange(1, 4))
                donor.adopt(stolen, now)
            elif op == 3 and donor.waiting:
                instance.adopt(donor.steal_waiting(rng.randrange(1, 4)), now)
            elif op == 4:
                instance.reorder_queue_by_deadline(slo_lookup)
            elif op == 5:
                instance.squash_stale(now, wait_threshold_s=rng.uniform(1.0, 10.0))
            assert instance.oldest_wait_s(now) == pytest.approx(
                self._oracle_oldest_wait(instance, now), abs=0.0
            )
        # Both instances must agree with the oracle at the end.
        assert donor.oldest_wait_s(now) == pytest.approx(
            self._oracle_oldest_wait(donor, now), abs=0.0
        )

    def test_kv_counters_match_oracle_during_run(self, tiny_trace, experiment_config):
        from repro.api.engine import SimulationEngine
        from repro.policies.base import get_policy_spec

        engine = SimulationEngine(
            get_policy_spec("DynamoLLM"), tiny_trace, experiment_config, lean=True
        )
        checked = 0
        while engine.step():
            for instance in engine.cluster.instances.values():
                expected_kv = sum(s.context_tokens for s in instance.running)
                expected_reserved = sum(
                    s.request.input_tokens + s.generated_tokens
                    for s in instance.running
                )
                assert instance.kv_tokens_used == expected_kv
                assert instance._reserved_tokens == expected_reserved
                checked += 1
        assert checked > 0
