"""Manifest-driven campaigns: expansion, sharding, crash recovery, reports.

The campaign contract pinned here:

* a manifest parses, validates and expands **deterministically** —
  property-tested over seeded random manifests (same file, same keys,
  every time), with typos and invalid dimension combinations rejected
  up front with manifest context;
* :func:`~repro.api.campaign.shard_scenarios` partitions are disjoint,
  cover the grid, balance to within one scenario and are stable across
  runs — the invariants multi-host campaigns rely on;
* a campaign killed mid-run (SIGKILL, torn final record and all)
  resumes to results **byte-equivalent** to an uninterrupted run, and a
  4-way-sharded run with one shard killed and resumed reports a table
  identical to a single-shard uninterrupted run — exercised on the
  bundled 1008-scenario ``sensitivity_grid`` manifest (the acceptance
  grid);
* results files written by a *different* grid raise
  :class:`~repro.api.sinks.ResultsMismatchError` on resume, status and
  report instead of being silently skipped or mixed in;
* the golden ``campaign report`` tables of the bundled Figure 11/15/16
  manifests are pinned schema-exactly (floats at rel 1e-6) against
  ``tests/golden/``.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.api import (
    BinnedTrace,
    CampaignRunner,
    InMemorySink,
    JsonlSink,
    ManifestError,
    ReportSpec,
    ResultsMismatchError,
    Scenario,
    ScenarioGrid,
    build_report,
    expand_manifest,
    load_manifest,
    manifest_from_dict,
    read_jsonl,
    recorded_keys,
    runs,
    run_policies,
    shard_path,
    shard_scenarios,
)
from repro.api.campaign import discover_result_paths, scenario_dimensions
from repro.experiments.manifests import (
    list_manifests,
    manifest_path,
    resolve_manifest,
)
from repro.policies.base import PolicySpec
from repro.workload.synthetic import make_week_trace

POLICY_NAMES = ("SinglePool", "MultiPool", "ScaleInst", "ScaleShard", "ScaleFreq", "DynamoLLM")

#: Environment for CLI subprocesses: the test process's import path.
_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(*args):
    from repro.__main__ import main

    return main([str(a) for a in args])


def _smoke_manifest_data(output="smoke.jsonl", shards=2):
    """An in-test copy of the bundled smoke grid: 12 fluid scenarios."""
    return {
        "name": "test-smoke",
        "grid": {
            "policies": list(POLICY_NAMES),
            "traces": [
                {
                    "kind": "week",
                    "service": "conversation",
                    "rate_scale": 10.0,
                    "duration_s": 7200,
                }
            ],
            "seeds": [3, 5],
            "backends": ["fluid"],
            "fluid_bin_s": 1800,
        },
        "output": output,
        "execution": {"shards": shards, "lean": True},
        "report": {
            "value": "energy_kwh",
            "rows": ["policy"],
            "baseline": "SinglePool",
            "compare": "saving",
        },
    }


class ExplodingSpec(PolicySpec):
    """Raises when the fluid runner asks for its scheme — mid-sweep."""

    def scheme(self, override=None):
        raise RuntimeError("simulated mid-campaign failure")


EXPLODING = ExplodingSpec(
    name="Exploding", multi_pool=True, scale_instances=True,
    scale_sharding=True, scale_frequency=True,
)


@pytest.fixture(scope="module")
def mini_bins():
    bins = make_week_trace("conversation", seed=7, rate_scale=10.0, bin_seconds=1800.0)
    return BinnedTrace(name="mini", bins=bins[:4])


# ----------------------------------------------------------------------
# Manifest parsing and validation
# ----------------------------------------------------------------------
class TestManifest:
    def test_minimal_manifest_defaults(self):
        manifest = manifest_from_dict({"name": "m", "grid": {}})
        assert manifest.output == "m.jsonl"
        assert manifest.shards == 1 and manifest.lean is True
        grid = expand_manifest(manifest)
        assert len(grid) == 1  # default policy x default trace

    def test_json_file_round_trip(self, tmp_path):
        data = _smoke_manifest_data()
        path = tmp_path / "m.json"
        path.write_text(json.dumps(data))
        from_file = expand_manifest(load_manifest(str(path)))
        from_dict = expand_manifest(manifest_from_dict(data))
        assert from_file.keys() == from_dict.keys()
        assert len(from_file) == 12

    def test_toml_manifest(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841  (py3.11+)
        path = tmp_path / "m.toml"
        path.write_text(
            'name = "toml-smoke"\n'
            'output = "t.jsonl"\n'
            "[grid]\n"
            'policies = ["SinglePool", "DynamoLLM"]\n'
            "seeds = [3, 5]\n"
            'backends = ["fluid"]\n'
            "fluid_bin_s = 1800\n"
            "traces = [{kind = \"week\", rate_scale = 10.0, duration_s = 7200}]\n"
        )
        grid = expand_manifest(load_manifest(str(path)))
        assert len(grid) == 4

    def test_invalid_json_reports_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="broken.json"):
            load_manifest(str(path))

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ManifestError, match="yaml"):
            load_manifest(str(tmp_path / "m.yaml"))

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda d: d.update(outputs="x.jsonl"), "outputs"),
            (lambda d: d["grid"].update(accuracys=[1.0]), "accuracys"),
            (lambda d: d["execution"].update(worker=2), "worker"),
            (lambda d: d["report"].update(values="energy_kwh"), "values"),
        ],
    )
    def test_typos_are_rejected(self, mutate, needle):
        data = _smoke_manifest_data()
        mutate(data)
        with pytest.raises(ManifestError, match=needle):
            manifest_from_dict(data)

    def test_grid_and_grids_conflict(self):
        data = _smoke_manifest_data()
        data["grids"] = [data["grid"]]
        with pytest.raises(ManifestError, match="not both"):
            manifest_from_dict(data)

    def test_missing_name_rejected(self):
        with pytest.raises(ManifestError, match="name"):
            manifest_from_dict({"grid": {}})

    def test_missing_grid_rejected(self):
        with pytest.raises(ManifestError, match="grid"):
            manifest_from_dict({"name": "m"})

    def test_bad_output_extension_rejected(self):
        with pytest.raises(ManifestError, match="output"):
            manifest_from_dict({"name": "m", "grid": {}, "output": "results.json"})

    def test_bad_trace_field_rejected(self):
        data = {"name": "m", "grid": {"traces": [{"kindd": "week"}]}}
        with pytest.raises(ManifestError, match="kindd"):
            expand_manifest(manifest_from_dict(data))

    def test_trace_path_resolves_relative_to_manifest(self, tmp_path):
        from repro.workload.loaders import sample_trace_path

        sample = sample_trace_path("csv")
        data = {
            "name": "m",
            "grid": {"traces": [{"kind": "csv", "path": os.path.basename(sample)}]},
        }
        path = tmp_path / "m.json"
        path.write_text(json.dumps(data))
        manifest = load_manifest(str(path))
        with pytest.raises(ManifestError, match="bad trace"):
            # Resolved against the manifest's directory (file absent there).
            expand_manifest(manifest)
        # Copy the sample next to the manifest: now it resolves.
        import shutil

        shutil.copy(sample, tmp_path / os.path.basename(sample))
        grid = expand_manifest(load_manifest(str(path)))
        assert len(grid) == 1

    def test_seeds_with_file_traces_rejected(self):
        from repro.workload.loaders import sample_trace_path

        data = {
            "name": "m",
            "grid": {
                "traces": [{"kind": "csv", "path": sample_trace_path("csv")}],
                "seeds": [1, 2],
            },
        }
        with pytest.raises(ManifestError, match="seeds"):
            expand_manifest(manifest_from_dict(data))

    def test_event_dimensions_on_fluid_backend_rejected(self):
        data = {
            "name": "m",
            "grid": {
                "backends": ["fluid"],
                "traces": [{"kind": "week"}],
                "slo_scales": [1.0, 2.0],
            },
        }
        with pytest.raises(ManifestError, match="slo_scale"):
            expand_manifest(manifest_from_dict(data))

    def test_fluid_bin_on_event_backend_rejected(self):
        data = {"name": "m", "grid": {"fluid_bin_s": 300}}
        with pytest.raises(ManifestError, match="fluid_bin_s"):
            expand_manifest(manifest_from_dict(data))

    def test_week_trace_on_event_backend_rejected_up_front(self):
        # Binned-only trace kinds cannot run on the per-request event
        # backend; a 1000-scenario campaign must learn that at
        # validation, not at scenario 937.
        data = {"name": "m", "grid": {"traces": [{"kind": "week"}]}}
        with pytest.raises(ManifestError, match="binned"):
            expand_manifest(manifest_from_dict(data))

    def test_duplicate_keys_across_blocks_need_labels(self):
        block = {"policies": ["DynamoLLM"], "backends": ["fluid"],
                 "traces": [{"kind": "week"}]}
        data = {"name": "m", "grids": [block, dict(block)]}
        with pytest.raises(ManifestError, match="label"):
            expand_manifest(manifest_from_dict(data))
        data["grids"][1] = dict(block, label="b")
        grid = expand_manifest(manifest_from_dict(data))
        assert len(grid) == 2

    def test_unknown_policy_is_a_manifest_error(self):
        data = {"name": "m", "grid": {"policies": ["NoSuchPolicy"]}}
        with pytest.raises((ManifestError, KeyError), match="NoSuchPolicy"):
            expand_manifest(manifest_from_dict(data))

    def test_report_spec_validation(self):
        with pytest.raises(ManifestError, match="unknown report dimension"):
            ReportSpec(rows=("nope",))
        with pytest.raises(ManifestError, match="both rows and cols"):
            ReportSpec(rows=("policy",), cols=("policy",))
        with pytest.raises(ManifestError, match="compare"):
            ReportSpec(compare="diff")
        with pytest.raises(ManifestError, match="baseline"):
            ReportSpec(compare="saving")
        with pytest.raises(ManifestError, match="aggregate"):
            ReportSpec(aggregate="median")

    def test_bad_execution_values_rejected(self):
        for execution in ({"shards": 0}, {"workers": 0}, {"mode": "greenlet"}):
            data = {"name": "m", "grid": {}, "execution": execution}
            with pytest.raises(ManifestError):
                manifest_from_dict(data)

    def test_scalars_where_lists_belong_are_named(self):
        # tuple("DynamoLLM") would otherwise become per-character noise,
        # and tuple(int(v) for v in 4) an opaque "'int' object is not
        # iterable".
        data = {"name": "m", "grid": {"policies": "DynamoLLM"}}
        with pytest.raises(ManifestError, match=r"'policies' must be a list"):
            manifest_from_dict(data)
        data = {"name": "m", "grid": {"pool_counts": 4}}
        with pytest.raises(ManifestError, match=r"'pool_counts' must be a list"):
            manifest_from_dict(data)
        data = {"name": "m", "grid": {}, "report": {"rows": "policy"}}
        with pytest.raises(ManifestError, match=r"'rows' must be a list"):
            manifest_from_dict(data)
        # The schema's scalar keys stay scalars.
        data = {"name": "m", "grid": {"label": "a", "fluid_bin_s": 300,
                                      "backends": ["fluid"],
                                      "traces": [{"kind": "week"}]}}
        assert len(expand_manifest(manifest_from_dict(data))) == 1


# ----------------------------------------------------------------------
# Property tests: random manifests expand deterministically
# ----------------------------------------------------------------------
def _random_manifest(rng: random.Random):
    """A random valid manifest plus its expected expansion size."""
    backend = rng.choice(["event", "fluid"])
    kind = "week" if backend == "fluid" else "one_hour"
    traces = [
        {
            "kind": kind,
            "service": rng.choice(["conversation", "coding"]),
            "rate_scale": rng.choice([5.0, 10.0, 20.0]),
            "duration_s": 7200,
        }
    ]
    block = {
        "backends": [backend],
        "policies": rng.sample(POLICY_NAMES, rng.randint(1, 3)),
        "traces": traces,
    }
    size = len(block["policies"])
    if rng.random() < 0.8:
        block["seeds"] = rng.sample(range(1, 60), rng.randint(1, 4))
        size *= len(block["seeds"])
    if backend == "event":
        if rng.random() < 0.5:
            block["slo_scales"] = rng.sample([0.5, 1.0, 1.5, 2.0, 3.0], rng.randint(1, 3))
            size *= len(block["slo_scales"])
        if rng.random() < 0.5:
            block["accuracies"] = rng.sample([0.5, 0.6, 0.7, 0.8, 0.9, 1.0], rng.randint(1, 3))
            size *= len(block["accuracies"])
    else:
        block["fluid_bin_s"] = rng.choice([900, 1800, 3600])
    if rng.random() < 0.4:
        block["pool_counts"] = rng.sample([2, 4, 6, 9], rng.randint(1, 2))
        size *= len(block["pool_counts"])
    data = {"name": f"prop-{rng.randint(0, 10**6)}", "grid": block,
            "output": "prop.jsonl"}
    return data, size


class TestManifestProperties:
    @pytest.mark.parametrize("seed", range(12))
    def test_expansion_size_uniqueness_and_determinism(self, seed, tmp_path):
        rng = random.Random(1000 + seed)
        data, size = _random_manifest(rng)
        grid = expand_manifest(manifest_from_dict(data))
        assert len(grid) == size
        keys = grid.keys()
        assert len(set(keys)) == len(keys)  # unique
        # Deterministic: a fresh parse of the same data expands identically.
        assert expand_manifest(manifest_from_dict(data)).keys() == keys
        # And a file round trip preserves the grid exactly.
        path = tmp_path / "prop.json"
        path.write_text(json.dumps(data))
        assert expand_manifest(load_manifest(str(path))).keys() == keys

    @pytest.mark.parametrize("seed", range(8))
    def test_shard_partition_invariants(self, seed):
        rng = random.Random(2000 + seed)
        data, _ = _random_manifest(rng)
        grid = expand_manifest(manifest_from_dict(data))
        count = rng.randint(1, 7)
        shards = [shard_scenarios(grid, i, count) for i in range(count)]
        shard_keys = [tuple(s.key for s in shard) for shard in shards]
        flat = [key for keys in shard_keys for key in keys]
        # Disjoint and covering.
        assert len(flat) == len(set(flat)) == len(grid)
        assert set(flat) == set(grid.keys())
        # Balanced to within one scenario.
        sizes = sorted(len(keys) for keys in shard_keys)
        assert sizes[-1] - sizes[0] <= 1
        # Stable across runs: a fresh expansion shards identically.
        regrid = expand_manifest(manifest_from_dict(data))
        assert [
            tuple(s.key for s in shard_scenarios(regrid, i, count))
            for i in range(count)
        ] == shard_keys

    def test_shard_arguments_validated(self, mini_bins):
        grid = ScenarioGrid([Scenario(policy="SinglePool", trace=mini_bins, backend="fluid")])
        with pytest.raises(ValueError, match="outside"):
            shard_scenarios(grid, 2, 2)
        with pytest.raises(ValueError, match=">= 1"):
            shard_scenarios(grid, 0, 0)

    def test_shard_paths_round_trip_through_discovery(self, tmp_path):
        out = str(tmp_path / "c.jsonl")
        assert shard_path(out, 0, 1) == out
        paths = [shard_path(out, i, 3) for i in range(3)]
        assert len(set(paths)) == 3
        for path in paths:
            with open(path, "w", encoding="utf-8"):
                pass
        discovered = discover_result_paths(out)
        assert [shard for _, shard in discovered] == [(0, 3), (1, 3), (2, 3)]
        assert [path for path, _ in discovered] == paths


# ----------------------------------------------------------------------
# Runner end to end (small fluid campaign)
# ----------------------------------------------------------------------
class TestCampaignRunner:
    def _runner(self, tmp_path, shards=2, stem="camp"):
        manifest = manifest_from_dict(_smoke_manifest_data(shards=shards))
        return CampaignRunner(manifest, out=str(tmp_path / f"{stem}.jsonl"))

    def test_run_status_report_round_trip(self, tmp_path):
        runner = self._runner(tmp_path, shards=1)
        (shard_run,) = runner.run()
        assert shard_run.report.ran == 12 and shard_run.report.failed == 0
        status = runner.status()
        assert status.done and status.completed == 12 and status.pending == 0
        table = runner.report()
        assert table.columns[0] == "policy"
        savings = dict(zip((row[0] for row in table.rows), (row[1] for row in table.rows)))
        assert savings["SinglePool"] == 0.0
        assert savings["DynamoLLM"] > 0.0

    def test_rerun_skips_everything(self, tmp_path):
        runner = self._runner(tmp_path, shards=1)
        runner.run()
        (rerun,) = runner.run()
        assert rerun.report.ran == 0 and rerun.report.skipped == 12

    def test_manifest_shards_run_locally_in_sequence(self, tmp_path):
        runner = self._runner(tmp_path, shards=2)
        shard_runs = runner.run()
        assert [run.index for run in shard_runs] == [0, 1]
        assert all(run.report.ran == 6 for run in shard_runs)
        assert runner.status().done

    def test_sharded_report_equals_unsharded_report(self, tmp_path):
        sharded = self._runner(tmp_path / "a", shards=3, stem="sharded")
        os.makedirs(tmp_path / "a")
        for index in range(3):
            sharded.run(shard=(index, 3))
        single = self._runner(tmp_path / "b", shards=1, stem="single")
        os.makedirs(tmp_path / "b")
        single.run()
        assert sharded.report().to_dict() == single.report().to_dict()

    def test_partial_campaign_status_counts_pending(self, tmp_path):
        runner = self._runner(tmp_path, shards=2)
        runner.run(shard=(0, 2))
        status = runner.status()
        assert not status.done
        assert status.completed == 6 and status.pending == 6
        (shard,) = status.shards
        assert (shard.index, shard.count) == (0, 2)
        assert shard.expected == 6 and shard.pending == 0

    def test_no_resume_refuses_existing_results(self, tmp_path):
        runner = self._runner(tmp_path, shards=1)
        runner.run()
        with pytest.raises(ValueError, match="already holds results"):
            runner.run(resume=False)

    def test_failed_scenarios_roll_up_and_retry(self, tmp_path, mini_bins):
        grid = ScenarioGrid(
            [
                Scenario(policy="SinglePool", trace=mini_bins, backend="fluid"),
                Scenario(policy=EXPLODING, trace=mini_bins, backend="fluid"),
            ]
        )
        runner = CampaignRunner.from_grid(
            "boom", grid, output=str(tmp_path / "boom.jsonl")
        )
        (shard_run,) = runner.run()
        assert shard_run.report.ran == 1 and shard_run.report.failed == 1
        status = runner.status()
        assert status.failed == 1 and not status.done
        # The failure is retried on resume (and fails again).
        (rerun,) = runner.run()
        assert rerun.report.skipped == 1 and rerun.report.failed == 1

    def test_report_before_any_run_raises(self, tmp_path):
        runner = self._runner(tmp_path, shards=1)
        with pytest.raises(ManifestError, match="no successful records"):
            runner.report()

    def test_foreign_results_file_is_a_mismatch(self, tmp_path, mini_bins):
        runner = self._runner(tmp_path, shards=1)
        other = CampaignRunner.from_grid(
            "other",
            ScenarioGrid([Scenario(policy="SinglePool", trace=mini_bins, backend="fluid")]),
            output=runner.out,
        )
        other.run()
        with pytest.raises(ResultsMismatchError, match="different grid"):
            runner.status()
        with pytest.raises(ResultsMismatchError, match="different grid"):
            runner.report()
        with pytest.raises(ResultsMismatchError, match="different grid"):
            runner.run()  # resume against the foreign file

    def test_in_memory_run_matches_plain_runs(self, tmp_path):
        runner = self._runner(tmp_path, shards=1)
        sink = runner.run_in_memory()
        grid = runner.grid()
        direct = runs(list(grid), lean=True)
        assert set(sink.results) == set(grid.keys())
        for scenario, summary in zip(grid, direct):
            assert sink.results[scenario.key].energy_kwh == summary.energy_kwh

    def test_shard_run_into_supplied_sink(self, tmp_path):
        runner = self._runner(tmp_path, shards=2)
        sink = InMemorySink()
        (shard_run,) = runner.run(shard=(1, 2), sink=sink)
        assert shard_run.path is None and shard_run.report.ran == 6
        assert set(sink.results) == {
            s.key for s in shard_scenarios(runner.grid(), 1, 2)
        }


# ----------------------------------------------------------------------
# Resume mismatch fix (executors + sinks)
# ----------------------------------------------------------------------
class TestResumeMismatch:
    def test_runs_resume_rejects_foreign_records(self, tmp_path, mini_bins):
        path = str(tmp_path / "r.jsonl")
        first = [Scenario(policy="SinglePool", trace=mini_bins, backend="fluid")]
        runs(first, sink=JsonlSink(path))
        other = [Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid")]
        with pytest.raises(ResultsMismatchError, match="SinglePool/mini/fluid"):
            runs(other, sink=JsonlSink(path), resume=True)
        # Without resume the same call is a plain (non-skipping) append
        # and stays allowed — only resume interprets the file's records.
        runs(other, sink=JsonlSink(path))
        assert len(read_jsonl(path)) == 2

    def test_runs_resume_accepts_superset_grid(self, tmp_path, mini_bins):
        path = str(tmp_path / "r.jsonl")
        first = [Scenario(policy="SinglePool", trace=mini_bins, backend="fluid")]
        runs(first, sink=JsonlSink(path))
        wider = first + [Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid")]
        sink = runs(wider, sink=JsonlSink(path), resume=True)
        assert sink.report.skipped == 1 and sink.report.ran == 1

    def test_error_records_also_trip_the_mismatch(self, tmp_path, mini_bins):
        path = str(tmp_path / "r.jsonl")
        runs(
            [Scenario(policy=EXPLODING, trace=mini_bins, backend="fluid")],
            sink=JsonlSink(path),
        )
        with pytest.raises(ResultsMismatchError, match="Exploding"):
            runs(
                [Scenario(policy="SinglePool", trace=mini_bins, backend="fluid")],
                sink=JsonlSink(path),
                resume=True,
            )

    def test_run_policies_mismatch_is_trace_scoped(self, tmp_path, mini_bins):
        from repro.policies import DYNAMO_LLM, SINGLE_POOL

        path = str(tmp_path / "p.jsonl")
        other_trace = BinnedTrace(name="other", bins=mini_bins.bins)
        run_policies(other_trace, (SINGLE_POOL,), backend="fluid", sink=JsonlSink(path))
        # Records of a *different* trace do not block this trace's resume.
        sink = run_policies(
            mini_bins, (SINGLE_POOL, DYNAMO_LLM), backend="fluid",
            sink=JsonlSink(path), resume=True,
        )
        assert sink.report.ran == 2
        # But a same-trace record of a policy outside the sweep does.
        with pytest.raises(ResultsMismatchError, match="SinglePool"):
            run_policies(
                mini_bins, (DYNAMO_LLM,), backend="fluid",
                sink=JsonlSink(path), resume=True,
            )

    def test_recorded_keys_includes_errors(self, tmp_path, mini_bins):
        path = str(tmp_path / "r.jsonl")
        runs(
            [
                Scenario(policy="SinglePool", trace=mini_bins, backend="fluid"),
                Scenario(policy=EXPLODING, trace=mini_bins, backend="fluid"),
            ],
            sink=JsonlSink(path),
        )
        from repro.api import completed_keys

        assert completed_keys(path) == {"SinglePool/mini/fluid"}
        assert recorded_keys(path) == {"SinglePool/mini/fluid", "Exploding/mini/fluid"}
        # With a trace filter, unattributable error records drop out.
        assert recorded_keys(path, trace="mini") == {"SinglePool/mini/fluid"}

    def test_in_memory_sink_recorded_keys(self, mini_bins):
        sink = InMemorySink()
        runs(
            [
                Scenario(policy="SinglePool", trace=mini_bins, backend="fluid"),
                Scenario(policy=EXPLODING, trace=mini_bins, backend="fluid"),
            ],
            sink=sink,
        )
        assert sink.recorded_keys() == {
            "SinglePool/mini/fluid",
            "Exploding/mini/fluid",
        }
        assert sink.completed_keys() == {"SinglePool/mini/fluid"}


# ----------------------------------------------------------------------
# Crash injection: the acceptance grid (1008 scenarios)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sensitivity_manifest():
    return load_manifest(manifest_path("sensitivity_grid"))


@pytest.fixture(scope="module")
def uninterrupted_run(sensitivity_manifest, tmp_path_factory):
    """One uninterrupted, single-shard, serial run of the 1008-grid."""
    out = str(tmp_path_factory.mktemp("uninterrupted") / "full.jsonl")
    runner = CampaignRunner(sensitivity_manifest, out=out)
    (shard_run,) = runner.run(shard=(0, 1))
    assert shard_run.report.ran == len(runner.grid())
    return runner


def _kill_mid_run(args, watch_path, min_records, cwd, max_wait_s=120.0):
    """Start a campaign CLI subprocess and SIGKILL it mid-stream.

    Waits until ``watch_path`` holds at least ``min_records`` lines
    (records flush per completion, so the file grows live), then kills
    the process group hard — mid-write torn records and all.
    """
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run", *map(str, args)],
        env=_subprocess_env(),
        cwd=cwd,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # Harness wall-clock (subprocess kill deadline), not simulation state.
    deadline = time.monotonic() + max_wait_s  # repro-lint: disable=DET001
    try:
        while time.monotonic() < deadline:  # repro-lint: disable=DET001
            if process.poll() is not None:
                raise AssertionError(
                    "campaign subprocess finished before the kill landed — "
                    "raise min_records or enlarge the grid"
                )
            try:
                with open(watch_path, "rb") as handle:
                    if handle.read().count(b"\n") >= min_records:
                        break
            except FileNotFoundError:
                pass
            time.sleep(0.01)
        else:
            raise AssertionError("campaign subprocess produced no records in time")
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)


class TestCrashInjection:
    def test_acceptance_grid_expands_and_shards(self, sensitivity_manifest):
        grid = expand_manifest(sensitivity_manifest)
        assert len(grid) >= 1000
        assert sensitivity_manifest.shards == 4
        shards = [shard_scenarios(grid, i, 4) for i in range(4)]
        assert sum(len(s) for s in shards) == len(grid)
        assert {s.key for shard in shards for s in shard} == set(grid.keys())
        # Deterministic: a second expansion shards identically.
        again = expand_manifest(sensitivity_manifest)
        assert [
            [s.key for s in shard_scenarios(again, i, 4)] for i in range(4)
        ] == [[s.key for s in shard] for shard in shards]

    def test_sigkill_then_resume_is_byte_equivalent(
        self, sensitivity_manifest, uninterrupted_run, tmp_path
    ):
        """Kill a serial single-shard campaign mid-stream; the resumed
        file must equal an uninterrupted run's byte for byte."""
        out = str(tmp_path / "killed.jsonl")
        _kill_mid_run(
            ["sensitivity_grid", "--shard", "0/1", "--out", out],
            watch_path=out,
            min_records=40,
            cwd=str(tmp_path),
        )
        survivors = read_jsonl(out)
        total = len(uninterrupted_run.grid())
        assert 0 < len(survivors) < total  # the kill landed mid-run
        # Resume in-process (CLI default --resume) and compare bytes.
        assert _cli("campaign", "run", "sensitivity_grid", "--shard", "0/1", "--out", out) == 0
        with open(out, "rb") as handle:
            resumed = handle.read()
        with open(uninterrupted_run.out, "rb") as handle:
            reference = handle.read()
        assert resumed == reference

    def test_killed_shard_resumes_to_identical_report(
        self, sensitivity_manifest, uninterrupted_run, tmp_path
    ):
        """4-way sharded run with one shard SIGKILLed and resumed: the
        campaign report equals the uninterrupted single-shard run's."""
        out = str(tmp_path / "sharded.jsonl")
        runner = CampaignRunner(sensitivity_manifest, out=out)
        for index in (0, 2, 3):
            runner.run(shard=(index, 4))
        victim = shard_path(out, 1, 4)
        _kill_mid_run(
            ["sensitivity_grid", "--shard", "1/4", "--out", out],
            watch_path=victim,
            min_records=20,
            cwd=str(tmp_path),
        )
        status = runner.status()
        assert status.pending > 0  # the kill left work behind
        (resumed,) = runner.run(shard=(1, 4))
        assert resumed.report.skipped > 0  # the survivors were honoured
        status = runner.status()
        assert status.done and status.completed == len(runner.grid())
        assert runner.report().to_dict() == uninterrupted_run.report().to_dict()

    def test_truncated_tail_resumes_to_byte_equivalence(self, tmp_path):
        """A torn final record (crash landing mid-write) repairs and
        resumes to the uninterrupted bytes — campaign-level restatement
        of the sink durability contract."""
        manifest = manifest_from_dict(_smoke_manifest_data(shards=1))
        out = tmp_path / "torn.jsonl"
        runner = CampaignRunner(manifest, out=str(out))
        runner.run()
        reference = out.read_bytes()
        lines = reference.split(b"\n")
        torn = b"\n".join(lines[:8]) + b"\n" + lines[8][: len(lines[8]) // 2]
        out.write_bytes(torn)
        rerun_runner = CampaignRunner(manifest, out=str(out))
        (shard_run,) = rerun_runner.run()
        assert shard_run.report.skipped == 8 and shard_run.report.ran == 4
        assert out.read_bytes() == reference


# ----------------------------------------------------------------------
# Golden reports (bundled Figure 11/15/16 manifests)
# ----------------------------------------------------------------------
GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")
GOLDEN_CAMPAIGNS = ("fig11_accuracy", "fig15_daily", "fig16_carbon")


class TestGoldenReports:
    @pytest.mark.parametrize("name", GOLDEN_CAMPAIGNS)
    def test_report_matches_golden(self, name):
        runner = CampaignRunner(
            load_manifest(manifest_path(name)),
            out=os.path.join(GOLDEN_DIR, f"{name}.results.jsonl"),
        )
        status = runner.status()
        assert status.done, f"golden results for {name} are incomplete"
        actual = runner.report().to_dict()
        with open(os.path.join(GOLDEN_DIR, f"{name}.report.json"), encoding="utf-8") as handle:
            expected = json.load(handle)
        # Schema-exact: identical columns, dimensions and row labels.
        for field in ("name", "value", "compare", "baseline", "row_dims", "col_dims", "columns"):
            assert actual[field] == expected[field], field
        assert len(actual["rows"]) == len(expected["rows"])
        dims = len(expected["row_dims"])
        for actual_row, expected_row in zip(actual["rows"], expected["rows"]):
            assert actual_row[:dims] == expected_row[:dims]
            for position, (got, want) in enumerate(
                zip(actual_row[dims:], expected_row[dims:])
            ):
                if want is None:
                    assert got is None, (expected_row, position)
                else:
                    # Tolerant float compare: the aggregation must not
                    # drift, but float formatting may.
                    assert got == pytest.approx(want, rel=1e-6), (
                        expected_row,
                        position,
                    )

    def test_golden_results_do_not_satisfy_other_manifests(self):
        # The fig15 results file describes a different grid than fig16:
        # pointing a campaign at the wrong golden file is a mismatch.
        runner = CampaignRunner(
            load_manifest(manifest_path("fig16_carbon")),
            out=os.path.join(GOLDEN_DIR, "fig15_daily.results.jsonl"),
        )
        with pytest.raises(ResultsMismatchError):
            runner.report()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCampaignCLI:
    def test_run_bundled_campaign_shard_requires_out(self):
        from repro.experiments.manifests import run_bundled_campaign

        # A scratch-dir shard run would delete its records on return —
        # the campaign could never complete.
        with pytest.raises(ValueError, match="shard= requires out="):
            run_bundled_campaign("smoke", shard=(0, 2))

    def test_bundled_manifests_resolve(self):
        assert set(GOLDEN_CAMPAIGNS) <= set(list_manifests())
        assert os.path.exists(resolve_manifest("smoke"))
        with pytest.raises(KeyError, match="bundled"):
            resolve_manifest("no_such_manifest")

    def test_validate_and_list(self, capsys):
        assert _cli("campaign", "validate", "smoke", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenarios"] == 12 and payload["shards"] == 2
        assert _cli("campaign", "list") == 0
        assert "sensitivity_grid" in capsys.readouterr().out

    def test_run_status_report_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "cli.jsonl")
        assert _cli("campaign", "run", "smoke", "--out", out) == 0
        err = capsys.readouterr().err
        assert "6 ran" in err and "2 shard run(s)" in err
        assert _cli("campaign", "status", "smoke", "--out", out, "--json") == 0
        status = json.loads(capsys.readouterr().out)
        assert status["done"] and status["completed"] == 12
        assert _cli("campaign", "report", "smoke", "--out", out) == 0
        assert "saving vs SinglePool" in capsys.readouterr().out

    def test_single_shard_flag(self, tmp_path, capsys):
        out = str(tmp_path / "cli.jsonl")
        assert _cli("campaign", "run", "smoke", "--shard", "1/2", "--out", out) == 0
        capsys.readouterr()
        assert _cli("campaign", "status", "smoke", "--out", out) == 0
        assert "6/12 completed" in capsys.readouterr().out

    @pytest.mark.parametrize("spec", ["3", "a/b", "2/2", "-1/2", "0/0"])
    def test_bad_shard_specs_rejected(self, tmp_path, capsys, spec):
        out = str(tmp_path / "cli.jsonl")
        # --shard=... form: argparse would read a bare "-1/2" as an option.
        assert _cli("campaign", "run", "smoke", f"--shard={spec}", "--out", out) == 2
        assert "shard" in capsys.readouterr().err

    def test_report_before_run_fails_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "cli.jsonl")
        assert _cli("campaign", "report", "smoke", "--out", out) == 2
        assert "no successful records" in capsys.readouterr().err

    def test_unknown_manifest_fails_cleanly(self, capsys):
        assert _cli("campaign", "validate", "no_such_manifest") == 2
        assert "bundled" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Report builder (pure aggregation, no simulation)
# ----------------------------------------------------------------------
def _fake_records(grid, values):
    return {
        scenario.key: {"scenario": scenario.key, "energy_kwh": value, "error": None}
        for scenario, value in zip(grid, values)
    }


class TestReportBuilder:
    def _grid(self, mini_bins):
        scenarios = [
            Scenario(policy="SinglePool", trace=mini_bins, backend="fluid"),
            Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid",
                     pool_count=2),
            Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid",
                     pool_count=4),
        ]
        return ScenarioGrid(scenarios)

    def test_raw_pivot(self, mini_bins):
        grid = self._grid(mini_bins)
        table = build_report(
            ReportSpec(value="energy_kwh", rows=("policy",), cols=("pool_count",)),
            grid,
            _fake_records(grid, [10.0, 6.0, 4.0]),
        )
        assert table.columns == ("policy", "pool_count=-", "pool_count=2", "pool_count=4")
        assert table.rows == (
            ("DynamoLLM", None, 6.0, 4.0),
            ("SinglePool", 10.0, None, None),
        )

    def test_saving_uses_wildcard_baseline(self, mini_bins):
        grid = self._grid(mini_bins)
        table = build_report(
            ReportSpec(
                value="energy_kwh", rows=("policy",), cols=("pool_count",),
                baseline="SinglePool", compare="saving",
            ),
            grid,
            _fake_records(grid, [10.0, 6.0, 4.0]),
        )
        by_policy = {row[0]: row[1:] for row in table.rows}
        # The pool-countless baseline matches every pool-count cell.
        assert by_policy["DynamoLLM"][1] == pytest.approx(0.4)
        assert by_policy["DynamoLLM"][2] == pytest.approx(0.6)
        assert by_policy["SinglePool"][0] == pytest.approx(0.0)

    def test_ratio_compare(self, mini_bins):
        grid = self._grid(mini_bins)
        table = build_report(
            ReportSpec(
                value="energy_kwh", rows=("policy",),
                baseline="SinglePool", compare="ratio",
            ),
            grid,
            _fake_records(grid, [10.0, 6.0, 4.0]),
        )
        by_policy = {row[0]: row[1] for row in table.rows}
        assert by_policy["DynamoLLM"] == pytest.approx((0.6 + 0.4) / 2)

    def test_seed_cells_aggregate(self, mini_bins):
        base = Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid")
        grid = ScenarioGrid(
            [base, base.with_(label="b")]
        )
        table = build_report(
            ReportSpec(value="energy_kwh", rows=("policy",), aggregate="mean"),
            grid,
            _fake_records(grid, [2.0, 4.0]),
        )
        assert table.rows == (("DynamoLLM", 3.0),)
        table = build_report(
            ReportSpec(value="energy_kwh", rows=("policy",), aggregate="max"),
            grid,
            _fake_records(grid, [2.0, 4.0]),
        )
        assert table.rows == (("DynamoLLM", 4.0),)

    def test_labeled_baseline_block_still_anchors_compares(self, mini_bins):
        # "label" disambiguates grid blocks; it must not pin the
        # baseline match (a labeled baseline anchors unlabeled cells).
        grid = ScenarioGrid(
            [
                Scenario(policy="SinglePool", trace=mini_bins, backend="fluid",
                         label="base"),
                Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid"),
            ]
        )
        table = build_report(
            ReportSpec(value="energy_kwh", rows=("policy",),
                       baseline="SinglePool", compare="saving"),
            grid,
            _fake_records(grid, [10.0, 4.0]),
        )
        by_policy = {row[0]: row[1] for row in table.rows}
        assert by_policy["DynamoLLM"] == pytest.approx(0.6)

    def test_zero_baseline_rejected_for_relative_compare(self, mini_bins):
        grid = self._grid(mini_bins)
        with pytest.raises(ManifestError, match="undefined"):
            build_report(
                ReportSpec(
                    value="energy_kwh", rows=("policy",),
                    baseline="SinglePool", compare="saving",
                ),
                grid,
                _fake_records(grid, [0.0, 6.0, 4.0]),
            )

    def test_missing_baseline_record_raises(self, mini_bins):
        grid = ScenarioGrid(
            [Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid")]
        )
        with pytest.raises(ManifestError, match="baseline"):
            build_report(
                ReportSpec(
                    value="energy_kwh", rows=("policy",),
                    baseline="SinglePool", compare="saving",
                ),
                grid,
                _fake_records(grid, [5.0]),
            )

    def test_unknown_value_column_lists_numeric_columns(self, mini_bins):
        grid = ScenarioGrid(
            [Scenario(policy="DynamoLLM", trace=mini_bins, backend="fluid")]
        )
        with pytest.raises(ManifestError, match="energy_kwh"):
            build_report(
                ReportSpec(value="joules", rows=("policy",)),
                grid,
                _fake_records(grid, [5.0]),
            )

    def test_scenario_dimensions_cover_trace_spec_fields(self):
        from repro.api import TraceSpec

        scenario = Scenario(
            policy="DynamoLLM",
            trace=TraceSpec(kind="week", service="coding", rate_scale=12.0, seed=9),
            backend="fluid",
            fluid_bin_s=900.0,
        )
        dims = scenario_dimensions(scenario)
        assert dims["policy"] == "DynamoLLM"
        assert dims["service"] == "coding"
        assert dims["rate_scale"] == 12.0
        assert dims["seed"] == 9
        assert dims["fluid_bin_s"] == 900.0
        assert dims["level"] is None  # not a poisson trace

    def test_figure_driver_summary_lookup_reraises_run_errors(self, mini_bins):
        # The in-memory campaign path keeps draining after a failure;
        # the figure drivers must surface the *original* exception, not
        # a bare KeyError on the missing summary.
        from repro.experiments.sensitivity import _summary_of

        sink = InMemorySink()
        scenario = Scenario(policy=EXPLODING, trace=mini_bins, backend="fluid")
        runs([scenario], sink=sink)
        with pytest.raises(RuntimeError, match="simulated mid-campaign failure"):
            _summary_of(sink, scenario)
        other = Scenario(policy="SinglePool", trace=mini_bins, backend="fluid")
        with pytest.raises(KeyError):
            _summary_of(sink, other)  # never ran at all: KeyError stands

    def test_table_format_renders(self, mini_bins):
        grid = self._grid(mini_bins)
        table = build_report(
            ReportSpec(value="energy_kwh", rows=("policy",), cols=("pool_count",)),
            grid,
            _fake_records(grid, [10.0, 6.0, 4.0]),
        )
        text = table.format()
        assert "policy" in text and "pool_count=2" in text
        assert "10.0000" in text and "-" in text
