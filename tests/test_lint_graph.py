"""Tests for the whole-program layer: facts extraction, graph assembly,
taint propagation, cycle detection, and the cross-file facts hash that
keys the incremental cache."""

import ast
import os

import pytest

from repro.lint.graph import (
    LAYER_INDEX,
    ImportEdge,
    build_project_graph,
    extract_module_facts,
    facts_from_dict,
    layer_of,
    module_name_for,
)


def facts_for(path, source):
    return extract_module_facts(path, ast.parse(source))


def graph_for(*named_sources):
    return build_project_graph(
        [facts_for(path, source) for path, source in named_sources]
    )


# ======================================================================
# Module naming and layers
# ======================================================================
class TestModuleNaming:
    @pytest.mark.parametrize(
        "path, module, package, is_package",
        [
            ("src/repro/sim/clock.py", "sim.clock", "sim", False),
            ("src/repro/api/__init__.py", "api", "api", True),
            ("src/repro/cluster/power_model.py", "cluster.power_model", "cluster", False),
            ("repro/metrics/energy.py", "metrics.energy", "metrics", False),
            ("src/repro/__main__.py", "__main__", "", False),
            ("src/repro/quick_comparison.py", "quick_comparison", "", False),
            ("src/repro/__init__.py", "", "", True),
            ("tests/test_api.py", "tests.test_api", "tests", False),
        ],
    )
    def test_module_name_for(self, path, module, package, is_package):
        assert module_name_for(path) == (module, package, is_package)

    def test_layer_order_is_the_declared_architecture(self):
        assert layer_of("sim") == layer_of("llm") == layer_of("core") == 0
        assert layer_of("workload") == layer_of("perf") == 0
        assert layer_of("metrics") == layer_of("policies") == layer_of("cluster") == 1
        assert layer_of("api") == layer_of("experiments") == 2
        assert layer_of("lint") == 3
        assert layer_of("tests") is None
        assert layer_of("") is None

    def test_every_layered_package_exists_in_src(self):
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
            "repro",
        )
        for package in LAYER_INDEX:
            assert os.path.isdir(os.path.join(src, package)), package


# ======================================================================
# Facts extraction
# ======================================================================
class TestFactsExtraction:
    def test_import_edges_record_project_targets(self):
        facts = facts_for(
            "repro/api/x.py",
            "import repro.sim.clock\nfrom repro.metrics.energy import joules\n",
        )
        targets = [(e.target, e.is_project) for e in facts.imports]
        assert targets == [("sim.clock", True), ("metrics.energy", True)]

    def test_external_imports_not_project_edges(self):
        facts = facts_for("repro/api/x.py", "import numpy\nfrom json import dumps\n")
        assert [(e.target, e.is_project) for e in facts.imports] == [
            ("numpy", False),
            ("json", False),
        ]

    def test_relative_import_resolved_against_package(self):
        facts = facts_for(
            "repro/cluster/instance.py", "from .power_model import draw\n"
        )
        (edge,) = facts.imports
        assert edge.target == "cluster.power_model"
        assert edge.is_project

    def test_function_level_import_is_not_top_level(self):
        facts = facts_for(
            "repro/api/x.py",
            "def f():\n    from repro.sim.clock import Clock\n    return Clock\n",
        )
        (edge,) = facts.imports
        assert not edge.top_level

    def test_signatures_strip_self(self):
        facts = facts_for(
            "repro/api/x.py",
            "class Meter:\n    def add(self, step_wh):\n        return step_wh\n",
        )
        (sig,) = facts.functions
        assert sig.qualname == "Meter.add"
        assert sig.params == ("step_wh",)
        assert sig.is_method

    def test_sink_calls_labelled(self):
        facts = facts_for(
            "repro/sim/x.py",
            "import time\ndef f():\n    return time.time()\n",
        )
        (call,) = facts.calls
        assert call.sink == "time.time()"
        assert call.caller == "f"

    def test_class_definitions_recorded(self):
        facts = facts_for(
            "repro/cluster/x.py",
            "class Fleet:\n"
            "    class Inner:\n"
            "        pass\n"
            "def f():\n"
            "    class Local:\n"
            "        pass\n"
            "    return Local\n",
        )
        assert facts.classes == ("Fleet", "Fleet.Inner", "Local")

    def test_facts_round_trip_through_dict(self):
        facts = facts_for(
            "repro/sim/x.py",
            "import time\n"
            "from repro.sim.clock import Clock\n"
            "class Engine:\n"
            "    pass\n"
            "def f(a_s, b_kw):\n"
            "    total_wh = g_kwh()\n"
            "    return time.time()\n",
        )
        assert facts.classes == ("Engine",)
        assert facts_from_dict(facts.to_dict()) == facts


# ======================================================================
# Call resolution and taint
# ======================================================================
class TestTaint:
    def test_local_wrapper_chain(self):
        graph = graph_for(
            (
                "repro/sim/x.py",
                "import time\n"
                "def sink_fn():\n"
                "    return time.time()\n"
                "def wrap1():\n"
                "    return sink_fn()\n"
                "def wrap2():\n"
                "    return wrap1()\n",
            )
        )
        assert set(graph.tainted) == {"sim.x:sink_fn", "sim.x:wrap1", "sim.x:wrap2"}
        assert graph.taint_chain("sim.x:wrap2") == (
            "sim.x.wrap2()",
            "sim.x.wrap1()",
            "sim.x.sink_fn()",
            "time.time()",
        )

    def test_cross_module_taint_via_from_import(self):
        graph = graph_for(
            (
                "repro/sim/helpers.py",
                "import time\ndef elapsed_s():\n    return time.time()\n",
            ),
            (
                "repro/sim/engine.py",
                "from repro.sim.helpers import elapsed_s\n"
                "def step():\n    return elapsed_s()\n",
            ),
        )
        assert "sim.engine:step" in graph.tainted

    def test_cross_module_taint_via_module_import(self):
        graph = graph_for(
            (
                "repro/sim/helpers.py",
                "import time\ndef elapsed_s():\n    return time.time()\n",
            ),
            (
                "repro/sim/engine.py",
                "import repro.sim.helpers\n"
                "def step():\n    return repro.sim.helpers.elapsed_s()\n",
            ),
        )
        assert "sim.engine:step" in graph.tainted

    def test_self_method_call_taints(self):
        graph = graph_for(
            (
                "repro/sim/x.py",
                "import time\n"
                "class Engine:\n"
                "    def _now(self):\n"
                "        return time.time()\n"
                "    def step(self):\n"
                "        return self._now()\n",
            )
        )
        assert "sim.x:Engine.step" in graph.tainted

    def test_dynamic_dispatch_not_guessed(self):
        graph = graph_for(
            (
                "repro/sim/x.py",
                "import time\n"
                "def sink_fn():\n"
                "    return time.time()\n"
                "def call(fn):\n"
                "    return fn()\n",
            )
        )
        assert "sim.x:call" not in graph.tainted

    def test_module_level_sink_does_not_taint_functions(self):
        graph = graph_for(
            ("repro/sim/x.py", "import time\nSTARTED = time.time()\n")
        )
        assert graph.tainted == {}

    def test_seeded_random_instance_is_not_a_sink(self):
        graph = graph_for(
            (
                "repro/workload/x.py",
                "import random\ndef make(seed):\n    return random.Random(seed)\n",
            )
        )
        assert graph.tainted == {}


# ======================================================================
# Cycles
# ======================================================================
class TestCycles:
    def test_two_module_cycle_detected(self):
        graph = graph_for(
            ("repro/policies/a.py", "from repro.policies.b import g\n"),
            ("repro/policies/b.py", "from repro.policies.a import f\n"),
        )
        assert graph.cycles["policies.a"] == ("policies.a", "policies.b")
        assert graph.cycles["policies.b"] == ("policies.a", "policies.b")

    def test_three_module_cycle_detected(self):
        graph = graph_for(
            ("repro/policies/a.py", "import repro.policies.b\n"),
            ("repro/policies/b.py", "import repro.policies.c\n"),
            ("repro/policies/c.py", "import repro.policies.a\n"),
        )
        assert set(graph.cycles) == {"policies.a", "policies.b", "policies.c"}

    def test_deferred_edge_breaks_cycle(self):
        graph = graph_for(
            (
                "repro/policies/a.py",
                "def f():\n    from repro.policies.b import g\n    return g\n",
            ),
            ("repro/policies/b.py", "from repro.policies.a import f\n"),
        )
        assert graph.cycles == {}

    def test_acyclic_chain_has_no_cycles(self):
        graph = graph_for(
            ("repro/api/a.py", "import repro.metrics.b\n"),
            ("repro/metrics/b.py", "import repro.sim.c\n"),
            ("repro/sim/c.py", "x = 1\n"),
        )
        assert graph.cycles == {}


# ======================================================================
# Facts hash: the cross-file cache key
# ======================================================================
class TestFactsHash:
    SOURCES = (
        (
            "repro/sim/helpers.py",
            "import time\ndef elapsed_s():\n    return time.time()\n",
        ),
        (
            "repro/sim/engine.py",
            "from repro.sim.helpers import elapsed_s\n"
            "def step():\n    return elapsed_s()\n",
        ),
    )

    def test_hash_is_deterministic(self):
        assert graph_for(*self.SOURCES).facts_hash == graph_for(*self.SOURCES).facts_hash

    def test_hash_ignores_cross_file_invisible_edits(self):
        """Editing a function body (without changing signatures, taint or
        cycles) must not invalidate other files' cached results."""
        edited = (
            (
                "repro/sim/helpers.py",
                "import time\n\n\ndef elapsed_s():\n"
                "    # reworded comment\n    return time.time()\n",
            ),
            self.SOURCES[1],
        )
        assert graph_for(*self.SOURCES).facts_hash == graph_for(*edited).facts_hash

    def test_hash_changes_when_taint_changes(self):
        cleaned = (
            (
                "repro/sim/helpers.py",
                "def elapsed_s():\n    return 0.0\n",
            ),
            self.SOURCES[1],
        )
        assert graph_for(*self.SOURCES).facts_hash != graph_for(*cleaned).facts_hash

    def test_hash_changes_when_signature_changes(self):
        resigned = (
            (
                "repro/sim/helpers.py",
                "import time\ndef elapsed_s(scale_kw):\n    return time.time()\n",
            ),
            self.SOURCES[1],
        )
        assert graph_for(*self.SOURCES).facts_hash != graph_for(*resigned).facts_hash

    def test_hash_changes_when_module_set_changes(self):
        assert (
            graph_for(*self.SOURCES).facts_hash
            != graph_for(self.SOURCES[0]).facts_hash
        )


# ======================================================================
# ImportEdge construction detail used by ARC003
# ======================================================================
class TestPrivateImportFacts:
    def test_from_import_names_carry_locations(self):
        facts = facts_for(
            "repro/api/x.py",
            "from repro.cluster.power_model import _budget, public\n",
        )
        (edge,) = facts.imports
        assert isinstance(edge, ImportEdge)
        assert [name for name, _, _ in edge.names] == ["_budget", "public"]
