"""Tests for the model and GPU catalog."""

import pytest

from repro.llm.catalog import (
    BLOOM_176B,
    FALCON_180B,
    LLAMA2_13B,
    LLAMA2_70B,
    MIXTRAL_8X22B,
    MIXTRAL_8X7B,
    MODEL_CATALOG,
    get_model,
    list_models,
)
from repro.llm.gpu import DGX_H100, H100, GPUSpec, ServerSpec


class TestGPUSpec:
    def test_frequency_levels_cover_range(self):
        levels = H100.frequency_levels()
        assert levels[0] == 800
        assert levels[-1] == 1980
        assert all(levels[i] < levels[i + 1] for i in range(len(levels) - 1))

    def test_frequency_ratio(self):
        assert H100.frequency_ratio(1980) == pytest.approx(1.0)
        assert H100.frequency_ratio(990) == pytest.approx(0.5)

    def test_voltage_ratio_has_floor(self):
        assert H100.voltage_ratio(800) == pytest.approx(H100.voltage_floor)
        assert H100.voltage_ratio(1980) == pytest.approx(1.0)

    def test_voltage_monotone_in_frequency(self):
        voltages = [H100.voltage_ratio(f) for f in H100.frequency_levels()]
        assert all(voltages[i] <= voltages[i + 1] for i in range(len(voltages) - 1))

    def test_validate_frequency_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            H100.validate_frequency(500)
        with pytest.raises(ValueError):
            H100.validate_frequency(2500)

    def test_validate_frequency_accepts_in_range(self):
        H100.validate_frequency(1200)  # should not raise


class TestServerSpec:
    def test_total_memory(self):
        assert DGX_H100.total_memory_gb == pytest.approx(8 * 80.0)

    def test_max_power_is_tdp_plus_host(self):
        assert DGX_H100.max_power_watts == pytest.approx(8 * 700.0 + 500.0)

    def test_validate_tp_accepts_supported(self):
        for tp in (1, 2, 4, 8):
            DGX_H100.validate_tensor_parallelism(tp)

    def test_validate_tp_rejects_unsupported(self):
        with pytest.raises(ValueError):
            DGX_H100.validate_tensor_parallelism(3)

    def test_custom_server_rejects_oversized_tp(self):
        small = ServerSpec(gpus_per_server=4, supported_tensor_parallelism=(1, 2, 4, 8))
        with pytest.raises(ValueError):
            small.validate_tensor_parallelism(8)


class TestModelCatalog:
    def test_catalog_contains_paper_models(self):
        names = set(list_models())
        expected = {
            "Llama2-13B",
            "Llama2-70B",
            "Llama3-70B",
            "Mixtral-8x7B",
            "Mixtral-8x22B",
            "Falcon-180B",
            "BLOOM-176B",
        }
        assert expected <= names

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("GPT-5")

    def test_get_model_roundtrip(self):
        assert get_model("Llama2-70B") is LLAMA2_70B

    def test_weight_bytes_is_two_bytes_per_param(self):
        assert LLAMA2_70B.weight_gb == pytest.approx(140.0)
        assert LLAMA2_13B.weight_gb == pytest.approx(26.0)

    def test_moe_active_weights_smaller_than_total(self):
        assert MIXTRAL_8X7B.active_weight_bytes < MIXTRAL_8X7B.weight_bytes
        assert MIXTRAL_8X22B.active_weight_bytes < MIXTRAL_8X22B.weight_bytes

    def test_dense_active_weights_equal_total(self):
        assert LLAMA2_70B.active_weight_bytes == pytest.approx(LLAMA2_70B.weight_bytes)

    def test_kv_bytes_per_token_positive(self):
        for spec in MODEL_CATALOG.values():
            assert spec.kv_bytes_per_token() > 0

    def test_gqa_reduces_kv_cache(self):
        # Llama2-70B uses grouped-query attention (8 KV heads), so its KV
        # footprint per token is far below a same-width MHA model.
        assert LLAMA2_70B.kv_bytes_per_token() < BLOOM_176B.kv_bytes_per_token()

    def test_weight_shard_scales_with_tp(self):
        assert LLAMA2_70B.weight_gb_per_gpu(8) == pytest.approx(
            LLAMA2_70B.weight_gb_per_gpu(4) / 2
        )

    def test_invalid_tp_rejected(self):
        with pytest.raises(ValueError):
            LLAMA2_70B.weight_gb_per_gpu(0)

    def test_llama2_70b_fits_tp2_and_up(self):
        assert LLAMA2_70B.feasible_tensor_parallelisms() == [2, 4, 8]

    def test_llama2_13b_fits_single_gpu(self):
        assert LLAMA2_13B.min_tensor_parallelism() == 1

    def test_falcon_180b_requires_tp8(self):
        assert FALCON_180B.min_tensor_parallelism() == 8
        assert FALCON_180B.feasible_tensor_parallelisms() == [8]

    def test_mixtral_8x22b_does_not_fit_tp2(self):
        assert not MIXTRAL_8X22B.fits(2)

    def test_kv_capacity_zero_when_weights_do_not_fit(self):
        assert FALCON_180B.kv_capacity_tokens(2) == 0.0

    def test_kv_capacity_grows_with_tp(self):
        assert LLAMA2_70B.kv_capacity_tokens(8) > LLAMA2_70B.kv_capacity_tokens(4)
        assert LLAMA2_70B.kv_capacity_tokens(4) > LLAMA2_70B.kv_capacity_tokens(2)
