"""Tests for the metrics package: latency, energy, power, carbon, cost."""

import pytest

from repro.metrics.carbon import CarbonIntensityTrace, carbon_emissions_kg, carbon_timeline_kg_per_h
from repro.metrics.cost import CostModel
from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import LatencyStats
from repro.metrics.power import PowerTimeSeries
from repro.metrics.summary import RunSummary, compare_energy
from repro.workload.request import Request, RequestOutcome


def make_outcome(ttft=0.1, tbt=0.02, n_in=600, n_out=101, squashed=False):
    request = Request(arrival_time=0.0, input_tokens=n_in, output_tokens=n_out)
    return RequestOutcome(
        request=request,
        pool="MM",
        instance_id="i",
        start_time=0.0,
        first_token_time=ttft,
        completion_time=ttft + tbt * (n_out - 1),
        squashed=squashed,
    )


class TestLatencyStats:
    def test_percentiles(self):
        stats = LatencyStats()
        for index in range(100):
            stats.add(make_outcome(ttft=0.01 * (index + 1)))
        assert stats.ttft_percentile(50) == pytest.approx(0.505, abs=0.02)
        assert stats.ttft_percentile(99) == pytest.approx(1.0, abs=0.02)

    def test_empty_stats(self):
        stats = LatencyStats()
        assert stats.ttft_percentile(99) == 0.0
        assert stats.slo_attainment() == 1.0

    def test_slo_attainment_counts_violations(self):
        stats = LatencyStats()
        stats.add(make_outcome(ttft=0.1, tbt=0.02))   # meets MM SLO
        stats.add(make_outcome(ttft=5.0, tbt=0.02))   # violates TTFT
        assert stats.slo_attainment() == pytest.approx(0.5)

    def test_squashed_requests_count_as_violations(self):
        stats = LatencyStats()
        stats.add(make_outcome(squashed=True))
        assert stats.slo_attainment() == 0.0
        assert stats.squashed_count == 1

    def test_by_request_type_grouping(self):
        stats = LatencyStats()
        stats.add(make_outcome(n_in=100, n_out=50))
        stats.add(make_outcome(n_in=3000, n_out=500))
        groups = stats.by_request_type()
        assert set(groups) == {"SS", "LL"}

    def test_percentile_table_shape(self):
        stats = LatencyStats()
        stats.add(make_outcome())
        table = stats.percentile_table()
        assert set(table) == {"ttft_s", "tbt_s"}
        assert set(table["ttft_s"]) == {50, 90, 99}

    def test_mean_values(self):
        stats = LatencyStats()
        stats.add(make_outcome(ttft=0.2))
        stats.add(make_outcome(ttft=0.4))
        assert stats.mean_ttft() == pytest.approx(0.3)


class TestEnergyAccount:
    def test_accumulates_total_and_breakdown(self):
        account = EnergyAccount()
        account.add_step(0.0, 10.0, {"SS": 4.0, "MM": 6.0})
        account.add_step(1.0, 20.0, {"MM": 20.0})
        assert account.total_wh == pytest.approx(30.0)
        assert account.total_kwh == pytest.approx(0.03)
        assert account.by_type_wh["MM"] == pytest.approx(26.0)

    def test_type_breakdown_covers_all_types(self):
        account = EnergyAccount()
        account.add_step(0.0, 5.0, {"LL": 5.0})
        breakdown = account.type_breakdown_kwh()
        assert len(breakdown) == 9
        assert breakdown["LL"] == pytest.approx(0.005)
        assert breakdown["SS"] == 0.0

    def test_binned_timeline(self):
        account = EnergyAccount()
        for t in range(10):
            account.add_step(float(t), 1.0, {})
        bins = account.binned_kwh(5.0)
        assert len(bins) == 2
        assert bins[0][1] == pytest.approx(0.005)

    def test_binned_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            EnergyAccount().binned_kwh(0.0)

    def test_savings_vs_baseline(self):
        baseline = EnergyAccount()
        baseline.add_step(0.0, 100.0, {})
        optimized = EnergyAccount()
        optimized.add_step(0.0, 40.0, {})
        assert optimized.savings_vs(baseline) == pytest.approx(0.6)


class TestPowerTimeSeries:
    def test_percentiles(self):
        series = PowerTimeSeries()
        for index in range(100):
            series.add_step(float(index), 1000.0 + index, 10)
        assert series.cluster_percentile(50) == pytest.approx(1049.5, abs=1.0)
        assert series.per_gpu_percentile(99) == pytest.approx(109.9, abs=0.5)

    def test_empty_series(self):
        series = PowerTimeSeries()
        assert series.cluster_percentile(99) == 0.0
        assert series.mean_cluster_power() == 0.0

    def test_per_gpu_handles_zero_gpus(self):
        series = PowerTimeSeries()
        series.add_step(0.0, 100.0, 0)
        assert series.per_gpu_power()[0] == 0.0

    def test_percentile_table_units(self):
        series = PowerTimeSeries()
        series.add_step(0.0, 2000.0, 8)
        table = series.percentile_table()
        assert table["cluster_kw"][50] == pytest.approx(2.0)
        assert table["per_gpu_w"][50] == pytest.approx(250.0)


class TestCarbon:
    def test_intensity_dips_at_midday(self):
        trace = CarbonIntensityTrace()
        assert trace.intensity_at(12.5 * 3600.0) < trace.intensity_at(3.0 * 3600.0)

    def test_intensity_positive(self):
        trace = CarbonIntensityTrace()
        for hour in range(24):
            assert trace.intensity_at(hour * 3600.0) > 0.0

    def test_emissions_scale_with_energy(self):
        trace = CarbonIntensityTrace()
        small = carbon_emissions_kg([(0.0, 1000.0)], trace)
        large = carbon_emissions_kg([(0.0, 2000.0)], trace)
        assert large == pytest.approx(2 * small)

    def test_timeline_bins(self):
        trace = CarbonIntensityTrace()
        timeline = [(float(t), 100.0) for t in range(0, 7200, 600)]
        series = carbon_timeline_kg_per_h(timeline, trace, bin_seconds=3600.0)
        assert len(series) == 2

    def test_series_sampling(self):
        trace = CarbonIntensityTrace()
        assert len(trace.series(86400.0, 3600.0)) == 24


class TestCostModel:
    def test_gpu_cost_dominates_energy_cost(self):
        cost = CostModel()
        summary = cost.summary(gpu_hours=100.0, energy_kwh=100.0)
        assert summary["gpu_cost_usd"] > 10 * summary["energy_cost_usd"]

    def test_savings_fraction(self):
        cost = CostModel()
        savings = cost.savings(100.0, 50.0, 60.0, 25.0)
        assert savings["saving_usd"] > 0
        assert 0.0 < savings["saving_fraction"] < 1.0

    def test_total_cost_additive(self):
        cost = CostModel()
        assert cost.total_cost(10.0, 20.0) == pytest.approx(
            cost.gpu_cost(10.0) + cost.energy_cost(20.0)
        )

    def test_gpu_price_per_hour(self):
        cost = CostModel(server_price_per_hour=80.0, gpus_per_server=8)
        assert cost.gpu_price_per_hour == pytest.approx(10.0)


class TestRunSummary:
    def make_summary(self, policy="SinglePool", energy=100.0):
        account = EnergyAccount()
        account.add_step(0.0, energy, {"MM": energy})
        latency = LatencyStats()
        latency.add(make_outcome())
        power = PowerTimeSeries()
        power.add_step(0.0, 1000.0, 8)
        return RunSummary(
            policy=policy,
            trace="test",
            duration_s=60.0,
            energy=account,
            latency=latency,
            power=power,
            gpu_hours=8.0,
            average_servers=1.0,
        )

    def test_headline_fields(self):
        summary = self.make_summary()
        headline = summary.headline()
        assert headline["energy_kwh"] == pytest.approx(0.1)
        assert headline["slo_attainment"] == 1.0
        assert headline["requests"] == 1.0

    def test_carbon_and_cost_helpers(self):
        summary = self.make_summary()
        assert summary.carbon_kg() > 0.0
        assert summary.cost_usd() > 0.0

    def test_compare_energy_normalises_to_baseline(self):
        summaries = {
            "SinglePool": self.make_summary("SinglePool", 100.0),
            "DynamoLLM": self.make_summary("DynamoLLM", 40.0),
        }
        normalized = compare_energy(summaries)
        assert normalized["SinglePool"] == pytest.approx(1.0)
        assert normalized["DynamoLLM"] == pytest.approx(0.4)

    def test_compare_energy_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            compare_energy({"DynamoLLM": self.make_summary("DynamoLLM")})
