"""Tests for the findings ratchet (baseline) and the incremental cache.

The ratchet's contract, exercised as seeded property tests:

* subtraction is exact — baselined findings are never reported, and
  findings outside the baseline are always reported;
* ``--update-baseline`` is idempotent (byte-identical JSON);
* a stale entry (the finding was fixed) fails the run until pruned,
  and pruning only ever shrinks the baseline.
"""

import json
import os
import random

import pytest

from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    update_baseline,
)
from repro.lint.cache import CACHE_FORMAT_VERSION, LintCache, content_hash
from repro.lint.engine import LintReport, LintUsageError, Rule, lint_paths

#: Each file carries two distinct unit violations (different messages),
#: plus one duplicated fingerprint (same rule+message, two lines).
VIOLATION_SOURCE = (
    "total_kwh = step_wh\n"
    "budget_usd = mass_kg\n"
    "again_kwh = step_wh\n"
    "repeat_kwh = step_wh\n"
)


def make_tree(tmp_path, count=4):
    paths = []
    for index in range(count):
        path = tmp_path / f"mod_{index}.py"
        path.write_text(VIOLATION_SOURCE)
        paths.append(str(path))
    return paths


def lint_tree(paths):
    return lint_paths(paths)


def baseline_at(tmp_path):
    return load_baseline(str(tmp_path / "lint_baseline.json"))


# ======================================================================
# Exact subtraction (seeded property test)
# ======================================================================
class TestExactSubtraction:
    @pytest.mark.parametrize("seed", range(8))
    def test_baselined_never_reported_new_always_reported(self, tmp_path, seed):
        rng = random.Random(seed)
        paths = make_tree(tmp_path)
        full = lint_tree(paths)
        assert full.findings

        subset = rng.sample(full.findings, rng.randint(0, len(full.findings)))
        partial = LintReport(
            findings=sorted(subset),
            files_checked=len(paths),
            suppressed=0,
            paths=tuple(paths),
        )
        baseline = baseline_at(tmp_path)
        update_baseline(partial, baseline)

        result = apply_baseline(full, baseline)
        base_dir = baseline.base_dir
        # Multiset equality on fingerprints: every occurrence is either
        # absorbed (baselined) or reported (new) — nothing lost, nothing
        # double-counted.
        def counts(findings):
            table = {}
            for finding in findings:
                key = fingerprint(finding, base_dir)
                table[key] = table.get(key, 0) + 1
            return table

        reported = counts(result.new_findings)
        absorbed = dict(baseline.entries)
        expected = counts(full.findings)
        combined = dict(absorbed)
        for key, value in reported.items():
            combined[key] = combined.get(key, 0) + value
        assert combined == expected
        assert result.matched == len(subset)
        assert result.stale == ()  # subset came from the live tree

    def test_no_baseline_reports_everything(self, tmp_path):
        paths = make_tree(tmp_path)
        full = lint_tree(paths)
        baseline = baseline_at(tmp_path)  # file absent -> empty
        assert not baseline.existed
        result = apply_baseline(full, baseline)
        assert result.new_findings == tuple(full.findings)
        assert result.matched == 0


# ======================================================================
# Idempotent update
# ======================================================================
class TestUpdateIdempotent:
    def test_double_update_is_byte_identical(self, tmp_path):
        paths = make_tree(tmp_path)
        report = lint_tree(paths)
        baseline = baseline_at(tmp_path)
        assert update_baseline(report, baseline) is True
        first = open(baseline.path, "rb").read()
        assert update_baseline(report, baseline) is False
        second = open(baseline.path, "rb").read()
        assert first == second

    def test_updated_baseline_makes_run_clean(self, tmp_path):
        paths = make_tree(tmp_path)
        baseline = baseline_at(tmp_path)
        update_baseline(lint_tree(paths), baseline)
        result = apply_baseline(lint_tree(paths), load_baseline(baseline.path))
        assert result.clean

    def test_partial_update_preserves_unlinted_entries(self, tmp_path):
        paths = make_tree(tmp_path)
        baseline = baseline_at(tmp_path)
        update_baseline(lint_tree(paths), baseline)
        before = dict(baseline.entries)
        # Re-lint only the first file; the other files' entries survive.
        update_baseline(lint_tree(paths[:1]), baseline)
        assert baseline.entries == before


# ======================================================================
# The ratchet: stale entries fail until pruned; baseline only shrinks
# ======================================================================
class TestRatchet:
    def test_fixed_finding_goes_stale_and_fails(self, tmp_path):
        paths = make_tree(tmp_path)
        baseline = baseline_at(tmp_path)
        update_baseline(lint_tree(paths), baseline)

        # Fix one violation: drop the incompatible-dimension line.
        fixed = tmp_path / "mod_0.py"
        fixed.write_text(VIOLATION_SOURCE.replace("budget_usd = mass_kg\n", ""))
        result = apply_baseline(lint_tree(paths), load_baseline(baseline.path))
        assert result.new_findings == ()
        assert len(result.stale) == 1
        ((key, missing),) = result.stale
        assert key[1] == "UNT002" and missing == 1
        assert not result.clean  # CI fails until the entry is pruned

    def test_pruning_shrinks_and_cleans(self, tmp_path):
        paths = make_tree(tmp_path)
        baseline = baseline_at(tmp_path)
        update_baseline(lint_tree(paths), baseline)
        before_total = baseline.total()

        fixed = tmp_path / "mod_0.py"
        fixed.write_text(VIOLATION_SOURCE.replace("budget_usd = mass_kg\n", ""))
        update_baseline(lint_tree(paths), baseline)
        assert baseline.total() == before_total - 1
        assert apply_baseline(lint_tree(paths), load_baseline(baseline.path)).clean

    def test_partially_fixed_duplicate_fingerprint_counts_exactly(self, tmp_path):
        """Two occurrences of the same (path, rule, message): fixing one
        leaves missing=1 stale, not a silently absorbed pair."""
        paths = make_tree(tmp_path, count=1)
        baseline = baseline_at(tmp_path)
        update_baseline(lint_tree(paths), baseline)
        # Drop one of the three identical step_wh mixes.
        (tmp_path / "mod_0.py").write_text(
            VIOLATION_SOURCE.replace("repeat_kwh = step_wh\n", "")
        )
        result = apply_baseline(lint_tree(paths), load_baseline(baseline.path))
        assert result.new_findings == ()
        ((_, missing),) = result.stale
        assert missing == 1

    def test_deleted_file_entry_is_stale_even_unlinted(self, tmp_path):
        paths = make_tree(tmp_path)
        baseline = baseline_at(tmp_path)
        update_baseline(lint_tree(paths), baseline)
        os.unlink(paths[0])
        result = apply_baseline(lint_tree(paths[1:]), load_baseline(baseline.path))
        assert result.stale  # the dead file's entries must be pruned
        update_baseline(lint_tree(paths[1:]), baseline)
        assert all(not key[0].endswith("mod_0.py") for key in baseline.entries)

    def test_new_finding_always_fails_despite_baseline(self, tmp_path):
        paths = make_tree(tmp_path)
        baseline = baseline_at(tmp_path)
        update_baseline(lint_tree(paths), baseline)
        (tmp_path / "mod_0.py").write_text(
            VIOLATION_SOURCE + "fresh_ms = other_s\n"
        )
        result = apply_baseline(lint_tree(paths), load_baseline(baseline.path))
        assert len(result.new_findings) == 1
        assert not result.clean


# ======================================================================
# Baseline file format errors
# ======================================================================
class TestBaselineFormat:
    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintUsageError, match="unreadable baseline"):
            load_baseline(str(path))

    def test_wrong_version_is_usage_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": "other", "findings": []}))
        with pytest.raises(LintUsageError, match="not a repro-lint-baseline"):
            load_baseline(str(path))

    def test_nonpositive_count_is_usage_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": "repro-lint-baseline-v1",
                    "findings": [
                        {"path": "x.py", "rule": "UNT002", "message": "m", "count": 0}
                    ],
                }
            )
        )
        with pytest.raises(LintUsageError, match="count 0"):
            load_baseline(str(path))


# ======================================================================
# Incremental cache
# ======================================================================
class TestIncrementalCache:
    def test_warm_run_reuses_every_file_and_matches(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = str(tmp_path / "cache.json")
        cold = lint_paths(paths, cache=cache)
        warm = lint_paths(paths, cache=cache)
        assert cold.files_reused == 0
        assert warm.files_reused == len(paths)
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed

    def test_local_edit_invalidates_only_that_file(self, tmp_path):
        """A body edit that changes nothing cross-file-visible re-lints
        one file; the siblings stay cached."""
        paths = make_tree(tmp_path)
        cache = str(tmp_path / "cache.json")
        lint_paths(paths, cache=cache)
        (tmp_path / "mod_0.py").write_text(VIOLATION_SOURCE + "\n# comment\n")
        warm = lint_paths(paths, cache=cache)
        assert warm.files_reused == len(paths) - 1

    def test_cross_file_visible_edit_invalidates_results_everywhere(self, tmp_path):
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        helpers = package / "helpers.py"
        engine = package / "engine.py"
        helpers.write_text("def elapsed_s():\n    return 0.0\n")
        engine.write_text(
            "from repro.sim.helpers import elapsed_s\n"
            "def step():\n    return elapsed_s()\n"
        )
        cache = str(tmp_path / "cache.json")
        paths = [str(helpers), str(engine)]
        clean = lint_paths(paths, cache=cache)
        assert clean.findings == []
        # Introduce a sink in helpers: engine's cached (clean) result is
        # keyed by the old facts hash and must NOT be served.
        helpers.write_text(
            "import time\ndef elapsed_s():\n    return time.time()\n"
        )
        tainted = lint_paths(paths, cache=cache)
        assert tainted.files_reused == 0
        assert any(
            f.rule == "DET005" and f.path.endswith("engine.py")
            for f in tainted.findings
        )

    def test_select_ignore_applied_on_top_of_cache(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = str(tmp_path / "cache.json")
        lint_paths(paths, cache=cache)
        filtered = lint_paths(paths, ignore=["UNT"], cache=cache)
        assert filtered.files_reused == len(paths)
        assert filtered.findings == []

    def test_corrupt_cache_is_silently_rebuilt(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{broken")
        report = lint_paths(paths, cache=str(cache))
        assert report.findings
        assert json.loads(cache.read_text())["version"] == CACHE_FORMAT_VERSION

    def test_version_mismatch_discards_cache(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths(paths, cache=str(cache))
        data = json.loads(cache.read_text())
        data["version"] = "ancient"
        cache.write_text(json.dumps(data))
        report = lint_paths(paths, cache=str(cache))
        assert report.files_reused == 0

    def test_custom_rules_disable_cache(self, tmp_path):
        class Nothing(Rule):
            family = "nothing"
            catalog = {"ZZZ001": "never fires"}

            def check(self, ctx):
                return iter(())

        paths = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        report = lint_paths(paths, rules=[Nothing()], cache=str(cache))
        assert report.findings == []
        assert not cache.exists()

    def test_unwritable_cache_path_leaves_no_temp_files(self, tmp_path):
        """A cache path that cannot be replaced (here: a directory)
        degrades to an uncached run and must not strand mkstemp files."""
        paths = make_tree(tmp_path)
        target = tmp_path / "cache-dir"
        target.mkdir()
        report = lint_paths(paths, cache=str(target))
        assert report.findings
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith(".repro-lint-cache-")
        ]
        assert leftovers == []

    def test_content_hash_is_stable(self):
        assert content_hash("abc") == content_hash("abc")
        assert content_hash("abc") != content_hash("abd")

    def test_cache_object_can_be_passed_directly(self, tmp_path):
        paths = make_tree(tmp_path)
        store = LintCache(str(tmp_path / "cache.json"))
        lint_paths(paths, cache=store)
        warm = lint_paths(paths, cache=store)
        assert warm.files_reused == len(paths)
        assert store.hits > 0
