"""Tests for the policy specifications of the six evaluated systems."""

import pytest

from repro.policies import (
    ALL_POLICIES,
    DYNAMO_LLM,
    MULTI_POOL,
    SCALE_FREQ,
    SCALE_INST,
    SCALE_SHARD,
    SINGLE_POOL,
    get_policy_spec,
)
from repro.policies.base import SINGLE_POOL_SCHEME
from repro.workload.classification import DEFAULT_SCHEME


class TestPolicySpecs:
    def test_six_policies_registered(self):
        assert len(ALL_POLICIES) == 6
        names = {spec.name for spec in ALL_POLICIES}
        assert names == {
            "SinglePool",
            "MultiPool",
            "ScaleInst",
            "ScaleShard",
            "ScaleFreq",
            "DynamoLLM",
        }

    def test_registry_lookup(self):
        assert get_policy_spec("DynamoLLM") is DYNAMO_LLM
        with pytest.raises(KeyError):
            get_policy_spec("NoSuchPolicy")

    def test_single_pool_uses_one_pool(self):
        assert SINGLE_POOL.scheme().num_pools == 1
        assert SINGLE_POOL.scheme() is SINGLE_POOL_SCHEME

    def test_multi_pool_uses_nine_pools(self):
        assert MULTI_POOL.scheme() is DEFAULT_SCHEME

    def test_baselines_disable_all_knobs(self):
        for spec in (SINGLE_POOL, MULTI_POOL):
            knobs = spec.knobs()
            assert not knobs.scale_instances
            assert not knobs.scale_sharding
            assert not knobs.scale_frequency

    def test_each_scale_baseline_enables_exactly_one_knob(self):
        for spec, attribute in (
            (SCALE_INST, "scale_instances"),
            (SCALE_SHARD, "scale_sharding"),
            (SCALE_FREQ, "scale_frequency"),
        ):
            knobs = spec.knobs()
            enabled = [
                knobs.scale_instances,
                knobs.scale_sharding,
                knobs.scale_frequency,
            ]
            assert sum(enabled) == 1
            assert getattr(knobs, attribute)

    def test_dynamollm_enables_everything(self):
        knobs = DYNAMO_LLM.knobs()
        assert knobs.scale_instances and knobs.scale_sharding and knobs.scale_frequency
        assert knobs.fragmentation_handling and knobs.overhead_aware and knobs.emergency_handling
        assert DYNAMO_LLM.proactive_provisioning

    def test_scale_inst_provisions_reactively(self):
        assert not SCALE_INST.proactive_provisioning

    def test_scheme_override_only_affects_multi_pool(self):
        from repro.workload.classification import scheme_for_pool_count

        four_pool = scheme_for_pool_count(4)
        assert DYNAMO_LLM.scheme(four_pool) is four_pool
        assert SINGLE_POOL.scheme(four_pool) is SINGLE_POOL_SCHEME
