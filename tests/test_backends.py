"""Cross-backend equivalence suite: fluid-vs-FluidRunner, fluid-vs-event.

Three contracts are pinned here:

1. **Exact fluid equivalence** — ``Scenario(backend="fluid")`` (through
   ``run_scenario`` *and* the prepared/cached ``run_grid`` path) must
   reproduce a direct ``FluidRunner.run`` byte-for-byte: energy,
   GPU-hours, carbon, time-weighted server average and reconfiguration
   count.  Both consume the same ``FluidRunner.steps`` loop, so any
   drift is a real regression.
2. **Streaming == post-hoc** — the default observers' streaming totals
   (carbon / cost / SLO) must equal the post-hoc summary accounting on
   *both* backends.
3. **Fluid-vs-event tolerance** — on a short request-level trace the
   coarse fluid backend must land within a documented factor of the
   event engine's energy/GPU-hours (it has no drain phase, no queueing
   and no per-request dynamics, so this is an order-of-agreement check,
   not equality; see ``EVENT_FLUID_RTOL``).
"""

from __future__ import annotations

import math

import pytest

from repro.api import (
    BinnedTrace,
    FluidEngine,
    InMemorySink,
    JsonlSink,
    Scenario,
    TraceSpec,
    read_jsonl,
    run_grid,
    run_policies,
    run_scenario,
    sink_for_path,
    sweep,
)
from repro.experiments.fluid import FluidResult, FluidRunner
from repro.experiments.runner import ExperimentConfig
from repro.policies import ALL_POLICIES, DYNAMO_LLM, SINGLE_POOL
from repro.policies.base import get_policy_spec
from repro.workload.synthetic import make_week_trace
from repro.workload.traces import TraceBin, bin_trace

#: Documented fluid-vs-event agreement on short traces: the two
#: simulators agree on *scale* (same profile, same loads) but not on
#: request-level effects — drain energy, queueing, EMA-lagged scaling.
#: Measured on the 5-minute conversation slice: energy within ~10%,
#: GPU-hours within ~30% (the fluid runner releases capacity instantly).
EVENT_FLUID_ENERGY_RTOL = 0.25
EVENT_FLUID_GPU_HOURS_RTOL = 0.45

POLICY_NAMES = ("SinglePool", "ScaleInst", "DynamoLLM")


@pytest.fixture(scope="module")
def day_bins():
    """One synthetic day in 30-minute bins (48 bins — fast but varied)."""
    bins = make_week_trace("conversation", seed=7, rate_scale=40.0, bin_seconds=1800.0)
    return bins[:48]


@pytest.fixture(scope="module")
def day_trace(day_bins):
    return BinnedTrace(name="conversation-day", bins=day_bins)


# ----------------------------------------------------------------------
# 1. Exact equivalence with FluidRunner
# ----------------------------------------------------------------------
class TestFluidRunnerEquivalence:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_run_scenario_matches_fluid_runner_exactly(self, policy, day_bins, day_trace):
        direct = FluidRunner().run(get_policy_spec(policy), day_bins)
        summary = run_scenario(Scenario(policy=policy, trace=day_trace, backend="fluid"))

        assert summary.energy.total_wh == direct.energy_wh
        assert summary.energy_kwh == direct.energy_kwh
        assert summary.gpu_hours == direct.gpu_hours
        assert summary.average_servers == direct.average_servers
        assert summary.reconfigurations == direct.reconfigurations
        assert summary.carbon is not None
        assert summary.carbon.total_kg == direct.carbon_kg()
        assert summary.duration_s == direct.duration_s

    def test_grid_path_matches_fluid_runner_exactly(self, day_bins, day_trace):
        """The cached run_grid path (shared bins + precomputed budgets)."""
        grid = sweep(policies=POLICY_NAMES, traces=(day_trace,), backends=("fluid",))
        summaries = run_grid(grid, workers=2)
        for policy in POLICY_NAMES:
            direct = FluidRunner().run(get_policy_spec(policy), day_bins)
            summary = summaries[f"{policy}/conversation-day/fluid"]
            assert summary.energy.total_wh == direct.energy_wh
            assert summary.gpu_hours == direct.gpu_hours
            assert summary.average_servers == direct.average_servers
            assert summary.reconfigurations == direct.reconfigurations
            assert summary.carbon.total_kg == direct.carbon_kg()

    def test_engine_result_is_the_fluid_result(self, day_bins):
        engine = FluidEngine(DYNAMO_LLM, day_bins, ExperimentConfig())
        engine.run()
        via_engine = engine.result()
        direct = FluidRunner().run(DYNAMO_LLM, day_bins)
        assert via_engine.energy_wh == direct.energy_wh
        assert via_engine.gpu_hours == direct.gpu_hours
        assert via_engine.energy_timeline_wh == direct.energy_timeline_wh
        assert via_engine.servers_timeline == direct.servers_timeline
        assert via_engine.reconfigurations == direct.reconfigurations

    def test_run_policies_fluid_backend(self, day_trace, day_bins):
        summaries = run_policies(day_trace, ALL_POLICIES, backend="fluid")
        direct = FluidRunner().run_all(ALL_POLICIES, day_bins)
        assert set(summaries) == set(direct)
        for name, summary in summaries.items():
            assert summary.energy.total_wh == direct[name].energy_wh

    def test_stepped_interface(self, day_bins):
        """step() advances one bin and reports completion correctly."""
        engine = FluidEngine(SINGLE_POOL, day_bins, ExperimentConfig())
        steps = 0
        while engine.step():
            steps += 1
        assert steps == len(day_bins)
        assert engine.step() is False  # idempotent after completion
        assert engine.now == day_bins[-1].start_time + day_bins[-1].duration


# ----------------------------------------------------------------------
# 2. Streaming observer totals == post-hoc accounting, both backends
# ----------------------------------------------------------------------
class TestStreamingTotals:
    def _check(self, summary):
        assert summary.carbon is not None and summary.cost is not None
        assert summary.carbon.total_kg == summary.carbon_kg()
        assert summary.cost.total_usd == summary.cost_usd()
        assert summary.cost.gpu_hours == pytest.approx(summary.gpu_hours, rel=1e-12)

    def test_event_backend(self, tiny_trace, experiment_config):
        summary = run_scenario(
            Scenario(policy="DynamoLLM", trace=tiny_trace, base_config=experiment_config)
        )
        self._check(summary)
        # Per-pool attainment is count-weighted-consistent with the global rate.
        total = sum(summary.pool_request_counts.values())
        if total:
            weighted = sum(
                summary.pool_slo_attainment[pool] * count
                for pool, count in summary.pool_request_counts.items()
            )
            assert weighted / total == pytest.approx(summary.slo_attainment())

    def test_fluid_backend(self, day_trace):
        summary = run_scenario(
            Scenario(policy="DynamoLLM", trace=day_trace, backend="fluid")
        )
        self._check(summary)
        # No request-level telemetry on the fluid backend.
        assert summary.latency.count == 0
        assert summary.slo_attainment() == 1.0


# ----------------------------------------------------------------------
# 3. Fluid-vs-event agreement on short request-level traces
# ----------------------------------------------------------------------
class TestEventFluidTolerance:
    @pytest.fixture(scope="class")
    def pair(self, short_trace, profile):
        config = ExperimentConfig(profile=profile, max_servers=16)
        event = run_scenario(
            Scenario(policy="DynamoLLM", trace=short_trace, base_config=config),
            lean=True,
        )
        fluid = run_scenario(
            Scenario(
                policy="DynamoLLM",
                trace=short_trace,
                backend="fluid",
                fluid_bin_s=60.0,
                base_config=config,
            )
        )
        return event, fluid

    def test_energy_within_documented_tolerance(self, pair):
        event, fluid = pair
        assert fluid.energy_kwh > 0 and event.energy_kwh > 0
        assert fluid.energy_kwh == pytest.approx(
            event.energy_kwh, rel=EVENT_FLUID_ENERGY_RTOL
        )

    def test_gpu_hours_within_documented_tolerance(self, pair):
        event, fluid = pair
        assert fluid.gpu_hours > 0 and event.gpu_hours > 0
        assert fluid.gpu_hours == pytest.approx(
            event.gpu_hours, rel=EVENT_FLUID_GPU_HOURS_RTOL
        )

    def test_policy_ordering_agrees(self, short_trace, profile):
        """Both backends agree DynamoLLM saves energy vs the static baseline."""
        config = ExperimentConfig(profile=profile, max_servers=16)
        event = run_policies(short_trace, (SINGLE_POOL, DYNAMO_LLM), config=config, lean=True)
        fluid = run_policies(
            short_trace, (SINGLE_POOL, DYNAMO_LLM), config=config, backend="fluid"
        )
        assert event["DynamoLLM"].energy_kwh < event["SinglePool"].energy_kwh
        assert fluid["DynamoLLM"].energy_kwh < fluid["SinglePool"].energy_kwh


# ----------------------------------------------------------------------
# Backend selection plumbing
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Scenario(backend="quantum")

    def test_week_spec_needs_fluid(self):
        scenario = Scenario(trace=TraceSpec(kind="week"))
        with pytest.raises(ValueError, match="binned form"):
            run_scenario(scenario)

    def test_binned_trace_needs_fluid(self, day_trace):
        with pytest.raises(ValueError, match="fluid"):
            run_scenario(Scenario(trace=day_trace))

    def test_fluid_key_suffix(self, day_trace):
        assert Scenario(trace=day_trace, backend="fluid").key.endswith("/fluid")
        assert "fluid" not in Scenario().key

    def test_week_spec_builds_bins(self):
        spec = TraceSpec(kind="week", duration_s=7200.0)
        bins = spec.build_bins(1800.0)
        assert len(bins) == 4
        assert all(b.duration == 1800.0 for b in bins)

    def test_week_duration_clips_straddling_bin(self):
        """A cut inside a bin truncates it — rate preserved, horizon exact."""
        full = TraceSpec(kind="week").build_bins(1800.0)
        clipped = TraceSpec(kind="week", duration_s=2700.0).build_bins(1800.0)
        assert len(clipped) == 2
        last = clipped[-1]
        assert last.duration == 900.0
        assert last.start_time + last.duration == 2700.0
        # The offered rate of the truncated bin matches the full bin.
        if full[1].tokens_per_second > 0:
            assert last.tokens_per_second == pytest.approx(
                full[1].tokens_per_second, rel=0.01
            )
        summary = run_scenario(
            Scenario(
                trace=TraceSpec(kind="week", duration_s=2700.0),
                backend="fluid",
                fluid_bin_s=1800.0,
            )
        )
        assert summary.duration_s == 2700.0

    def test_fluid_bin_override_reaches_config(self):
        scenario = Scenario(backend="fluid", fluid_bin_s=120.0)
        assert scenario.resolved_config().fluid_bin_s == 120.0
        # Differing bin widths must stay distinguishable in grids/sinks.
        assert "bin120" in scenario.key
        assert scenario.key != scenario.with_(fluid_bin_s=600.0).key

    def test_run_scenario_accepts_raw_bins(self, day_bins):
        """An explicit TraceBin sequence wins over the scenario's spec."""
        scenario = Scenario(trace=TraceSpec(kind="week"), backend="fluid")
        summary = run_scenario(scenario, trace=day_bins)
        direct = FluidRunner().run(get_policy_spec(scenario.policy_name), day_bins)
        assert summary.energy.total_wh == direct.energy_wh

    def test_static_servers_rejected_on_fluid(self, day_trace):
        """Silently ignoring a pinned event budget would corrupt comparisons."""
        with pytest.raises(ValueError, match="event-backend dimensions"):
            Scenario(trace=day_trace, backend="fluid", static_servers=4)
        with pytest.raises(ValueError, match="event-backend dimensions"):
            Scenario(trace=day_trace, backend="fluid", max_servers=8)

    @pytest.mark.parametrize(
        "field", ("slo_scale", "predictor_accuracy", "time_step_s")
    )
    def test_request_level_dimensions_rejected_on_fluid(self, day_trace, field):
        """Dimensions the fluid simulator cannot honour fail fast instead of
        producing distinct-keyed scenarios with identical results."""
        with pytest.raises(ValueError, match="event-backend dimensions"):
            Scenario(trace=day_trace, backend="fluid", **{field: 2.0})

    def test_fluid_bin_rejected_on_event(self):
        with pytest.raises(ValueError, match="fluid_bin_s"):
            Scenario(fluid_bin_s=60.0)

    def test_base_config_static_servers_rejected_at_run_time(self, day_trace):
        """A pinned budget arriving via base_config is caught by the engine."""
        scenario = Scenario(
            trace=day_trace, backend="fluid",
            base_config=ExperimentConfig(static_servers=4),
        )
        with pytest.raises(ValueError, match="static_servers"):
            run_scenario(scenario)

    def test_mixed_backend_grid_shares_one_built_trace(self, monkeypatch):
        """Event + fluid members over one TraceSpec build the trace once."""
        import repro.api.scenario as scenario_module

        spec = TraceSpec(rate_scale=3.0, duration_s=120.0)
        builds = []
        original = scenario_module.TraceSpec.build

        def counting_build(self):
            builds.append(self)
            return original(self)

        monkeypatch.setattr(scenario_module.TraceSpec, "build", counting_build)
        grid = sweep(policies=("DynamoLLM",), traces=(spec,),
                     backends=("event", "fluid"))
        summaries = run_grid(grid, lean=True)
        assert len(summaries) == 2
        assert len(builds) == 1


# ----------------------------------------------------------------------
# Satellite regression: time-weighted average_servers with uneven bins
# ----------------------------------------------------------------------
class TestTimeWeightedAverageServers:
    def test_uneven_timeline_is_duration_weighted(self):
        # 10 servers for 100s, then 2 servers for 900s: the plain sample
        # mean (6.0) would overweight the short burst; time-weighted is
        # (10*100 + 2*900) / 1000 = 2.8.
        result = FluidResult(
            policy="x",
            duration_s=1000.0,
            energy_wh=0.0,
            gpu_hours=0.0,
            servers_timeline=[(0.0, 10.0), (100.0, 2.0)],
        )
        assert result.average_servers == pytest.approx(2.8)

    def test_uniform_timeline_matches_plain_mean(self):
        timeline = [(i * 300.0, float(v)) for i, v in enumerate((4, 6, 8, 2))]
        result = FluidResult(
            policy="x", duration_s=1200.0, energy_wh=0.0, gpu_hours=0.0,
            servers_timeline=timeline,
        )
        assert result.average_servers == pytest.approx(5.0)

    def test_empty_timeline(self):
        result = FluidResult(policy="x", duration_s=0.0, energy_wh=0.0, gpu_hours=0.0)
        assert result.average_servers == 0.0

    def test_run_over_uneven_bins(self):
        """End-to-end: a clipped trace tail (short final bin) is weighted less."""
        bins = make_week_trace("conversation", seed=7, rate_scale=40.0, bin_seconds=1800.0)[:8]
        short_tail = TraceBin(
            start_time=bins[-1].start_time + bins[-1].duration,
            duration=60.0,
            request_count=0,
            input_tokens=0,
            output_tokens=0,
        )
        uneven = list(bins) + [short_tail]
        result = FluidRunner().run(DYNAMO_LLM, uneven)
        timeline = result.servers_timeline
        spans = [
            (timeline[i + 1][0] if i + 1 < len(timeline) else result.duration_s) - t
            for i, (t, _) in enumerate(timeline)
        ]
        expected = sum(v * s for (_, v), s in zip(timeline, spans)) / sum(spans)
        assert result.average_servers == pytest.approx(expected)
        plain_mean = sum(v for _, v in timeline) / len(timeline)
        assert not math.isclose(result.average_servers, plain_mean)


# ----------------------------------------------------------------------
# Result sinks: streamed sweep output
# ----------------------------------------------------------------------
class TestSinks:
    def test_jsonl_streams_one_line_per_scenario(self, day_trace, tmp_path):
        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(day_trace,),
                     backends=("fluid",))
        path = tmp_path / "results.jsonl"
        sink = run_grid(grid, sink=JsonlSink(str(path)))
        assert sink.count == len(grid)
        records = read_jsonl(str(path))
        assert [r["scenario"] for r in records] == list(grid.keys())
        for record in records:
            assert record["energy_kwh"] > 0
            assert record["policy"] in ("SinglePool", "DynamoLLM")

    def test_parallel_streaming_covers_every_scenario(self, day_trace, tmp_path):
        grid = sweep(policies=("SinglePool", "ScaleInst", "DynamoLLM"),
                     traces=(day_trace,), backends=("fluid",))
        path = tmp_path / "results.jsonl"
        run_grid(grid, workers=3, sink=JsonlSink(str(path)))
        records = read_jsonl(str(path))
        # Completion order may differ; coverage and payloads must not.
        assert sorted(r["scenario"] for r in records) == sorted(grid.keys())

    def test_streamed_records_match_accumulated_summaries(self, day_trace, tmp_path):
        from repro.api import summary_record

        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(day_trace,),
                     backends=("fluid",))
        path = tmp_path / "results.jsonl"
        run_grid(grid, sink=JsonlSink(str(path)))
        summaries = run_grid(grid)
        by_key = {r["scenario"]: r for r in read_jsonl(str(path))}
        for key, summary in summaries.items():
            assert by_key[key] == summary_record(key, summary)

    def test_in_memory_sink_matches_run_grid(self, day_trace):
        grid = sweep(policies=("SinglePool",), traces=(day_trace,), backends=("fluid",))
        sink = run_grid(grid, sink=InMemorySink())
        plain = run_grid(grid)
        assert set(sink.results) == set(plain)
        key = next(iter(plain))
        assert sink.results[key].energy_kwh == plain[key].energy_kwh

    def test_run_policies_sink_keys_by_policy(self, day_trace, tmp_path):
        path = tmp_path / "policies.jsonl"
        run_policies(
            day_trace, (SINGLE_POOL, DYNAMO_LLM), backend="fluid",
            sink=JsonlSink(str(path)),
        )
        assert [r["scenario"] for r in read_jsonl(str(path))] == [
            "SinglePool", "DynamoLLM",
        ]

    def test_sink_closed_on_failure(self, tmp_path):
        path = tmp_path / "fail.jsonl"
        sink = JsonlSink(str(path))
        grid = sweep(policies=("NoSuchPolicy",))
        with pytest.raises(KeyError):
            run_grid(grid, sink=sink)
        assert sink._handle is None  # closed despite the error

    def test_sink_reuse_appends_instead_of_truncating(self, day_trace, tmp_path):
        """A sink reused across two sweeps keeps both sweeps' records."""
        path = tmp_path / "reuse.jsonl"
        sink = JsonlSink(str(path))
        first = sweep(policies=("SinglePool",), traces=(day_trace,), backends=("fluid",))
        second = sweep(policies=("DynamoLLM",), traces=(day_trace,), backends=("fluid",))
        run_grid(first, sink=sink)
        run_grid(second, sink=sink)
        records = read_jsonl(str(path))
        assert len(records) == sink.count == 2
        assert [r["policy"] for r in records] == ["SinglePool", "DynamoLLM"]

    def test_csv_identity_columns_stay_strings(self, day_bins, tmp_path):
        """A numeric-looking trace name must round-trip as a string."""
        from repro.api import CsvSink, read_csv

        trace = BinnedTrace(name="2024", bins=day_bins)
        grid = sweep(policies=("SinglePool",), traces=(trace,), backends=("fluid",))
        path = tmp_path / "numeric.csv"
        run_grid(grid, sink=CsvSink(str(path)))
        (record,) = read_csv(str(path))
        assert record["trace"] == "2024" and isinstance(record["trace"], str)
        assert isinstance(record["scenario"], str)
        assert isinstance(record["energy_kwh"], float)

    def test_csv_sink_reuse_writes_single_header(self, day_trace, tmp_path):
        from repro.api import CsvSink, read_csv

        path = tmp_path / "reuse.csv"
        sink = CsvSink(str(path))
        grid = sweep(policies=("SinglePool",), traces=(day_trace,), backends=("fluid",))
        run_grid(grid, sink=sink)
        run_grid(sweep(policies=("DynamoLLM",), traces=(day_trace,),
                       backends=("fluid",)), sink=sink)
        records = read_csv(str(path))
        assert [r["policy"] for r in records] == ["SinglePool", "DynamoLLM"]

    def test_sink_for_path(self, tmp_path):
        from repro.api import CsvSink

        assert isinstance(sink_for_path("a.jsonl"), JsonlSink)
        assert isinstance(sink_for_path("a.csv"), CsvSink)
        with pytest.raises(ValueError, match="extension"):
            sink_for_path("results.parquet")

    def test_event_backend_streams_too(self, tiny_trace, experiment_config, tmp_path):
        grid = sweep(policies=("DynamoLLM",), traces=(tiny_trace,),
                     base_config=experiment_config)
        path = tmp_path / "event.jsonl"
        run_grid(grid, lean=True, sink=JsonlSink(str(path)))
        (record,) = read_jsonl(str(path))
        assert record["requests"] > 0
        assert record["energy_kwh"] > 0


# ----------------------------------------------------------------------
# Vectorized event-engine hot path: every fast path must be a pure
# optimisation (field-identical summaries), and the engine must conserve
# requests over long non-dyadic horizons.
# ----------------------------------------------------------------------
class TestEngineHotPath:
    @staticmethod
    def _fingerprint(summary):
        lat = summary.latency
        return (
            summary.policy,
            summary.trace,
            repr(summary.duration_s),
            repr(summary.energy.total_wh),
            tuple(sorted(summary.energy.by_type_wh.items())),
            repr(summary.gpu_hours),
            summary.routed_requests,
            summary.squashed_requests,
            summary.reconfigurations,
            tuple(lat.ttft_values().tolist()),
            tuple(lat.tbt_values().tolist()),
            repr(lat.slo_attainment()),
            lat.count,
            lat.squashed_count,
        )

    @pytest.mark.parametrize("policy", ("DynamoLLM", "SinglePool"))
    def test_vectorized_matches_scalar_walk(self, policy, short_trace, experiment_config):
        from repro.api.engine import SimulationEngine

        spec = get_policy_spec(policy)
        fast = SimulationEngine(spec, short_trace, experiment_config, lean=True)
        assert fast._vectorized
        slow = SimulationEngine(
            spec, short_trace, experiment_config, lean=True, vectorized=False
        )
        assert not slow._vectorized
        assert self._fingerprint(fast.run()) == self._fingerprint(slow.run())

    def test_unsorted_arrivals_disable_the_vectorized_slice(
        self, short_trace, experiment_config
    ):
        import copy

        from repro.api.engine import SimulationEngine

        shuffled = copy.copy(short_trace)
        shuffled.requests = list(reversed(short_trace.requests))
        engine = SimulationEngine(
            get_policy_spec("DynamoLLM"), shuffled, experiment_config, lean=True
        )
        assert not engine._vectorized

    def test_lean_fast_path_matches_full_observers(self, short_trace, experiment_config):
        from repro.api.engine import SimulationEngine

        spec = get_policy_spec("DynamoLLM")
        lean = SimulationEngine(spec, short_trace, experiment_config, lean=True).run()
        full = SimulationEngine(spec, short_trace, experiment_config, lean=False).run()
        assert self._fingerprint(lean) == self._fingerprint(full)

    def test_step_history_is_opt_in(self, tiny_trace, experiment_config):
        from repro.api.engine import SimulationEngine

        spec = get_policy_spec("DynamoLLM")
        lean = SimulationEngine(spec, tiny_trace, experiment_config, lean=True)
        lean.run()
        assert lean.cluster.step_history == []
        assert all(
            i.step_history == [] for i in lean.cluster.instances.values()
        )
        full = SimulationEngine(spec, tiny_trace, experiment_config, lean=False)
        full.run()
        assert full.cluster.step_history
        assert any(i.step_history for i in full.cluster.instances.values())

    @pytest.mark.parametrize("time_step_s", (0.1, 0.3, 1.0))
    def test_long_horizon_request_conservation(self, profile, tiny_trace, time_step_s):
        """Thousands of k*dt boundaries must neither drop nor double-route
        arrivals, and every routed request must produce exactly one outcome."""
        from repro.api.engine import SimulationEngine

        config = ExperimentConfig(
            profile=profile, max_servers=16, time_step_s=time_step_s
        )
        engine = SimulationEngine(
            get_policy_spec("DynamoLLM"), tiny_trace, config, lean=True
        )
        summary = engine.run()
        assert summary.routed_requests == len(tiny_trace.requests)
        assert summary.latency.count == summary.routed_requests

    def test_shared_trace_round_trip(self, tiny_trace):
        from repro.api.executor import _encode_trace, _materialise_shared

        handle, segment = _encode_trace(tiny_trace)
        try:
            rebuilt = _materialise_shared(handle)
        finally:
            segment.close()
            segment.unlink()
        assert rebuilt.name == tiny_trace.name
        assert len(rebuilt.requests) == len(tiny_trace.requests)
        for original, copy_ in zip(tiny_trace.requests, rebuilt.requests):
            assert original.arrival_time == copy_.arrival_time
            assert original.input_tokens == copy_.input_tokens
            assert original.output_tokens == copy_.output_tokens
            assert original.request_id == copy_.request_id
            assert original.service == copy_.service
            assert original.slo_scale == copy_.slo_scale

    def test_process_pool_matches_serial(self, tiny_trace, experiment_config):
        from repro.api import runs

        scenarios = [
            Scenario(policy="DynamoLLM", trace=tiny_trace, base_config=experiment_config),
            Scenario(policy="SinglePool", trace=tiny_trace, base_config=experiment_config),
        ]
        serial = runs(scenarios, lean=True)
        pooled = runs(scenarios, workers=2, mode="process", lean=True)
        assert [self._fingerprint(s) for s in serial] == [
            self._fingerprint(s) for s in pooled
        ]
