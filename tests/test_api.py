"""Tests for the unified scenario/engine API (repro.api) and the CLI."""

from __future__ import annotations

import dataclasses

import pytest

from repro.__main__ import main as cli_main
from repro.api import (
    ReconfigurationObserver,
    Scenario,
    ScenarioGrid,
    SimulationEngine,
    TraceSpec,
    run_grid,
    run_policies,
    run_scenario,
    runs,
    sweep,
)
from repro.api.observers import Observer
from repro.experiments.runner import (
    ExperimentConfig,
    reset_deprecation_warnings,
    run_all_policies,
    run_policy_on_trace,
)
from repro.policies import DYNAMO_LLM, SINGLE_POOL
from repro.workload.slo import SLOPolicy


def _summary_fields(summary):
    """Every RunSummary field, for byte-identical comparisons."""
    return {
        "policy": summary.policy,
        "trace": summary.trace,
        "duration_s": summary.duration_s,
        "energy_wh": summary.energy.total_wh,
        "energy_by_type": summary.energy.type_breakdown_kwh(),
        "latency_count": summary.latency.count,
        "p50_ttft": summary.latency.ttft_percentile(50),
        "p99_ttft": summary.latency.ttft_percentile(99),
        "mean_power": summary.power.mean_cluster_power(),
        "gpu_hours": summary.gpu_hours,
        "average_servers": summary.average_servers,
        "frequency_timeline": summary.frequency_timeline,
        "pool_frequency_timeline": summary.pool_frequency_timeline,
        "gpus_by_tp_timeline": summary.gpus_by_tp_timeline,
        "pool_gpus_by_tp_timeline": summary.pool_gpus_by_tp_timeline,
        "pool_load_timeline": summary.pool_load_timeline,
        "squashed": summary.squashed_requests,
        "routed": summary.routed_requests,
        "slo_attainment": summary.slo_attainment(),
    }


class TestTraceSpec:
    def test_one_hour_build_and_slice(self):
        spec = TraceSpec(rate_scale=3.0, duration_s=120.0, seed=9)
        trace = spec.build()
        assert trace.duration <= 120.0 + 1.0
        assert len(trace) > 0

    def test_same_spec_same_trace(self):
        spec = TraceSpec(rate_scale=3.0, duration_s=120.0)
        first, second = spec.build(), spec.build()
        assert len(first) == len(second)
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]

    def test_poisson_kind(self):
        spec = TraceSpec(kind="poisson", level="low", duration_s=60.0, load_multiplier=2.0)
        trace = spec.build()
        assert len(trace) > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(kind="weekly")

    def test_with_builder(self):
        spec = TraceSpec()
        coding = spec.with_(service="coding", rate_scale=5.0)
        assert coding.service == "coding"
        assert spec.service == "conversation"  # original untouched
        assert coding.key != spec.key


class TestScenario:
    def test_with_builders_are_immutable(self):
        scenario = Scenario(policy="DynamoLLM")
        relaxed = scenario.with_(slo_scale=2.0).with_trace(duration_s=300.0)
        assert relaxed.slo_scale == 2.0
        assert relaxed.trace.duration_s == 300.0
        assert scenario.slo_scale is None
        assert scenario.trace.duration_s is None

    def test_key_includes_only_set_dimensions(self):
        plain = Scenario(policy="SinglePool")
        assert "acc" not in plain.key and "slo" not in plain.key
        rich = Scenario(policy="SinglePool", predictor_accuracy=0.8, slo_scale=2.0)
        assert "acc0.8" in rich.key and "slo2" in rich.key

    def test_resolved_config_applies_overrides(self):
        base = ExperimentConfig(max_servers=16)
        scenario = Scenario(
            policy="DynamoLLM",
            slo_scale=2.0,
            predictor_accuracy=0.8,
            pool_count=4,
            base_config=base,
        )
        config = scenario.resolved_config()
        assert config.slo_policy == SLOPolicy(scale=2.0)
        assert config.predictor_accuracy == 0.8
        assert config.scheme is not None and len(config.scheme.pool_names()) == 4
        assert config.max_servers == 16  # inherited
        # The base config itself is untouched.
        assert base.predictor_accuracy == 1.0 and base.scheme is None

    def test_policy_spec_resolution(self):
        assert Scenario(policy="DynamoLLM").policy_spec() is DYNAMO_LLM
        assert Scenario(policy=SINGLE_POOL).policy_spec() is SINGLE_POOL
        with pytest.raises(KeyError):
            Scenario(policy="NoSuchPolicy").policy_spec()


class TestSweep:
    def test_cartesian_expansion(self):
        grid = sweep(
            policies=("SinglePool", "DynamoLLM"),
            traces=(TraceSpec(), TraceSpec(service="coding")),
            slo_scales=(None, 2.0),
            accuracies=(None, 0.8, 0.6),
        )
        assert len(grid) == 2 * 2 * 2 * 3

    def test_keys_unique_and_addressable(self):
        grid = sweep(policies=("SinglePool", "DynamoLLM"), accuracies=(None, 0.8))
        assert len(set(grid.keys())) == len(grid)
        for key in grid.keys():
            assert grid[key].key == key

    def test_duplicate_keys_rejected(self):
        scenario = Scenario(policy="DynamoLLM")
        with pytest.raises(ValueError):
            ScenarioGrid([scenario, scenario])

    def test_filter_and_concat(self):
        grid = sweep(policies=("SinglePool", "DynamoLLM"), accuracies=(None, 0.8))
        dynamo = grid.filter(lambda s: s.policy_name == "DynamoLLM")
        assert len(dynamo) == 2
        merged = dynamo + grid.filter(lambda s: s.policy_name == "SinglePool")
        assert len(merged) == 4


@pytest.fixture(scope="module")
def api_trace():
    return TraceSpec(rate_scale=3.0, duration_s=120.0, seed=9).build()


@pytest.fixture(scope="module")
def api_config(profile):
    return ExperimentConfig(profile=profile, max_servers=16)


class TestEngineEquivalence:
    def test_engine_matches_legacy_shim_byte_for_byte(self, api_config):
        """Shim and direct engine agree on every field (10-min fixed-seed trace)."""
        trace = TraceSpec(rate_scale=6.0, duration_s=600.0, seed=7).build()
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            legacy = run_policy_on_trace(DYNAMO_LLM, trace, api_config)
        engine = SimulationEngine(DYNAMO_LLM, trace, api_config)
        assert _summary_fields(engine.run()) == _summary_fields(legacy)

    def test_lean_mode_matches_summary_metrics(self, api_trace, api_config):
        full = SimulationEngine(DYNAMO_LLM, api_trace, api_config).run()
        lean = SimulationEngine(DYNAMO_LLM, api_trace, api_config, lean=True).run()
        assert lean.energy.total_wh == full.energy.total_wh
        assert lean.latency.count == full.latency.count
        assert lean.average_servers == full.average_servers
        assert lean.gpu_hours == full.gpu_hours
        # Lean drops only the timelines.
        assert not lean.frequency_timeline and full.frequency_timeline
        assert not lean.pool_load_timeline and full.pool_load_timeline

    def test_stepped_execution(self, api_trace, api_config):
        engine = SimulationEngine(SINGLE_POOL, api_trace, api_config, lean=True)
        steps = 0
        while engine.step():
            steps += 1
        assert steps > 100  # one step per simulated second plus drain
        summary = engine.summary()
        assert summary.latency.count == len(api_trace)

    def test_epoch_events_reach_observers(self, api_trace, api_config):
        observer = ReconfigurationObserver()
        engine = SimulationEngine(DYNAMO_LLM, api_trace, api_config, lean=True)
        engine.add_observer(observer)
        summary = engine.run()
        assert observer.counts.get("frequency", 0) > 0
        assert observer.counts.get("shard", 0) > 0
        assert summary.reconfiguration_counts == observer.counts

    def test_custom_observer_sees_requests(self, api_trace, api_config):
        class CountingObserver(Observer):
            def __init__(self):
                self.routed = 0

            def on_request_routed(self, event):
                self.routed += 1

        observer = CountingObserver()
        engine = SimulationEngine(SINGLE_POOL, api_trace, api_config, lean=True)
        engine.add_observer(observer)
        engine.run()
        assert observer.routed == len(api_trace)


class TestExecutor:
    def test_parallel_matches_serial(self, api_trace, api_config):
        grid = sweep(
            policies=("SinglePool", "DynamoLLM"),
            traces=(api_trace,),
            accuracies=(None, 0.8),
            base_config=api_config,
        )
        serial = run_grid(grid, lean=True)
        parallel = run_grid(grid, workers=4, lean=True)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert _summary_fields(serial[key]) == _summary_fields(parallel[key])

    def test_twelve_scenario_grid_addressable_by_key(self, api_trace, api_config):
        grid = sweep(
            policies=("SinglePool", "DynamoLLM"),
            traces=(api_trace,),
            slo_scales=(None, 2.0, 4.0),
            accuracies=(None, 0.8),
            base_config=api_config,
        )
        assert len(grid) == 12
        summaries = run_grid(grid, workers=4, lean=True)
        assert set(summaries) == set(grid.keys())
        for key, summary in summaries.items():
            assert summary.energy_kwh > 0.0
            assert summary.policy == grid[key].policy_name

    def test_process_mode_matches_serial(self, api_trace, api_config):
        grid = sweep(
            policies=("SinglePool", "DynamoLLM"),
            traces=(api_trace,),
            base_config=api_config,
        )
        serial = run_grid(grid, lean=True)
        procs = run_grid(grid, workers=2, lean=True, mode="process")
        for key in serial:
            assert _summary_fields(serial[key]) == _summary_fields(procs[key])

    def test_unknown_mode_rejected(self, api_trace, api_config):
        grid = sweep(policies=("SinglePool",), traces=(api_trace,), base_config=api_config)
        with pytest.raises(ValueError, match="unknown executor mode"):
            run_grid(grid, workers=2, mode="fibers")

    def test_thread_workers_do_not_share_request_objects(self, api_trace, api_config):
        """Concurrent engines must not race on request.predicted_type."""
        scenarios = [
            Scenario(
                policy="DynamoLLM",
                trace=api_trace,
                predictor_accuracy=accuracy,
                base_config=api_config,
            )
            for accuracy in (1.0, 0.5)
        ]
        for request in api_trace.requests:
            request.predicted_type = None
        runs(scenarios, workers=2, lean=True)
        # The callers' trace stays untouched by parallel runs.
        assert all(r.predicted_type is None for r in api_trace.requests)

    def test_runs_preserves_input_order(self, api_trace, api_config):
        scenarios = [
            Scenario(policy=name, trace=api_trace, base_config=api_config)
            for name in ("DynamoLLM", "SinglePool")
        ]
        summaries = runs(scenarios, workers=2, lean=True)
        assert [s.policy for s in summaries] == ["DynamoLLM", "SinglePool"]

    def test_run_scenario_single(self, api_trace, api_config):
        summary = run_scenario(
            Scenario(policy="SinglePool", trace=api_trace, base_config=api_config),
            lean=True,
        )
        assert summary.latency.count == len(api_trace)


class TestDeprecationShims:
    def test_run_policy_on_trace_warns(self, api_trace, api_config):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="run_policy_on_trace"):
            run_policy_on_trace(SINGLE_POOL, api_trace, api_config)

    def test_shims_warn_exactly_once_per_process(self, api_trace, api_config):
        """A sweep looping over a shim must not emit one warning per call."""
        import warnings as warnings_module

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="run_policy_on_trace"):
            run_policy_on_trace(SINGLE_POOL, api_trace, api_config)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            run_policy_on_trace(SINGLE_POOL, api_trace, api_config)
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
        # ... and the two shims warn independently.
        with pytest.warns(DeprecationWarning, match="run_all_policies"):
            run_all_policies(api_trace, (SINGLE_POOL,), api_config)

    def test_run_all_policies_warns_and_matches(self, api_trace, api_config):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="run_all_policies"):
            legacy = run_all_policies(api_trace, (SINGLE_POOL, DYNAMO_LLM), api_config)
        modern = run_policies(api_trace, (SINGLE_POOL, DYNAMO_LLM), api_config)
        assert set(legacy) == set(modern)
        for name in legacy:
            assert _summary_fields(legacy[name]) == _summary_fields(modern[name])

    def test_run_all_policies_does_not_mutate_config(self, api_trace, api_config):
        config = dataclasses.replace(api_config, static_servers=None)
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            run_all_policies(api_trace, (SINGLE_POOL,), config)
        assert config.static_servers is None

    def test_shared_budget_applied_to_all_policies(self, api_trace, api_config):
        config = dataclasses.replace(api_config, static_servers=None)
        summaries = run_policies(api_trace, (SINGLE_POOL, DYNAMO_LLM), config)
        # The static baseline holds the shared peak budget for the whole run.
        assert summaries["SinglePool"].average_servers > 0


class TestCli:
    def test_list_experiments(self, capsys):
        assert cli_main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure6-8" in out

    def test_list_experiments_light(self, capsys):
        assert cli_main(["list-experiments", "--light"]) == 0
        assert "figure6-8" not in capsys.readouterr().out

    def test_run_command(self, capsys):
        code = cli_main(
            [
                "run", "--policy", "DynamoLLM", "--trace", "one_hour",
                "--duration", "120", "--rate-scale", "3", "--lean", "--json",
            ]
        )
        assert code == 0
        import json

        row = json.loads(capsys.readouterr().out)
        assert row["scenario"].startswith("DynamoLLM/")
        assert row["energy_kwh"] > 0.0

    def test_sweep_command(self, capsys):
        code = cli_main(
            [
                "sweep", "--policies", "SinglePool,DynamoLLM",
                "--duration", "120", "--rate-scale", "3",
                "--workers", "2", "--json",
            ]
        )
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2

    def test_bench_command(self, capsys):
        assert cli_main(["bench", "table4", "--json"]) == 0
        import json

        timings = json.loads(capsys.readouterr().out)
        assert set(timings) == {"table4"}
        assert timings["table4"] >= 0.0
