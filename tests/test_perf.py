"""Tests for the analytical performance models (latency, power, energy)."""

import pytest

from repro.llm.catalog import FALCON_180B, LLAMA2_13B, LLAMA2_70B, MIXTRAL_8X7B
from repro.perf.config import InstanceConfig, WorkloadSlice
from repro.perf.energy_model import EnergyModel
from repro.perf.latency_model import LatencyModel
from repro.perf.power_model import PowerModel
from repro.workload.classification import RequestType


@pytest.fixture(scope="module")
def latency_70b():
    return LatencyModel(LLAMA2_70B)


@pytest.fixture(scope="module")
def energy_70b():
    return EnergyModel(LLAMA2_70B)


class TestInstanceConfig:
    def test_name(self):
        assert InstanceConfig(4, 1200).name == "TP4@1200MHz"

    def test_with_frequency_and_tp(self):
        config = InstanceConfig(4, 1200)
        assert config.with_frequency(1600).frequency_mhz == 1600
        assert config.with_tp(8).tensor_parallelism == 8

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            InstanceConfig(0, 1200)
        with pytest.raises(ValueError):
            InstanceConfig(2, 0)

    def test_highest_performance(self):
        config = InstanceConfig.highest_performance()
        assert config.tensor_parallelism == 8
        assert config.frequency_mhz == 1980


class TestWorkloadSlice:
    def test_arrival_rate(self):
        slice_ = WorkloadSlice(input_tokens=500, output_tokens=100, prompt_tokens_per_second=1000)
        assert slice_.arrival_rate == pytest.approx(2.0)
        assert slice_.decode_tokens_per_second == pytest.approx(200.0)

    def test_average_context(self):
        slice_ = WorkloadSlice(input_tokens=500, output_tokens=100, prompt_tokens_per_second=0)
        assert slice_.average_context == pytest.approx(550.0)

    def test_for_request_type_uses_representative_lengths(self):
        slice_ = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 2000.0)
        assert slice_.input_tokens == 600
        assert slice_.output_tokens == 220

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            WorkloadSlice(input_tokens=0, output_tokens=1, prompt_tokens_per_second=1)
        with pytest.raises(ValueError):
            WorkloadSlice(input_tokens=1, output_tokens=1, prompt_tokens_per_second=-1)


class TestLatencyModel:
    def test_prefill_scales_with_input_length(self, latency_70b):
        config = InstanceConfig(8, 1980)
        assert latency_70b.prefill_time(config, 2000) > 3 * latency_70b.prefill_time(config, 500)

    def test_prefill_faster_with_more_gpus(self, latency_70b):
        assert latency_70b.prefill_time(InstanceConfig(8, 1980), 1000) < latency_70b.prefill_time(
            InstanceConfig(2, 1980), 1000
        )

    def test_prefill_faster_at_higher_frequency(self, latency_70b):
        assert latency_70b.prefill_time(InstanceConfig(4, 1980), 1000) < latency_70b.prefill_time(
            InstanceConfig(4, 800), 1000
        )

    def test_iteration_time_in_realistic_range(self, latency_70b):
        # Paper: a decode iteration takes 20-30 ms; our TP8 model lands near
        # that and TP2 is slower.
        tp8 = latency_70b.iteration_time(InstanceConfig(8, 1980), 16, 800)
        tp2 = latency_70b.iteration_time(InstanceConfig(2, 1980), 16, 800)
        assert 0.005 < tp8 < 0.05
        assert tp2 > tp8

    def test_iteration_time_nearly_frequency_insensitive(self, latency_70b):
        fast = latency_70b.iteration_time(InstanceConfig(8, 1980), 8, 800)
        slow = latency_70b.iteration_time(InstanceConfig(8, 800), 8, 800)
        assert slow < fast * 1.3

    def test_weight_read_time_scales_inverse_tp(self, latency_70b):
        tp2 = latency_70b.weight_read_time(InstanceConfig(2, 1980))
        tp8 = latency_70b.weight_read_time(InstanceConfig(8, 1980))
        assert tp2 == pytest.approx(4 * tp8, rel=0.01)

    def test_idle_workload_is_feasible(self, latency_70b):
        workload = WorkloadSlice(input_tokens=600, output_tokens=220, prompt_tokens_per_second=0.0)
        point = latency_70b.solve(InstanceConfig(4, 1200), workload)
        assert point.feasible
        assert point.utilization == 0.0

    def test_moderate_load_is_feasible(self, latency_70b):
        workload = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 1000.0)
        point = latency_70b.solve(InstanceConfig(8, 1980), workload)
        assert point.feasible
        assert 0.0 < point.utilization < 1.0
        assert point.ttft_s > 0.0
        assert point.tbt_s > 0.0

    def test_extreme_load_is_infeasible(self, latency_70b):
        workload = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 100000.0)
        point = latency_70b.solve(InstanceConfig(2, 800), workload)
        assert not point.feasible

    def test_kv_capacity_binds_for_long_requests_on_tp2(self, latency_70b):
        workload = WorkloadSlice.for_request_type(RequestType.from_name("LL"), 2000.0)
        point = latency_70b.solve(InstanceConfig(2, 1980), workload)
        assert not point.feasible

    def test_model_that_does_not_fit_is_infeasible(self):
        latency = LatencyModel(FALCON_180B)
        workload = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 100.0)
        assert not latency.solve(InstanceConfig(2, 1980), workload).feasible
        assert latency.solve(InstanceConfig(8, 1980), workload).feasible

    def test_ttft_increases_with_load(self, latency_70b):
        config = InstanceConfig(8, 1980)
        low = latency_70b.solve(config, WorkloadSlice.for_request_type(RequestType.from_name("MM"), 500.0))
        high = latency_70b.solve(config, WorkloadSlice.for_request_type(RequestType.from_name("MM"), 6000.0))
        assert high.ttft_s > low.ttft_s

    def test_batch_grows_with_load(self, latency_70b):
        config = InstanceConfig(8, 1980)
        low = latency_70b.solve(config, WorkloadSlice.for_request_type(RequestType.from_name("MM"), 500.0))
        high = latency_70b.solve(config, WorkloadSlice.for_request_type(RequestType.from_name("MM"), 4000.0))
        assert high.batch_size > low.batch_size

    def test_max_load_positive_and_ordered_by_tp(self, latency_70b):
        workload = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 1.0)
        tp4 = latency_70b.max_load(InstanceConfig(4, 1980), workload, ttft_slo_s=0.4, tbt_slo_s=0.1)
        tp8 = latency_70b.max_load(InstanceConfig(8, 1980), workload, ttft_slo_s=0.4, tbt_slo_s=0.1)
        assert tp4 > 0
        assert tp8 > tp4

    def test_max_load_increases_with_frequency(self, latency_70b):
        workload = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 1.0)
        slow = latency_70b.max_load(InstanceConfig(4, 800), workload, ttft_slo_s=0.4, tbt_slo_s=0.1)
        fast = latency_70b.max_load(InstanceConfig(4, 1980), workload, ttft_slo_s=0.4, tbt_slo_s=0.1)
        assert fast > slow

    def test_invalid_frequency_rejected(self, latency_70b):
        workload = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 100.0)
        with pytest.raises(ValueError):
            latency_70b.solve(InstanceConfig(4, 300), workload)

    def test_invalid_tp_rejected(self, latency_70b):
        workload = WorkloadSlice.for_request_type(RequestType.from_name("MM"), 100.0)
        with pytest.raises(ValueError):
            latency_70b.solve(InstanceConfig(3, 1200), workload)


class TestPowerModel:
    def test_idle_power_floor(self):
        power = PowerModel()
        assert power.gpu_power(1980, 0.0) == pytest.approx(power.gpu.idle_watts)

    def test_full_power_at_max_frequency(self):
        power = PowerModel()
        assert power.gpu_power(1980, 1.0) == pytest.approx(power.gpu.tdp_watts)

    def test_power_monotone_in_activity(self):
        power = PowerModel()
        assert power.gpu_power(1600, 0.8) > power.gpu_power(1600, 0.4)

    def test_power_monotone_in_frequency(self):
        power = PowerModel()
        assert power.gpu_power(1980, 0.8) > power.gpu_power(1200, 0.8)

    def test_dynamic_scale_bounded(self):
        power = PowerModel()
        for frequency in (800, 1200, 1600, 1980):
            assert 0.0 < power.dynamic_scale(frequency) <= 1.0

    def test_voltage_floor_limits_savings(self):
        power = PowerModel()
        # Below the voltage floor, halving frequency saves much less than half.
        assert power.dynamic_scale(800) > 0.2

    def test_instance_power_includes_host_share(self):
        power = PowerModel()
        instance = power.instance_power(8, 1980, 0.0)
        assert instance == pytest.approx(8 * power.gpu.idle_watts + power.server.host_idle_watts)

    def test_instance_power_scales_with_tp(self):
        power = PowerModel()
        assert power.instance_power(8, 1980, 0.5) > power.instance_power(4, 1980, 0.5)

    def test_activity_out_of_range_rejected(self):
        power = PowerModel()
        with pytest.raises(ValueError):
            power.gpu_power(1980, 1.5)

    def test_idle_instance_power(self):
        power = PowerModel()
        assert power.idle_instance_power(4) < power.instance_power(4, 1980, 1.0)


class TestEnergyModel:
    def test_feasible_sample_has_finite_energy(self, energy_70b):
        sample = energy_70b.evaluate_request_type(
            RequestType.from_name("MM"), InstanceConfig(8, 1980), 2000.0
        )
        assert sample.feasible
        assert 0.0 < sample.energy_per_request_wh < 10.0

    def test_infeasible_sample_flagged(self, energy_70b):
        sample = energy_70b.evaluate_request_type(
            RequestType.from_name("LL"), InstanceConfig(2, 1980), 2000.0
        )
        assert not sample.feasible

    def test_energy_grows_with_request_size(self, energy_70b):
        config = InstanceConfig(8, 1980)
        small = energy_70b.evaluate_request_type(RequestType.from_name("SS"), config, 2000.0)
        large = energy_70b.evaluate_request_type(RequestType.from_name("LL"), config, 2000.0)
        assert large.energy_per_request_wh > 3 * small.energy_per_request_wh

    def test_tp8_costs_more_than_tp4_for_mm(self, energy_70b):
        tp4 = energy_70b.evaluate_request_type(RequestType.from_name("MM"), InstanceConfig(4, 1600), 2000.0)
        tp8 = energy_70b.evaluate_request_type(RequestType.from_name("MM"), InstanceConfig(8, 1600), 2000.0)
        assert tp8.energy_per_request_wh > tp4.energy_per_request_wh

    def test_best_config_respects_slo(self, energy_70b):
        best = energy_70b.best_config(RequestType.from_name("MM"), 2000.0)
        assert best is not None
        assert best.feasible

    def test_best_config_none_when_nothing_feasible(self, energy_70b):
        best = energy_70b.best_config(RequestType.from_name("LL"), 1e6)
        assert best is None

    def test_sweep_covers_all_configs(self, energy_70b):
        samples = energy_70b.sweep_configs(RequestType.from_name("SS"), 2000.0, frequencies=(800, 1980))
        assert len(samples) == 3 * 2

    def test_max_load_ordered_by_frequency(self, energy_70b):
        request_type = RequestType.from_name("MM")
        slow = energy_70b.max_load(request_type, InstanceConfig(4, 800))
        fast = energy_70b.max_load(request_type, InstanceConfig(4, 1980))
        assert fast > slow > 0

    def test_relaxed_slo_expands_feasible_set(self, energy_70b):
        strict = energy_70b.feasible_configs(RequestType.from_name("MM"), 2000.0, slo_scale=1.0)
        relaxed = energy_70b.feasible_configs(RequestType.from_name("MM"), 2000.0, slo_scale=4.0)
        assert set(strict) <= set(relaxed)
        assert len(relaxed) >= len(strict)

    def test_zero_load_energy_is_zero(self, energy_70b):
        sample = energy_70b.evaluate_request_type(
            RequestType.from_name("MM"), InstanceConfig(4, 1200), 0.0
        )
        assert sample.energy_per_request_wh == 0.0


class TestPaperCalibration:
    """Qualitative shapes of Tables I-III that the reproduction preserves."""

    def test_ss_runs_cheapest_on_tp2(self, energy_70b):
        best = energy_70b.best_config(RequestType.from_name("SS"), 2000.0)
        assert best.config.tensor_parallelism == 2

    def test_ss_tp2_lowest_frequency_is_infeasible(self, energy_70b):
        sample = energy_70b.evaluate_request_type(
            RequestType.from_name("SS"), InstanceConfig(2, 800), 2000.0
        )
        assert not sample.feasible

    def test_mm_medium_load_needs_tp4_or_more(self, energy_70b):
        for frequency in (800, 1200, 1600, 1980):
            sample = energy_70b.evaluate_request_type(
                RequestType.from_name("MM"), InstanceConfig(2, frequency), 2000.0
            )
            assert not sample.feasible

    def test_ll_cannot_run_on_tp2(self, energy_70b):
        for frequency in (800, 1200, 1600, 1980):
            sample = energy_70b.evaluate_request_type(
                RequestType.from_name("LL"), InstanceConfig(2, frequency), 2000.0
            )
            assert not sample.feasible

    def test_ll_feasible_on_tp8(self, energy_70b):
        sample = energy_70b.evaluate_request_type(
            RequestType.from_name("LL"), InstanceConfig(8, 1600), 2000.0
        )
        assert sample.feasible

    def test_low_load_widens_feasible_region(self, energy_70b):
        low = energy_70b.feasible_configs(RequestType.from_name("MM"), 650.0)
        high = energy_70b.feasible_configs(RequestType.from_name("MM"), 4000.0)
        assert len(low) > len(high)

    def test_high_load_pushes_best_config_up(self, energy_70b):
        request_type = RequestType.from_name("MM")
        low_best = energy_70b.best_config(request_type, 650.0)
        high_best = energy_70b.best_config(request_type, 4000.0)
        low_key = (low_best.config.tensor_parallelism, low_best.config.frequency_mhz)
        high_key = (high_best.config.tensor_parallelism, high_best.config.frequency_mhz)
        assert high_key >= low_key

    def test_small_models_cheaper_than_large(self):
        small = EnergyModel(LLAMA2_13B).best_config(RequestType.from_name("MM"), 2000.0)
        large = EnergyModel(LLAMA2_70B).best_config(RequestType.from_name("MM"), 2000.0)
        assert small.energy_per_request_wh < large.energy_per_request_wh

    def test_small_models_prefer_small_tp(self):
        best = EnergyModel(LLAMA2_13B).best_config(RequestType.from_name("MM"), 2000.0)
        assert best.config.tensor_parallelism == 2

    def test_falcon_only_feasible_on_tp8(self):
        energy = EnergyModel(FALCON_180B)
        configs = energy.feasible_configs(RequestType.from_name("MM"), 2000.0)
        assert configs
        assert all(config.tensor_parallelism == 8 for config in configs)

    def test_moe_cheaper_than_dense_at_same_size_class(self):
        mixtral = EnergyModel(MIXTRAL_8X7B).best_config(RequestType.from_name("MM"), 2000.0)
        llama70 = EnergyModel(LLAMA2_70B).best_config(RequestType.from_name("MM"), 2000.0)
        assert mixtral.energy_per_request_wh < llama70.energy_per_request_wh

    def test_baseline_config_most_expensive_for_short_requests(self, energy_70b):
        # The TP8 / max-frequency baseline configuration always costs more for
        # SS requests than the energy-optimal choice.
        best = energy_70b.best_config(RequestType.from_name("SS"), 2000.0)
        baseline = energy_70b.evaluate_request_type(
            RequestType.from_name("SS"), InstanceConfig.highest_performance(), 2000.0
        )
        assert baseline.energy_per_request_wh > 1.5 * best.energy_per_request_wh
