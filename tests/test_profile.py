"""Tests for energy-performance profiles and the profiler."""

import pytest

from repro.llm.catalog import LLAMA2_70B
from repro.llm.gpu import H100
from repro.perf.profile import EnergyPerformanceProfile, ProfileEntry
from repro.perf.profiler import Profiler, get_default_profile


class TestProfileEntry:
    def make_entry(self, **overrides):
        defaults = dict(
            request_type="MM",
            tensor_parallelism=4,
            frequency_mhz=1200,
            loads=[0.0, 1000.0, 2000.0],
            power_watts=[500.0, 900.0, 1300.0],
            energy_per_request_wh=[0.0, 0.1, 0.12],
            ttft_s=[0.05, 0.1, 0.2],
            tbt_s=[0.02, 0.03, 0.04],
            max_load_slo=1800.0,
        )
        defaults.update(overrides)
        return ProfileEntry(**defaults)

    def test_interpolates_between_grid_points(self):
        entry = self.make_entry()
        assert entry.power_at(500.0) == pytest.approx(700.0)

    def test_clamps_outside_grid(self):
        entry = self.make_entry()
        assert entry.power_at(-10.0) == pytest.approx(500.0)
        assert entry.power_at(99999.0) == pytest.approx(1300.0)

    def test_supports_uses_max_load(self):
        entry = self.make_entry()
        assert entry.supports(1700.0)
        assert not entry.supports(1900.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            self.make_entry(loads=[0.0], power_watts=[1.0], energy_per_request_wh=[0.0], ttft_s=[0.1], tbt_s=[0.1])

    def test_requires_increasing_loads(self):
        with pytest.raises(ValueError):
            self.make_entry(loads=[0.0, 0.0, 1.0])

    def test_config_property(self):
        assert self.make_entry().config.name == "TP4@1200MHz"


class TestEnergyPerformanceProfile:
    def test_default_profile_has_all_combinations(self, profile):
        # 9 request types x 3 TP degrees x len(frequency levels)
        frequencies = len(H100.frequency_levels())
        assert len(profile) == 9 * 3 * frequencies

    def test_request_types_listed(self, profile):
        assert len(profile.request_types()) == 9

    def test_missing_entry_raises(self, profile):
        with pytest.raises(KeyError):
            profile.entry("MM", 16, 1200)

    def test_max_load_monotone_in_frequency(self, profile):
        loads = [profile.max_load("MM", 4, f) for f in (800, 1200, 1600, 1980)]
        assert all(loads[i] <= loads[i + 1] + 1e-6 for i in range(len(loads) - 1))

    def test_max_load_monotone_in_tp(self, profile):
        assert profile.max_load("MM", 8, 1980) > profile.max_load("MM", 4, 1980)

    def test_power_increases_with_load(self, profile):
        low = profile.power("MM", 4, 1600, 200.0)
        high = profile.power("MM", 4, 1600, 2000.0)
        assert high > low

    def test_best_frequency_respects_load(self, profile):
        low_frequency = profile.best_frequency("MM", 4, 500.0)
        high_frequency = profile.best_frequency("MM", 4, profile.max_load("MM", 4, 1980) * 0.95)
        assert low_frequency is not None and high_frequency is not None
        assert high_frequency >= low_frequency

    def test_best_frequency_none_when_overloaded(self, profile):
        assert profile.best_frequency("MM", 2, 1e7) is None

    def test_instance_energy_rate_infinite_when_unsupported(self, profile):
        assert profile.instance_energy_rate("MM", 2, 800, 1e6) == float("inf")

    def test_supports_matches_max_load(self, profile):
        max_load = profile.max_load("SS", 2, 1600)
        assert profile.supports("SS", 2, 1600, max_load * 0.9)
        assert not profile.supports("SS", 2, 1600, max_load * 1.1)

    def test_ll_tp2_unsupported_at_medium_load(self, profile):
        assert not profile.supports("LL", 2, 1980, 2000.0)

    def test_frequencies_listing(self, profile):
        frequencies = profile.frequencies("MM", 4)
        assert 800 in frequencies and 1980 in frequencies


class TestProfiler:
    def test_partial_profile_build(self):
        profiler = Profiler(model=LLAMA2_70B, load_grid=(0.0, 1000.0, 2000.0))
        partial = profiler.build_profile(
            request_types=("MM",), tensor_parallelisms=(4,), frequencies=(1200, 1980)
        )
        assert len(partial) == 2
        assert partial.max_load("MM", 4, 1980) > 0

    def test_cached_profile_reused(self):
        profiler = Profiler(model=LLAMA2_70B, load_grid=(0.0, 500.0, 1000.0))
        first = profiler.cached_profile()
        second = profiler.cached_profile()
        assert first is second

    def test_module_cache_reused(self):
        assert get_default_profile(LLAMA2_70B) is get_default_profile(LLAMA2_70B)

    def test_relaxed_slo_profile_supports_more_load(self):
        profiler = Profiler(model=LLAMA2_70B, load_grid=(0.0, 1000.0, 2000.0, 4000.0))
        strict = profiler.build_profile(
            request_types=("MM",), tensor_parallelisms=(4,), frequencies=(1200,), slo_scale=1.0
        )
        relaxed = profiler.build_profile(
            request_types=("MM",), tensor_parallelisms=(4,), frequencies=(1200,), slo_scale=4.0
        )
        assert relaxed.max_load("MM", 4, 1200) >= strict.max_load("MM", 4, 1200)
