"""Tests for the experiment drivers and the end-to-end runners."""

import pytest

from repro.experiments.characterization import (
    best_configs_summary,
    format_heatmap,
    table1_energy_heatmap,
    table2_load_sweep,
    table3_model_sweep,
    table4_slo_table,
)
from repro.experiments.cluster_eval import (
    figure6_energy_by_system,
    figure7_latency_percentiles,
    figure8_power_percentiles,
    figure9_frequency_timeline,
    figure10_sharding_timeline,
    normalized_energy,
)
from repro.experiments.fluid import FluidRunner
from repro.experiments.overheads import (
    figure3_frequency_switch_throughput,
    format_matrix,
    table5_instance_creation,
    table6_resharding_matrix,
)
from repro.api import SimulationEngine, run_policies
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments, run_experiment
from repro.experiments.runner import (
    ExperimentConfig,
    load_fractions_from_trace,
    pool_loads_from_trace,
    recommended_static_servers,
)
from repro.experiments.traces import figure1_request_mix, figure2_weekly_load, weekly_load_statistics
from repro.policies import ALL_POLICIES, DYNAMO_LLM, SINGLE_POOL
from repro.workload.classification import DEFAULT_SCHEME, REQUEST_TYPE_NAMES
from repro.workload.synthetic import make_week_trace


class TestCharacterizationDrivers:
    def test_table1_has_nine_rows(self):
        rows = table1_energy_heatmap()
        assert set(rows) == set(REQUEST_TYPE_NAMES)
        assert len(next(iter(rows.values()))) == 12  # 3 TPs x 4 frequencies

    def test_table1_ll_infeasible_on_tp2(self):
        rows = table1_energy_heatmap()
        assert all(rows["LL"][f"TP2@{f}"] is None for f in (800, 1200, 1600, 1980))

    def test_table1_ss_cheaper_than_ll(self):
        rows = table1_energy_heatmap()
        assert rows["SS"]["TP8@1600"] < rows["LL"]["TP8@1600"]

    def test_table2_levels(self):
        rows = table2_load_sweep()
        assert set(rows) == {"low", "medium", "high"}
        # Low load admits more feasible configurations than high load.
        low_feasible = sum(1 for value in rows["low"].values() if value is not None)
        high_feasible = sum(1 for value in rows["high"].values() if value is not None)
        assert low_feasible > high_feasible

    def test_table3_models_and_ordering(self):
        rows = table3_model_sweep()
        assert "Falcon-180B" in rows and "Llama2-13B" in rows
        # Small models are cheaper than the largest ones at the same config.
        assert rows["Llama2-13B"]["TP8@1600"] < rows["Falcon-180B"]["TP8@1600"]

    def test_table4_matches_slo_policy(self):
        table = table4_slo_table()
        assert table["SS"]["ttft_slo_s"] == pytest.approx(0.25)
        assert table["LL"]["tbt_slo_s"] == pytest.approx(0.1)

    def test_best_configs_cover_all_types(self):
        summary = best_configs_summary()
        assert set(summary) == set(REQUEST_TYPE_NAMES)
        assert summary["SS"].startswith("TP2")

    def test_format_heatmap_renders_rows(self):
        lines = format_heatmap(table2_load_sweep())
        assert len(lines) == 4  # header + three load levels


class TestOverheadDrivers:
    def test_table5_totals(self):
        table = table5_instance_creation()
        assert table["cold_boot"]["total"] > 300.0
        assert table["warm_boot"]["total"] < table["cold_boot"]["total"]

    def test_table6_key_entries(self):
        matrix = table6_resharding_matrix()
        assert matrix["TP4"]["TP8"] == 1
        assert matrix["TP2"]["4TP2"] == 4
        assert matrix["2TP4"]["TP8"] == 0
        assert matrix["_unit_T_s"]["T"] > 0

    def test_figure3_switching_hurts_throughput(self):
        results = figure3_frequency_switch_throughput()
        for row in results.values():
            assert row["switch_freq_rps"] < row["const_freq_rps"]
            assert row["optimized_switch_rps"] > row["switch_freq_rps"]

    def test_format_matrix(self):
        lines = format_matrix(table6_resharding_matrix())
        assert len(lines) == 7  # header + 6 layouts


class TestTraceDrivers:
    def test_figure1_fractions_sum_to_one(self):
        mix = figure1_request_mix(seed=3)
        for service, per_day in mix.items():
            for day, fractions in per_day.items():
                assert sum(fractions.values()) == pytest.approx(1.0, abs=0.02)

    def test_figure2_normalised_to_peak(self):
        series = figure2_weekly_load(seed=3)
        for service, points in series.items():
            values = [value for _, value in points]
            assert max(values) == pytest.approx(1.0)
            assert min(values) >= 0.0

    def test_weekly_statistics_coding_more_bursty(self):
        stats = weekly_load_statistics(seed=3)
        assert stats["coding"]["peak_over_valley"] > stats["conversation"]["peak_over_valley"]
        assert stats["coding"]["peak_over_average"] > stats["conversation"]["peak_over_average"]


class TestRegistry:
    def test_registry_contains_all_artifacts(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "figure1",
            "figure2",
            "figure3",
            "figure6-8",
            "figure11",
            "figure12",
            "figure13",
            "figure14",
            "figure15",
            "figure16",
            "cost",
            "catalog",
            "replay",
        }
        assert expected <= set(EXPERIMENTS)

    def test_light_experiments_exclude_heavy(self):
        light = list_experiments(include_heavy=False)
        assert "figure6-8" not in light
        assert "table1" in light

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_run_experiment_by_id(self):
        assert run_experiment("table4")["MM"]["ttft_slo_s"] == pytest.approx(0.4)


class TestRunnerHelpers:
    def test_pool_loads_cover_pools_with_traffic(self, short_trace):
        loads = pool_loads_from_trace(short_trace, DEFAULT_SCHEME)
        assert loads
        assert all(value >= 0 for value in loads.values())

    def test_load_fractions_sum_to_one(self, short_trace):
        fractions = load_fractions_from_trace(short_trace, DEFAULT_SCHEME)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_recommended_static_servers_positive(self, short_trace, profile):
        servers = recommended_static_servers(short_trace, profile, DEFAULT_SCHEME)
        assert servers >= 1


class TestDetailedRunner:
    def test_single_pool_run_completes_requests(self, tiny_trace, experiment_config):
        summary = SimulationEngine(SINGLE_POOL, tiny_trace, experiment_config).run()
        assert summary.latency.count == len(tiny_trace)
        assert summary.energy_kwh > 0.0
        assert summary.gpu_hours > 0.0
        assert summary.slo_attainment() > 0.8

    def test_dynamo_run_saves_energy(self, short_trace, experiment_config):
        summaries = run_policies(short_trace, (SINGLE_POOL, DYNAMO_LLM), experiment_config)
        baseline = summaries["SinglePool"]
        dynamo = summaries["DynamoLLM"]
        assert dynamo.energy_kwh < baseline.energy_kwh
        assert dynamo.average_servers <= baseline.average_servers
        assert dynamo.slo_attainment() > 0.75
        assert dynamo.latency.count == baseline.latency.count

    def test_cluster_eval_extractors(self, short_trace, experiment_config):
        summaries = run_policies(short_trace, (SINGLE_POOL, DYNAMO_LLM), experiment_config)
        energy = figure6_energy_by_system(summaries)
        assert set(energy) == {"SinglePool", "DynamoLLM"}
        latency = figure7_latency_percentiles(summaries)
        assert latency["DynamoLLM"]["ttft_s"][99] >= latency["DynamoLLM"]["ttft_s"][50]
        power = figure8_power_percentiles(summaries)
        assert power["SinglePool"]["cluster_kw"][99] > 0
        frequency = figure9_frequency_timeline(summaries, policy="DynamoLLM", pools=("MM",))
        assert frequency["total"]
        sharding = figure10_sharding_timeline(summaries, policy="DynamoLLM", pools=("MM",))
        assert "TP8" in sharding["total"]
        normalized = normalized_energy(summaries)
        assert normalized["SinglePool"] == pytest.approx(1.0)
        assert normalized["DynamoLLM"] < 1.0


class TestFluidRunner:
    @pytest.fixture(scope="class")
    def day_bins(self):
        bins = make_week_trace("conversation", seed=5, rate_scale=20.0, bin_seconds=1800.0)
        return [b for b in bins if b.start_time < 2 * 86400.0]

    def test_fluid_energy_positive(self, day_bins, profile):
        runner = FluidRunner(profile=profile)
        result = runner.run(SINGLE_POOL, day_bins)
        assert result.energy_kwh > 0.0
        assert result.gpu_hours > 0.0
        assert len(result.energy_timeline_wh) == len(day_bins)

    def test_fluid_dynamo_beats_baseline(self, day_bins, profile):
        runner = FluidRunner(profile=profile)
        results = runner.run_all((SINGLE_POOL, DYNAMO_LLM), day_bins)
        assert results["DynamoLLM"].energy_wh < results["SinglePool"].energy_wh
        assert results["DynamoLLM"].average_servers < results["SinglePool"].average_servers

    def test_fluid_ordering_of_all_policies(self, day_bins, profile):
        runner = FluidRunner(profile=profile)
        results = runner.run_all(ALL_POLICIES, day_bins)
        assert results["DynamoLLM"].energy_wh <= min(
            results[name].energy_wh for name in results if name != "DynamoLLM"
        )
        assert results["ScaleFreq"].energy_wh < results["MultiPool"].energy_wh
        assert results["ScaleShard"].energy_wh < results["MultiPool"].energy_wh

    def test_fluid_carbon_positive(self, day_bins, profile):
        runner = FluidRunner(profile=profile)
        result = runner.run(DYNAMO_LLM, day_bins)
        assert result.carbon_kg() > 0.0


class TestLargeScaleApiPort:
    """Figure-15/16 drivers on the sink-backed fluid Scenario API."""

    RATE_SCALE = 10.0

    def test_figure15_matches_direct_fluid_runner(self):
        from repro.experiments.large_scale import figure15_daily_energy, week_bins
        from repro.policies import DYNAMO_LLM, SINGLE_POOL

        ported = figure15_daily_energy(rate_scale=self.RATE_SCALE)
        runner = FluidRunner()
        bins = week_bins("conversation", rate_scale=self.RATE_SCALE)
        day_bins = [b for b in bins if 86400.0 <= b.start_time < 2 * 86400.0]
        for name, spec in (("SinglePool", SINGLE_POOL), ("DynamoLLM", DYNAMO_LLM)):
            direct = runner.run(spec, day_bins)
            assert ported[name] == [
                (t, wh / 1000.0) for t, wh in direct.energy_timeline_wh
            ]

    def test_figure16_matches_direct_fluid_runner(self):
        from repro.experiments.large_scale import figure16_carbon, week_bins
        from repro.policies import DYNAMO_LLM, SINGLE_POOL

        ported = figure16_carbon(rate_scale=self.RATE_SCALE)
        runner = FluidRunner()
        bins = week_bins("conversation", rate_scale=self.RATE_SCALE)
        baseline = runner.run(SINGLE_POOL, bins)
        dynamo = runner.run(DYNAMO_LLM, bins)
        assert ported["weekly_tonnes"]["SinglePool"] == baseline.carbon_kg() / 1000.0
        assert ported["weekly_tonnes"]["DynamoLLM"] == dynamo.carbon_kg() / 1000.0
        assert 0.0 < ported["saving_fraction"] < 1.0
        from repro.metrics.carbon import CarbonIntensityTrace, carbon_timeline_kg_per_h

        intensity = CarbonIntensityTrace()
        assert ported["timeline_kg_per_h"]["SinglePool"] == carbon_timeline_kg_per_h(
            baseline.energy_timeline_wh, intensity
        )
        assert ported["timeline_kg_per_h"]["DynamoLLM"] == carbon_timeline_kg_per_h(
            dynamo.energy_timeline_wh, intensity
        )

    def test_figure15_sink_path_is_resumable(self, tmp_path):
        from repro.api import JsonlSink, read_jsonl
        from repro.experiments.large_scale import figure15_daily_energy

        path = tmp_path / "figure15.jsonl"
        sink = figure15_daily_energy(
            rate_scale=self.RATE_SCALE, sink=JsonlSink(str(path))
        )
        assert sink.report.ran == 2
        assert sorted(r["scenario"] for r in read_jsonl(str(path))) == [
            "DynamoLLM", "SinglePool",
        ]
        rerun = figure15_daily_energy(
            rate_scale=self.RATE_SCALE, sink=JsonlSink(str(path)), resume=True
        )
        assert rerun.report.skipped == 2 and rerun.report.ran == 0
        assert len(read_jsonl(str(path))) == 2

    def test_figure16_sink_path_is_resumable(self, tmp_path):
        from repro.api import JsonlSink, read_jsonl
        from repro.experiments.large_scale import figure16_carbon

        path = tmp_path / "figure16.jsonl"
        sink = figure16_carbon(rate_scale=self.RATE_SCALE, sink=JsonlSink(str(path)))
        assert sink.report.ran == 2
        rerun = figure16_carbon(
            rate_scale=self.RATE_SCALE, sink=JsonlSink(str(path)), resume=True
        )
        assert rerun.report.skipped == 2
        records = read_jsonl(str(path))
        assert len(records) == 2 and all(r["carbon_kg"] > 0 for r in records)

    def test_figure16_rejects_custom_intensity_with_sink(self, tmp_path):
        from repro.api import JsonlSink
        from repro.experiments.large_scale import figure16_carbon
        from repro.metrics.carbon import CarbonIntensityTrace

        with pytest.raises(ValueError, match="custom carbon intensity"):
            figure16_carbon(
                rate_scale=self.RATE_SCALE,
                intensity=CarbonIntensityTrace(),
                sink=JsonlSink(str(tmp_path / "fig16.jsonl")),
            )

    def test_weekly_policy_summaries_resume(self, tmp_path):
        from repro.api import JsonlSink, read_jsonl
        from repro.experiments.large_scale import weekly_policy_summaries
        from repro.policies import DYNAMO_LLM, SINGLE_POOL

        path = tmp_path / "week.jsonl"
        weekly_policy_summaries(
            rate_scale=self.RATE_SCALE, policies=(SINGLE_POOL,),
            sink=JsonlSink(str(path)),
        )
        sink = weekly_policy_summaries(
            rate_scale=self.RATE_SCALE, policies=(SINGLE_POOL, DYNAMO_LLM),
            sink=JsonlSink(str(path)), resume=True,
        )
        assert sink.report.skipped == 1 and sink.report.ran == 1
        assert sorted(r["scenario"] for r in read_jsonl(str(path))) == [
            "DynamoLLM", "SinglePool",
        ]

    def test_driver_resume_identity_encodes_parameters(self, tmp_path):
        """Rerunning a driver with different parameters against the same
        sink must rerun, not skip: the trace name (the resume identity
        for policy-name-keyed records) encodes rate scale and model."""
        from repro.api import JsonlSink
        from repro.experiments.large_scale import (
            figure16_carbon,
            weekly_policy_summaries,
        )
        from repro.policies import SINGLE_POOL

        path = tmp_path / "shared.jsonl"
        weekly_policy_summaries(
            rate_scale=10.0, policies=(SINGLE_POOL,), sink=JsonlSink(str(path))
        )
        # Different rate scale: nothing to skip.
        rerun = weekly_policy_summaries(
            rate_scale=20.0, policies=(SINGLE_POOL,),
            sink=JsonlSink(str(path)), resume=True,
        )
        assert rerun.report.skipped == 0 and rerun.report.ran == 1
        # Different driver (other config) sharing the file: also reruns.
        fig16 = figure16_carbon(
            rate_scale=10.0, sink=JsonlSink(str(path)), resume=True
        )
        assert fig16.report.skipped == 0 and fig16.report.ran == 2


class TestModelCatalog:
    def test_cluster_eval_accepts_model(self, tiny_trace, experiment_config):
        from repro.experiments.cluster_eval import run_cluster_evaluation
        from repro.policies import SINGLE_POOL

        summaries = run_cluster_evaluation(
            trace=tiny_trace, policies=(SINGLE_POOL,), model="Llama2-13B"
        )
        assert summaries["SinglePool"].energy_kwh > 0.0

    def test_model_catalog_energy_per_model_traces(self):
        from repro.api import TraceSpec
        from repro.experiments.sensitivity import model_catalog_energy

        tiny = {
            "Llama2-13B": TraceSpec(rate_scale=2.0, duration_s=90.0, seed=9),
            "Llama2-70B": TraceSpec(rate_scale=2.0, duration_s=90.0, seed=9),
        }
        results = model_catalog_energy(
            models=tuple(tiny), policies=("SinglePool",), traces=tiny
        )
        assert set(results) == set(tiny)
        for metrics in results.values():
            assert metrics["SinglePool"]["energy_kwh"] > 0.0

    def test_default_catalog_trace_scales_inverse_to_model(self):
        from repro.experiments.sensitivity import default_catalog_trace

        small = default_catalog_trace("Llama2-13B")
        large = default_catalog_trace("Falcon-180B")
        assert small.rate_scale > large.rate_scale

    def test_sweep_models_dimension_in_keys(self):
        from repro.api import TraceSpec, sweep

        grid = sweep(
            policies=("SinglePool",),
            traces=(TraceSpec(rate_scale=2.0, duration_s=60.0),),
            models=("Llama2-13B", "Llama2-70B"),
        )
        assert len(grid) == 2
        assert any("Llama2-13B" in key for key in grid.keys())

    def test_sample_replay_experiment(self):
        result = run_experiment("replay")
        assert result["requests"] > 0
        assert result["energy_kwh"] > 0.0
        assert result["carbon_kg"] > 0.0
