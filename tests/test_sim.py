"""Tests for the simulation kernel: clock, RNG streams, events, schedules."""

import pytest

from repro.sim.clock import ClockError, SimClock
from repro.sim.events import EventLog
from repro.sim.rng import RngStream, make_rng
from repro.sim.schedule import PeriodicAction, PeriodicScheduler


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock(time_step=1.0)
        assert clock.step == 0
        assert clock.now == 0.0

    def test_advance_single_step(self):
        clock = SimClock(time_step=0.5)
        assert clock.advance() == 0.5
        assert clock.step == 1

    def test_advance_many_steps(self):
        clock = SimClock(time_step=2.0)
        clock.advance(10)
        assert clock.now == 20.0

    def test_start_time_offset(self):
        clock = SimClock(time_step=1.0, start_time=100.0)
        clock.advance(5)
        assert clock.now == 105.0

    def test_negative_step_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-1)

    def test_invalid_time_step_rejected(self):
        with pytest.raises(ClockError):
            SimClock(time_step=0.0)

    def test_time_of_step(self):
        clock = SimClock(time_step=0.25)
        assert clock.time_of_step(8) == pytest.approx(2.0)

    def test_step_of_time(self):
        clock = SimClock(time_step=2.0)
        assert clock.step_of_time(5.0) == 2

    def test_step_of_time_before_start_rejected(self):
        clock = SimClock(start_time=10.0)
        with pytest.raises(ClockError):
            clock.step_of_time(5.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(7)
        clock.reset()
        assert clock.step == 0


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(1, "traffic")
        b = make_rng(1, "traffic")
        assert a.random() == b.random()

    def test_different_names_differ(self):
        a = make_rng(1, "traffic")
        b = make_rng(1, "lengths")
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        a = make_rng(1, "traffic")
        b = make_rng(2, "traffic")
        assert a.random() != b.random()

    def test_stream_child_is_deterministic(self):
        parent = RngStream(5, "trace")
        child_a = parent.child("coding")
        child_b = RngStream(5, "trace").child("coding")
        assert child_a.random() == child_b.random()

    def test_stream_helpers_return_expected_shapes(self):
        stream = RngStream(3, "test")
        assert stream.uniform(0, 1, size=4).shape == (4,)
        assert stream.poisson(2.0, size=3).shape == (3,)
        assert stream.integers(0, 10) < 10

    def test_choice_respects_options(self):
        stream = RngStream(3, "choice")
        values = {stream.choice(["a", "b"]) for _ in range(20)}
        assert values <= {"a", "b"}


class TestEventLog:
    def test_emit_and_count(self):
        log = EventLog()
        log.emit(1.0, "reshard", "pool:SS", tp=2)
        log.emit(2.0, "reshard", "pool:MM", tp=4)
        log.emit(3.0, "scale_out", "cluster")
        assert len(log) == 3
        assert log.count("reshard") == 2
        assert log.count() == 3

    def test_of_kind_filters(self):
        log = EventLog()
        log.emit(1.0, "a", "x")
        log.emit(2.0, "b", "x")
        assert [e.kind for e in log.of_kind("a")] == ["a"]

    def test_between_is_half_open(self):
        log = EventLog()
        for t in (0.0, 1.0, 2.0):
            log.emit(t, "tick", "clock")
        assert len(log.between(0.0, 2.0)) == 2

    def test_last_of_kind(self):
        log = EventLog()
        log.emit(1.0, "a", "x", value=1)
        log.emit(2.0, "b", "x")
        log.emit(3.0, "a", "x", value=2)
        assert log.last("a").payload["value"] == 2

    def test_last_returns_none_when_empty(self):
        assert EventLog().last() is None

    def test_payload_is_stored(self):
        log = EventLog()
        event = log.emit(0.0, "freq_change", "inst", frequency_mhz=1200)
        assert event.payload["frequency_mhz"] == 1200

    def test_clear(self):
        log = EventLog()
        log.emit(0.0, "x", "y")
        log.clear()
        assert len(log) == 0


class TestPeriodicScheduler:
    def test_action_fires_at_offset(self):
        fired = []
        action = PeriodicAction("a", period=10.0, callback=fired.append, offset=5.0)
        assert not action.maybe_fire(4.0)
        assert action.maybe_fire(5.0)
        assert fired == [5.0]

    def test_action_fires_once_per_period(self):
        fired = []
        action = PeriodicAction("a", period=10.0, callback=fired.append)
        action.maybe_fire(0.0)
        assert not action.maybe_fire(5.0)
        assert action.maybe_fire(10.0)
        assert fired == [0.0, 10.0]

    def test_action_catches_up_after_jump(self):
        fired = []
        action = PeriodicAction("a", period=1.0, callback=fired.append)
        action.maybe_fire(0.0)
        action.maybe_fire(5.5)
        # Only one (late) firing, but the next due time moves past now.
        assert fired == [0.0, 5.5]
        assert action.next_due == pytest.approx(6.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicAction("a", period=0.0, callback=lambda now: None)

    def test_scheduler_fires_in_registration_order(self):
        order = []
        scheduler = PeriodicScheduler()
        scheduler.add("first", 1.0, lambda now: order.append("first"))
        scheduler.add("second", 1.0, lambda now: order.append("second"))
        fired = scheduler.tick(0.0)
        assert fired == ["first", "second"]
        assert order == ["first", "second"]

    def test_scheduler_tick_reports_only_due_actions(self):
        scheduler = PeriodicScheduler()
        scheduler.add("fast", 1.0, lambda now: None)
        scheduler.add("slow", 100.0, lambda now: None, offset=100.0)
        assert scheduler.tick(1.0) == ["fast"]
