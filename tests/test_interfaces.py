"""The protocol boundary between core and cluster.

Three contracts, each pinned independently:

* **Runtime conformance** — every concrete ``repro.cluster`` class is an
  ``isinstance`` of the ``repro.core.interfaces`` protocol it implements
  (all protocols are ``@runtime_checkable``), including a negative case
  so the checks cannot pass vacuously.
* **Static conformance** — mypy accepts the assignment module
  ``tests/typing_conformance.py`` (skipped when mypy is absent; the CI
  lint job always runs it).
* **True inversion** — ``import repro.core`` must succeed without
  pulling any ``repro.cluster`` module into ``sys.modules``: the
  controllers depend on protocols, the concrete objects arrive by
  injection at the composition roots.  A lint rule can be appeased by
  moving an import; this test can only pass if the dependency is gone.

The deprecation shims for the names that moved down to
:mod:`repro.core.hw` are covered here too, in the style of
``tests/test_api.py::TestDeprecationShims``.
"""

import os
import subprocess
import sys
import warnings

import pytest

from repro.cluster import GPUCluster, InferenceInstance
from repro.cluster.compat import reset_deprecation_warnings
from repro.cluster.frequency import FrequencyController
from repro.cluster.instance import RequestState
from repro.cluster.vm import VMProvisioner
from repro.core import hw
from repro.core.interfaces import (
    BootCostModel,
    ClusterLike,
    FrequencyPlanLike,
    InstanceLike,
    QueuedRequestLike,
)
from repro.llm import LLAMA2_70B
from repro.workload import Request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")


def make_request():
    return Request(
        arrival_time=0.0,
        input_tokens=128,
        output_tokens=16,
        service="conversation",
    )


# ======================================================================
# Runtime conformance (@runtime_checkable isinstance)
# ======================================================================
class TestRuntimeConformance:
    def test_gpu_cluster_is_cluster_like(self):
        cluster = GPUCluster(LLAMA2_70B, initial_servers=1, max_servers=4)
        assert isinstance(cluster, ClusterLike)

    def test_inference_instance_is_instance_like(self):
        instance = InferenceInstance(LLAMA2_70B, tensor_parallelism=4)
        assert isinstance(instance, InstanceLike)

    def test_frequency_controller_is_frequency_plan_like(self):
        assert isinstance(FrequencyController(), FrequencyPlanLike)

    def test_vm_provisioner_is_boot_cost_model(self):
        assert isinstance(VMProvisioner(proactive=True), BootCostModel)

    def test_request_state_is_queued_request_like(self):
        state = RequestState(request=make_request(), enqueue_time=0.0)
        assert isinstance(state, QueuedRequestLike)

    def test_conformance_is_not_vacuous(self):
        """A structurally unrelated object must fail the same checks."""
        stranger = object()
        assert not isinstance(stranger, InstanceLike)
        assert not isinstance(stranger, ClusterLike)
        # ... and partial overlap is not enough: the frequency plan is
        # not an instance, even though both protocols are satisfied by
        # members of the same concrete family.
        assert not isinstance(FrequencyController(), InstanceLike)

    def test_cluster_exposes_instance_likes(self):
        """The protocol surface composes: a cluster's instances satisfy
        InstanceLike and their frequency satisfies FrequencyPlanLike."""
        cluster = GPUCluster(LLAMA2_70B, initial_servers=1, max_servers=4)
        created = cluster.create_instance(tensor_parallelism=4)
        assert created is not None
        for instance in cluster.instances.values():
            assert isinstance(instance, InstanceLike)
            assert isinstance(instance.frequency, FrequencyPlanLike)
        assert isinstance(cluster.provisioner, BootCostModel)


# ======================================================================
# Static conformance (mypy over the assignment module)
# ======================================================================
class TestStaticConformance:
    def test_typing_conformance_module_passes_mypy(self):
        pytest.importorskip("mypy")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "mypy",
                os.path.join("tests", "typing_conformance.py"),
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr


# ======================================================================
# True inversion: importing core must not load cluster
# ======================================================================
class TestDependencyInversion:
    def test_import_core_leaves_cluster_out_of_sys_modules(self):
        """Run in a fresh interpreter: this test process has long since
        imported both packages."""
        program = (
            "import sys\n"
            "import repro.core\n"
            "loaded = sorted(\n"
            "    name for name in sys.modules\n"
            "    if name == 'repro.cluster' or name.startswith('repro.cluster.')\n"
            ")\n"
            "assert not loaded, loaded\n"
            "assert 'repro.core.interfaces' in sys.modules\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", program],
            env={**os.environ, "PYTHONPATH": SRC_DIR},
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr

    def test_root_package_import_is_also_lazy(self):
        """`import repro` alone must not drag in any subpackage — the
        convenience re-exports resolve on first attribute access."""
        program = (
            "import sys\n"
            "import repro\n"
            "loaded = sorted(\n"
            "    name for name in sys.modules\n"
            "    if name.startswith('repro.')\n"
            ")\n"
            "assert not loaded, loaded\n"
            "cluster_cls = repro.GPUCluster\n"
            "assert 'repro.cluster' in sys.modules\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", program],
            env={**os.environ, "PYTHONPATH": SRC_DIR},
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr


# ======================================================================
# Deprecation shims for the names that moved down to repro.core.hw
# ======================================================================
class TestMovedNameShims:
    def test_frequency_constants_warn_and_match(self):
        import repro.cluster.frequency as frequency

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="repro.core.hw"):
            legacy = frequency.DEFAULT_SWITCH_OVERHEAD_S
        assert legacy == hw.DEFAULT_SWITCH_OVERHEAD_S
        with pytest.warns(DeprecationWarning, match="OPTIMIZED_SWITCH_OVERHEAD_S"):
            assert (
                frequency.OPTIMIZED_SWITCH_OVERHEAD_S
                == hw.OPTIMIZED_SWITCH_OVERHEAD_S
            )

    def test_vm_boot_names_warn_and_match(self):
        import repro.cluster.vm as vm

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="COLD_BOOT_BREAKDOWN_S"):
            assert vm.COLD_BOOT_BREAKDOWN_S == hw.COLD_BOOT_BREAKDOWN_S
        with pytest.warns(DeprecationWarning, match="WARM_BOOT_BREAKDOWN_S"):
            assert vm.WARM_BOOT_BREAKDOWN_S == hw.WARM_BOOT_BREAKDOWN_S
        with pytest.warns(DeprecationWarning, match="cold_boot_time_s"):
            assert vm.cold_boot_time_s() == hw.cold_boot_time_s()
        with pytest.warns(DeprecationWarning, match="warm_boot_time_s"):
            assert vm.warm_boot_time_s() == hw.warm_boot_time_s()

    def test_shims_warn_exactly_once_per_process(self):
        import repro.cluster.frequency as frequency

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            frequency.DEFAULT_SWITCH_OVERHEAD_S
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            frequency.DEFAULT_SWITCH_OVERHEAD_S
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_unknown_attribute_still_raises(self):
        import repro.cluster.frequency as frequency
        import repro.cluster.vm as vm

        with pytest.raises(AttributeError):
            frequency.NOT_A_REAL_NAME
        with pytest.raises(AttributeError):
            vm.NOT_A_REAL_NAME

    def test_canonical_home_is_unshimmed(self):
        """Reading the hw names never warns — only the legacy paths do."""
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert hw.DEFAULT_SWITCH_OVERHEAD_S == 0.065
            assert hw.OPTIMIZED_SWITCH_OVERHEAD_S == 0.005
            assert hw.cold_boot_time_s() == sum(hw.COLD_BOOT_BREAKDOWN_S.values())
            assert hw.warm_boot_time_s() == sum(hw.WARM_BOOT_BREAKDOWN_S.values())
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
