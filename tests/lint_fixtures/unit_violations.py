"""Deliberate unit-suffix violations (UNT family) — never imported."""


def record(power_w=0.0):
    return power_w


def mixed_arithmetic(step_w, cluster_kw, duration_s, window_ms):
    total = cluster_kw + step_w
    if duration_s > window_ms:
        total = cluster_kw - step_w
    return total


def mixed_assignment(energy_wh, budget_usd):
    total_kwh = energy_wh
    spend_kg = budget_usd
    return total_kwh, spend_kg


def mixed_accumulation(readings):
    total_j = 0.0
    for sample_kwh in readings:
        total_j += sample_kwh
    return total_j


def mixed_keyword(step_kw):
    return record(power_w=step_kw)


def conversions_are_fine(energy_wh, step_kwh, price_per_kwh):
    # Arithmetic expressions and calls have unknown units: explicit
    # conversions pass, and *_per_* rates are not quantities.
    energy_wh += step_kwh * 1000.0
    cost_usd = energy_wh / 1000.0 * price_per_kwh
    return cost_usd
