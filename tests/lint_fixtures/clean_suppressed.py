"""A clean fixture: real code patterns plus one suppressed violation."""

import time

from repro.sim.rng import RngStream


def stamp():
    # Harness-side timing, deliberately waived for this line.
    return time.time()  # repro-lint: disable=DET001


def seeded_draws(seed: int):
    stream = RngStream(seed, "fixture")
    return stream.uniform(0.0, 1.0)


def disciplined_units(total_wh, step_kwh, price_per_kwh):
    total_wh += step_kwh * 1000.0
    cost_usd = total_wh / 1000.0 * price_per_kwh
    return cost_usd
