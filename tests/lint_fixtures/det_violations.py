"""Deliberate determinism violations (DET family) — never imported.

These files are golden-test fixtures for ``repro lint``: the expected
(rule, line) pairs live in ``expected.json``.  The lint walker skips
``lint_fixtures/`` directories, so CI's ``repro lint src tests`` never
trips over them; the fixture tests pass the files explicitly.
"""

import datetime
import random
import time

import numpy as np
from numpy.random import default_rng


def wall_clock_seed():
    started = time.time()
    stamp = datetime.datetime.now()
    return started, stamp


def global_rng_draws():
    value = random.random()
    pick = random.choice([1, 2, 3])
    unseeded = random.Random()
    seeded = random.Random(7)  # instance-local + seeded: not a finding
    np.random.seed(1234)
    noise = np.random.uniform(0.0, 1.0)
    return value, pick, unseeded, seeded, noise


def bypassing_generators():
    stream = default_rng()
    other = np.random.default_rng(7)
    return stream, other
