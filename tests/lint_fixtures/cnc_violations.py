"""Deliberate concurrency violations (CNC family) — never imported."""

from concurrent.futures import ThreadPoolExecutor, as_completed


def collect(results, bucket=[]):
    bucket.extend(results)
    return bucket


def run_job(job, sink):
    summary = job()
    sink.write(job.key, summary)
    return summary


def sweep(jobs, sink):
    with ThreadPoolExecutor() as pool:
        lazy = [pool.submit(lambda: run_job(job, sink)) for job in jobs]
        futures = [pool.submit(run_job, job, sink) for job in jobs]
        for future in as_completed(futures):
            future.result()
    return lazy
