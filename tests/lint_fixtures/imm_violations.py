"""Deliberate immutability violations (IMM family) — never imported."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PinnedSpec:
    name: str
    budget_usd: float


def retarget(spec: PinnedSpec, scenario: "Scenario"):
    spec.name = "edited"
    scenario.policy = "Other"
    object.__setattr__(spec, "budget_usd", 0.0)
    fresh = PinnedSpec(name="x", budget_usd=1.0)
    fresh.budget_usd = 2.0
    return spec, scenario, fresh
