"""Accounting-layer class for the ARC004 fixture.

Defines a concrete class that foundation-layer code must not build
itself — see ``repro/core/arc_construct.py``.
"""


class GPUFleet:
    def __init__(self) -> None:
        self.servers = 0
