"""Deliberate violations: cross-package reach into private surface.

Importing a ``_private`` name — or a ``_private`` module — from another
top-level package bypasses its public API (ARC003).  The direction is
downward (api -> cluster), so ARC001 stays silent: privacy and layering
are independent contracts.
"""

import repro.cluster._impl
from repro.cluster.power_model import _internal_budget_w


def peek():
    return _internal_budget_w, repro.cluster._impl
