"""Deliberate violation: the other half of the import cycle (ARC002)."""

from repro.policies.arc_cycle_a import lead_a


def follow_b():
    return lead_a()
