"""Deliberate violation: half of a top-level import cycle (ARC002)."""

from repro.policies.arc_cycle_b import follow_b


def lead_a():
    return follow_b()
