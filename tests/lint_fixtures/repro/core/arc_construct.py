"""Deliberate violation: foundation-layer code constructing accounting.

``core`` (foundation) instantiating a ``cluster`` (accounting) class
hard-codes which implementation exists — ARC004.  The deferred import
that enables it is an upward dependency too — ARC001.
"""


def build_fleet():
    from repro.cluster.accounting import GPUFleet

    return GPUFleet()
