"""Deliberate violations: unit flow across call boundaries.

``record_power_kw(load_w)`` binds a watts name to a kilowatts parameter
(UNT004 — per-file UNT002 only sees keyword arguments); assigning
``step_energy_wh()``'s result to ``total_kwh`` mixes the function's
declared suffix with the target's (UNT005).
"""


def record_power_kw(power_kw):
    return power_kw


def step_energy_wh():
    return 1.0


def account(load_w):
    record_power_kw(load_w)
    total_kwh = step_energy_wh()
    return total_kwh
