"""Deliberate violation: foundation-layer code importing orchestration.

``sim`` (foundation) importing ``api`` (orchestration) couples the
simulator kernel to its consumers — ARC001.
"""

from repro.api.scenario import Scenario


def build():
    return Scenario
