"""Deliberate violation: sim code calling a laundered wall-clock helper.

Nothing in this file touches ``time`` — per-file DET001 sees a clean
module.  DET005 resolves ``elapsed_s`` through the import, finds it
tainted, and reports the full cross-file path down to ``time.time()``.
"""

from repro.sim.taint_helpers import elapsed_s


def step():
    return elapsed_s()
