"""Deliberate violations: wall-clock laundering helpers.

``_read_clock`` calls the sink directly (DET001); ``elapsed_s`` is the
wrapper that per-file analysis cannot see through — its call to
``_read_clock`` is flagged only by the call-graph taint rule (DET005).
"""

import time


def _read_clock():
    return time.time()


def elapsed_s():
    return _read_clock()
