"""Tests for the workload package: requests, classification, SLOs, traces."""

import pytest

from repro.workload.arrival import LOAD_LEVELS, PoissonArrivalGenerator, get_load_level
from repro.workload.classification import (
    DEFAULT_SCHEME,
    REQUEST_TYPE_NAMES,
    REQUEST_TYPES,
    ClassificationScheme,
    LengthClass,
    RequestType,
    classify_length,
    classify_request,
    equivalent_prompt_tokens,
    representative_lengths,
    scheme_for_pool_count,
    ttft_safety_factor,
    type_intensity,
)
from repro.workload.load_predictor import TemplateLoadPredictor
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.request import Request, RequestOutcome
from repro.workload.slo import DEFAULT_SLO_POLICY, SLO, SLOPolicy
from repro.workload.synthetic import (
    CODING_PROFILE,
    CONVERSATION_PROFILE,
    SyntheticTraceGenerator,
    make_day_trace,
    make_one_hour_trace,
    make_week_trace,
)
from repro.workload.traces import Trace, bin_trace, load_trace_csv, save_trace_csv, type_distribution


class TestRequest:
    def test_total_tokens(self):
        request = Request(arrival_time=0.0, input_tokens=100, output_tokens=50)
        assert request.total_tokens == 150

    def test_rejects_non_positive_lengths(self):
        with pytest.raises(ValueError):
            Request(arrival_time=0.0, input_tokens=0, output_tokens=10)
        with pytest.raises(ValueError):
            Request(arrival_time=0.0, input_tokens=10, output_tokens=0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Request(arrival_time=-1.0, input_tokens=10, output_tokens=10)

    def test_request_ids_unique(self):
        a = Request(arrival_time=0.0, input_tokens=1, output_tokens=1)
        b = Request(arrival_time=0.0, input_tokens=1, output_tokens=1)
        assert a.request_id != b.request_id

    def test_outcome_latency_metrics(self):
        request = Request(arrival_time=10.0, input_tokens=100, output_tokens=11)
        outcome = RequestOutcome(
            request=request,
            pool="MM",
            instance_id="i",
            start_time=10.0,
            first_token_time=10.5,
            completion_time=11.5,
        )
        assert outcome.ttft == pytest.approx(0.5)
        assert outcome.tbt == pytest.approx(0.1)
        assert outcome.latency == pytest.approx(1.5)
        assert outcome.meets(1.0, 0.2)
        assert not outcome.meets(0.4, 0.2)

    def test_squashed_outcome_never_meets_slo(self):
        request = Request(arrival_time=0.0, input_tokens=10, output_tokens=10)
        outcome = RequestOutcome(request, "p", "i", 0.0, 0.0, 0.0, squashed=True)
        assert not outcome.meets(10.0, 10.0)


class TestClassification:
    @pytest.mark.parametrize(
        "n_in,n_out,expected",
        [
            (100, 50, "SS"),
            (100, 200, "SM"),
            (100, 500, "SL"),
            (500, 50, "MS"),
            (500, 200, "MM"),
            (500, 500, "ML"),
            (2000, 50, "LS"),
            (2000, 200, "LM"),
            (2000, 500, "LL"),
        ],
    )
    def test_bucket_boundaries(self, n_in, n_out, expected):
        assert classify_length(n_in, n_out).name == expected

    def test_threshold_edges(self):
        assert classify_length(255, 99).name == "SS"
        assert classify_length(256, 100).name == "MM"
        assert classify_length(1024, 350).name == "LL"

    def test_nine_request_types(self):
        assert len(REQUEST_TYPES) == 9
        assert len(set(REQUEST_TYPE_NAMES)) == 9

    def test_classify_request_uses_true_lengths(self):
        request = Request(arrival_time=0.0, input_tokens=2000, output_tokens=400)
        assert classify_request(request).name == "LL"

    def test_request_type_roundtrip(self):
        for name in REQUEST_TYPE_NAMES:
            assert RequestType.from_name(name).name == name

    def test_from_name_rejects_bad_input(self):
        with pytest.raises(ValueError):
            RequestType.from_name("XXL")

    def test_size_rank_orders_ll_largest(self):
        ranks = {name: RequestType.from_name(name).size_rank for name in REQUEST_TYPE_NAMES}
        assert ranks["LL"] == max(ranks.values())
        assert ranks["SS"] == min(ranks.values())

    def test_representative_lengths_stay_in_bucket(self):
        for name in REQUEST_TYPE_NAMES:
            request_type = RequestType.from_name(name)
            n_in, n_out = representative_lengths(request_type)
            assert classify_length(n_in, n_out) == request_type

    def test_type_intensity_higher_for_decode_heavy_buckets(self):
        assert type_intensity("SL") > type_intensity("LS")
        assert type_intensity("SS") > 1.0

    def test_equivalent_tokens_identity(self):
        assert equivalent_prompt_tokens(100, "MM", "MM") == pytest.approx(100.0)

    def test_equivalent_tokens_scales_by_intensity(self):
        converted = equivalent_prompt_tokens(100, "SL", "LL")
        assert converted > 100.0  # SL prompt tokens carry more work than LL ones

    def test_ttft_safety_factor_at_least_one(self):
        for name in REQUEST_TYPE_NAMES:
            assert ttft_safety_factor(RequestType.from_name(name)) >= 1.0


class TestClassificationScheme:
    def test_default_scheme_has_nine_pools(self):
        assert DEFAULT_SCHEME.num_pools == 9

    def test_scheme_requires_full_cover(self):
        with pytest.raises(ValueError):
            ClassificationScheme(name="bad", groups=(("SS",),))

    def test_scheme_rejects_duplicates(self):
        groups = [[n] for n in REQUEST_TYPE_NAMES[:-1]] + [["SS"]]
        with pytest.raises(ValueError):
            ClassificationScheme(name="dup", groups=tuple(tuple(g) for g in groups))

    def test_pool_of_maps_members(self):
        scheme = scheme_for_pool_count(2)
        for name in REQUEST_TYPE_NAMES:
            pool = scheme.pool_of(RequestType.from_name(name))
            assert name in scheme.members(pool)

    def test_heaviest_member(self):
        scheme = scheme_for_pool_count(2)
        heavy_pool = scheme.pool_of(RequestType.from_name("LL"))
        assert scheme.heaviest_member(heavy_pool).name == "LL"

    def test_next_larger_pool_dominates(self):
        for name in REQUEST_TYPE_NAMES:
            pool = DEFAULT_SCHEME.pool_of(RequestType.from_name(name))
            target = DEFAULT_SCHEME.next_larger_pool(pool)
            source_type = DEFAULT_SCHEME.heaviest_member(pool)
            target_type = DEFAULT_SCHEME.heaviest_member(target)
            order = [LengthClass.SHORT, LengthClass.MEDIUM, LengthClass.LONG]
            assert order.index(target_type.input_class) >= order.index(source_type.input_class) or target == pool
            assert order.index(target_type.output_class) >= order.index(source_type.output_class) or target == pool

    def test_largest_pool_spills_to_itself(self):
        pool = DEFAULT_SCHEME.pool_of(RequestType.from_name("LL"))
        assert DEFAULT_SCHEME.next_larger_pool(pool) == pool

    @pytest.mark.parametrize("count", [2, 4, 6, 9])
    def test_scheme_for_pool_count(self, count):
        scheme = scheme_for_pool_count(count)
        assert scheme.num_pools == count

    def test_scheme_for_large_pool_count_falls_back(self):
        assert scheme_for_pool_count(16).num_pools == 9

    def test_scheme_for_unknown_count_raises(self):
        with pytest.raises(ValueError):
            scheme_for_pool_count(5)


class TestSLO:
    def test_table4_values(self):
        policy = DEFAULT_SLO_POLICY
        assert policy.ttft_slo(RequestType.from_name("SS")) == pytest.approx(0.250)
        assert policy.ttft_slo(RequestType.from_name("MM")) == pytest.approx(0.400)
        assert policy.ttft_slo(RequestType.from_name("LL")) == pytest.approx(2.000)
        assert policy.tbt_slo(RequestType.from_name("SL")) == pytest.approx(0.100)

    def test_ttft_depends_only_on_input_class(self):
        policy = DEFAULT_SLO_POLICY
        assert policy.ttft_slo(RequestType.from_name("LS")) == policy.ttft_slo(
            RequestType.from_name("LL")
        )

    def test_scaled_policy_relaxes_slo(self):
        relaxed = SLOPolicy(scale=2.0)
        assert relaxed.ttft_slo(RequestType.from_name("SS")) == pytest.approx(0.5)

    def test_slo_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            SLO(ttft_s=1.0, tbt_s=0.1).scaled(0.0)

    def test_is_met_by(self):
        slo = SLO(ttft_s=0.5, tbt_s=0.1)
        assert slo.is_met_by(0.4, 0.05)
        assert not slo.is_met_by(0.6, 0.05)
        assert not slo.is_met_by(0.4, 0.2)

    def test_policy_table_covers_all_types(self):
        assert set(DEFAULT_SLO_POLICY.table()) == set(REQUEST_TYPE_NAMES)


class TestTraces:
    def test_trace_sorts_requests(self):
        requests = [
            Request(arrival_time=5.0, input_tokens=1, output_tokens=1),
            Request(arrival_time=1.0, input_tokens=1, output_tokens=1),
        ]
        trace = Trace(name="t", requests=requests)
        assert trace.requests[0].arrival_time == 1.0

    def test_slice_rebases_times(self):
        trace = make_one_hour_trace(rate_scale=1.0, seed=1)
        part = trace.slice(60.0, 120.0)
        assert all(0.0 <= r.arrival_time < 60.0 for r in part.requests)

    def test_scaled_down_reduces_requests(self):
        trace = make_one_hour_trace(rate_scale=1.0, seed=1)
        half = trace.scaled(0.5)
        assert 0 < len(half) < len(trace)

    def test_scaled_up_increases_requests(self):
        trace = make_one_hour_trace(rate_scale=1.0, seed=1).slice(0, 300)
        double = trace.scaled(2.0)
        assert len(double) == 2 * len(trace)

    def test_scaled_rejects_non_positive(self):
        trace = make_one_hour_trace(rate_scale=1.0, seed=1)
        with pytest.raises(ValueError):
            trace.scaled(0.0)

    def test_bin_trace_conserves_requests(self):
        trace = make_one_hour_trace(rate_scale=1.0, seed=2).slice(0, 600)
        bins = bin_trace(trace, 60.0)
        assert sum(b.request_count for b in bins) == len(trace)

    def test_bin_trace_rejects_bad_bins(self):
        trace = make_one_hour_trace(rate_scale=1.0, seed=2).slice(0, 60)
        with pytest.raises(ValueError):
            bin_trace(trace, 0.0)

    def test_type_distribution_sums_to_one(self):
        trace = make_one_hour_trace(rate_scale=2.0, seed=3).slice(0, 600)
        distribution = type_distribution(trace)
        assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-6)

    def test_csv_roundtrip(self, tmp_path):
        trace = make_one_hour_trace(rate_scale=1.0, seed=4).slice(0, 120)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, str(path))
        loaded = load_trace_csv(str(path))
        assert len(loaded) == len(trace)
        assert loaded.requests[0].input_tokens == trace.requests[0].input_tokens


class TestSyntheticTraces:
    def test_one_hour_trace_duration(self):
        trace = make_one_hour_trace(rate_scale=1.0, seed=5)
        assert 3000.0 < trace.duration <= 3600.0

    def test_day_trace_duration(self):
        trace = make_day_trace(rate_scale=0.2, seed=5)
        assert trace.duration <= 86400.0
        assert trace.duration > 80000.0

    def test_deterministic_for_same_seed(self):
        a = make_one_hour_trace(rate_scale=1.0, seed=6)
        b = make_one_hour_trace(rate_scale=1.0, seed=6)
        assert len(a) == len(b)
        assert a.requests[0].input_tokens == b.requests[0].input_tokens

    def test_different_seeds_differ(self):
        a = make_one_hour_trace(rate_scale=1.0, seed=6)
        b = make_one_hour_trace(rate_scale=1.0, seed=7)
        assert len(a) != len(b) or a.requests[0].input_tokens != b.requests[0].input_tokens

    def test_rate_scale_scales_volume(self):
        small = make_one_hour_trace(rate_scale=1.0, seed=8)
        large = make_one_hour_trace(rate_scale=3.0, seed=8)
        assert len(large) > 2 * len(small)

    def test_coding_has_longer_inputs_than_conversation(self):
        coding = make_one_hour_trace("coding", rate_scale=1.0, seed=9)
        conversation = make_one_hour_trace("conversation", rate_scale=1.0, seed=9)
        coding_mean_in = sum(r.input_tokens for r in coding) / len(coding)
        conv_mean_in = sum(r.input_tokens for r in conversation) / len(conversation)
        assert coding_mean_in > conv_mean_in

    def test_conversation_has_longer_outputs_than_coding(self):
        coding = make_one_hour_trace("coding", rate_scale=1.0, seed=9)
        conversation = make_one_hour_trace("conversation", rate_scale=1.0, seed=9)
        coding_mean_out = sum(r.output_tokens for r in coding) / len(coding)
        conv_mean_out = sum(r.output_tokens for r in conversation) / len(conversation)
        assert conv_mean_out > coding_mean_out

    def test_week_bins_cover_week(self):
        bins = make_week_trace("coding", seed=10, bin_seconds=3600.0)
        assert len(bins) == 7 * 24

    def test_weekly_load_is_diurnal(self):
        profile = CODING_PROFILE
        midday = profile.load_shape(14 * 3600.0)
        midnight = profile.load_shape(3 * 3600.0)
        assert midday > 3 * midnight

    def test_weekend_load_lower_than_weekday(self):
        profile = CODING_PROFILE
        weekday_noon = profile.load_shape(1 * 86400.0 + 14 * 3600.0)  # Tuesday
        weekend_noon = profile.load_shape(5 * 86400.0 + 14 * 3600.0)  # Saturday
        assert weekend_noon < weekday_noon

    def test_conversation_milder_than_coding(self):
        conv = CONVERSATION_PROFILE
        coding = CODING_PROFILE
        conv_ratio = conv.load_shape(14 * 3600.0) / conv.load_shape(3 * 3600.0)
        coding_ratio = coding.load_shape(14 * 3600.0) / coding.load_shape(3 * 3600.0)
        assert coding_ratio > conv_ratio

    def test_generator_respects_token_caps(self):
        generator = SyntheticTraceGenerator(CODING_PROFILE, seed=11, rate_scale=2.0)
        trace = generator.generate_requests(600.0)
        assert all(r.input_tokens <= CODING_PROFILE.max_input_tokens for r in trace)
        assert all(r.output_tokens <= CODING_PROFILE.max_output_tokens for r in trace)


class TestArrivals:
    def test_load_levels_match_paper(self):
        assert get_load_level("low").prompt_tokens_per_second == 650.0
        assert get_load_level("medium").prompt_tokens_per_second == 2000.0
        assert get_load_level("high").prompt_tokens_per_second == 4000.0

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError):
            get_load_level("extreme")

    def test_poisson_trace_hits_target_load(self):
        generator = PoissonArrivalGenerator(seed=13)
        trace = generator.generate(LOAD_LEVELS["medium"], duration_s=600.0)
        observed = sum(r.input_tokens for r in trace) / 600.0
        assert observed == pytest.approx(2000.0, rel=0.25)

    def test_poisson_per_type_trace_stays_in_bucket(self):
        generator = PoissonArrivalGenerator(seed=13)
        trace = generator.generate(LOAD_LEVELS["low"], duration_s=300.0, request_type="MM")
        assert all(classify_request(r).name == "MM" for r in trace)

    def test_poisson_deterministic_per_seed(self):
        a = PoissonArrivalGenerator(seed=14).generate(LOAD_LEVELS["low"], 120.0)
        b = PoissonArrivalGenerator(seed=14).generate(LOAD_LEVELS["low"], 120.0)
        assert len(a) == len(b)


class TestPredictors:
    def test_perfect_predictor_always_correct(self):
        predictor = OutputLengthPredictor(accuracy=1.0)
        request = Request(arrival_time=0.0, input_tokens=500, output_tokens=500)
        assert predictor.predict(request).name == "ML"
        assert predictor.observed_accuracy == 1.0

    def test_accuracy_zero_never_correct(self):
        predictor = OutputLengthPredictor(accuracy=0.0, seed=3)
        request = Request(arrival_time=0.0, input_tokens=500, output_tokens=500)
        for _ in range(20):
            assert predictor.predict(request).output_class.value != "L"

    def test_input_class_never_perturbed(self):
        predictor = OutputLengthPredictor(accuracy=0.0, seed=3)
        request = Request(arrival_time=0.0, input_tokens=2000, output_tokens=500)
        for _ in range(10):
            assert predictor.predict(request).input_class.value == "L"

    def test_observed_accuracy_tracks_parameter(self):
        predictor = OutputLengthPredictor(accuracy=0.7, seed=5)
        request = Request(arrival_time=0.0, input_tokens=500, output_tokens=200)
        for _ in range(500):
            predictor.predict(request)
        assert predictor.observed_accuracy == pytest.approx(0.7, abs=0.08)

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            OutputLengthPredictor(accuracy=1.5)

    def test_error_is_bounded_to_neighbouring_class(self):
        predictor = OutputLengthPredictor(accuracy=0.0, seed=7)
        request = Request(arrival_time=0.0, input_tokens=100, output_tokens=50)  # SS
        for _ in range(20):
            predicted = predictor.predict(request)
            assert predicted.output_class.value in ("M",)  # S can only move to M

    def test_load_predictor_learns_template(self):
        predictor = TemplateLoadPredictor(blend=1.0, headroom=1.0)
        for week in range(3):
            predictor.observe(week * 604800.0 + 10 * 3600.0, "MM", 1000.0)
        forecast = predictor.predict(3 * 604800.0 + 10 * 3600.0, "MM")
        assert forecast == pytest.approx(1000.0)

    def test_load_predictor_headroom(self):
        predictor = TemplateLoadPredictor(blend=1.0, headroom=1.2)
        predictor.observe(10 * 3600.0, "MM", 1000.0)
        assert predictor.predict(10 * 3600.0, "MM") == pytest.approx(1200.0)

    def test_load_predictor_unknown_type_returns_zero(self):
        predictor = TemplateLoadPredictor()
        assert predictor.predict(0.0, "SS") == 0.0

    def test_load_predictor_blends_with_last_value(self):
        predictor = TemplateLoadPredictor(blend=0.5, headroom=1.0)
        predictor.observe(10 * 3600.0, "MM", 1000.0)
        predictor.observe(11 * 3600.0, "MM", 2000.0)
        forecast = predictor.predict(10 * 3600.0, "MM")
        # Template for slot 10h is 1000, last observation is 2000.
        assert 1000.0 < forecast < 2000.0

    def test_predict_all_covers_types(self):
        predictor = TemplateLoadPredictor()
        predictor.observe(0.0, "SS", 10.0)
        forecasts = predictor.predict_all(0.0, ["SS", "MM"])
        assert set(forecasts) == {"SS", "MM"}
