"""Trace-replay backends, streaming observers and replay edge cases."""

from __future__ import annotations

import math

import pytest

from repro.api import Scenario, TraceSpec, run_scenario, sweep
from repro.experiments.runner import ExperimentConfig
from repro.workload.load_predictor import TemplateLoadPredictor
from repro.workload.loaders import (
    load_azure_trace,
    load_request_csv,
    resample_trace,
    sample_trace_path,
)
from repro.workload.request import Request
from repro.workload.traces import Trace, TraceBin, bin_trace, save_trace_csv


# ----------------------------------------------------------------------
# Loaders
# ----------------------------------------------------------------------
class TestCsvLoader:
    def test_save_load_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(tiny_trace, str(path))
        loaded = load_request_csv(str(path))
        assert len(loaded) == len(tiny_trace)
        for original, restored in zip(tiny_trace.requests, loaded.requests):
            assert restored.arrival_time == pytest.approx(original.arrival_time, abs=1e-3)
            assert restored.input_tokens == original.input_tokens
            assert restored.output_tokens == original.output_tokens
            assert restored.service == original.service

    def test_round_trip_preserves_offered_load(self, tiny_trace, tmp_path):
        """Load -> bin -> replayed offered TPS matches the original trace."""
        path = tmp_path / "trace.csv"
        save_trace_csv(tiny_trace, str(path))
        loaded = load_request_csv(str(path))
        original_bins = bin_trace(tiny_trace, 30.0)
        replay_bins = bin_trace(loaded, 30.0)
        assert len(original_bins) == len(replay_bins)
        for original, replay in zip(original_bins, replay_bins):
            assert replay.tokens_per_second == pytest.approx(
                original.tokens_per_second, rel=1e-6
            )

    def test_flexible_column_names(self, tmp_path):
        path = tmp_path / "alt.csv"
        path.write_text("Timestamp,Input_Tokens,Output-Tokens\n0.5,100,20\n1.5,200,40\n")
        trace = load_request_csv(str(path))
        assert [r.input_tokens for r in trace.requests] == [100, 200]
        assert trace.requests[0].arrival_time == 0.5

    def test_zero_token_rows_skipped(self, tmp_path):
        path = tmp_path / "zeros.csv"
        path.write_text(
            "arrival_time,input_tokens,output_tokens\n"
            "0.0,100,10\n1.0,0,50\n2.0,50,0\n3.0,80,8\n"
        )
        trace = load_request_csv(str(path))
        assert len(trace) == 2  # zero-token invocations carry no work

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("arrival_time,input_tokens,output_tokens\n")
        with pytest.raises(ValueError, match="no usable trace rows"):
            load_request_csv(str(path))

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError, match="timestamp/input/output"):
            load_request_csv(str(path))


class TestAzureLoader:
    def test_sample_parses_and_rebases(self):
        trace = load_azure_trace(sample_trace_path("azure"))
        assert len(trace) > 1000
        assert trace.requests[0].arrival_time == 0.0  # rebased to first arrival
        assert trace.duration < 241.0

    def test_matches_csv_sample_modulo_rebase(self):
        csv_trace = load_request_csv(sample_trace_path("csv"))
        azure_trace = load_azure_trace(sample_trace_path("azure"))
        assert len(csv_trace) == len(azure_trace)
        offset = csv_trace.requests[0].arrival_time
        for csv_req, az_req in zip(csv_trace.requests, azure_trace.requests):
            assert az_req.arrival_time == pytest.approx(
                csv_req.arrival_time - offset, abs=2e-3
            )
            assert az_req.input_tokens == csv_req.input_tokens
            assert az_req.output_tokens == csv_req.output_tokens

    def test_duration_clipping(self):
        clipped = load_azure_trace(sample_trace_path("azure"), duration_s=60.0)
        assert clipped.duration <= 60.0
        assert len(clipped) > 0

    def test_resample_applied(self):
        base = load_azure_trace(sample_trace_path("azure"))
        doubled = load_azure_trace(sample_trace_path("azure"), resample=2.0)
        assert len(doubled) == 2 * len(base)

    def test_naive_timestamps_are_timezone_independent(self, tmp_path):
        """Naive datetimes parse as UTC: gaps must not depend on host TZ/DST."""
        import os
        import time

        path = tmp_path / "dst.csv"
        path.write_text(
            "TIMESTAMP,ContextTokens,GeneratedTokens\n"
            "2023-11-05 01:30:00.000000,100,10\n"  # US DST fall-back night
            "2023-11-05 01:59:00.000000,100,10\n"
            "2023-11-05 02:01:00.000000,100,10\n"
        )
        original_tz = os.environ.get("TZ")
        gaps = {}
        try:
            for tz in ("UTC", "America/New_York"):
                os.environ["TZ"] = tz
                time.tzset()
                from repro.workload.loaders import clear_trace_cache

                clear_trace_cache()
                trace = load_azure_trace(str(path))
                gaps[tz] = [r.arrival_time for r in trace.requests]
        finally:
            if original_tz is None:
                os.environ.pop("TZ", None)
            else:
                os.environ["TZ"] = original_tz
            time.tzset()
        assert gaps["UTC"] == gaps["America/New_York"] == [0.0, 1740.0, 1860.0]


class TestResample:
    def test_burst_preserving_upsample(self, tiny_trace):
        doubled = resample_trace(tiny_trace, 2.0)
        assert len(doubled) == 2 * len(tiny_trace)
        # Offered load per bin scales by the factor (bursts preserved).
        for original, scaled in zip(bin_trace(tiny_trace, 30.0), bin_trace(doubled, 30.0)):
            if original.request_count == 0:
                continue
            assert scaled.request_count == pytest.approx(
                2.0 * original.request_count, rel=0.01
            )

    def test_fractional_downsample_rate(self, tiny_trace):
        thinned = resample_trace(tiny_trace, 0.4)
        assert len(thinned) == pytest.approx(0.4 * len(tiny_trace), rel=0.02)
        # Local structure: each bin keeps roughly its share of requests.
        for original, scaled in zip(bin_trace(tiny_trace, 60.0), bin_trace(thinned, 60.0)):
            if original.request_count < 20:
                continue
            assert scaled.request_count == pytest.approx(
                0.4 * original.request_count, rel=0.25
            )

    def test_identity_and_validation(self, tiny_trace):
        assert resample_trace(tiny_trace, 1.0) is tiny_trace
        with pytest.raises(ValueError):
            resample_trace(tiny_trace, 0.0)


# ----------------------------------------------------------------------
# TraceSpec integration
# ----------------------------------------------------------------------
class TestFileTraceSpec:
    def test_csv_kind_builds(self):
        spec = TraceSpec(kind="csv", path=sample_trace_path("csv"), duration_s=120.0)
        trace = spec.build()
        assert trace.duration <= 120.0
        assert "sample_conversation.csv" in spec.key

    def test_azure_kind_builds(self):
        spec = TraceSpec(kind="azure", path=sample_trace_path("azure"), resample=0.5)
        trace = spec.build()
        assert len(trace) > 0
        assert "x0.5" in spec.key

    def test_path_required(self):
        with pytest.raises(ValueError, match="requires path"):
            TraceSpec(kind="csv")

    def test_same_basename_different_files_get_distinct_keys(self, tmp_path):
        rows = "arrival_time,input_tokens,output_tokens\n0.0,100,10\n"
        for sub in ("a", "b"):
            (tmp_path / sub).mkdir()
            (tmp_path / sub / "trace.csv").write_text(rows)
        grid = sweep(
            policies=("SinglePool",),
            traces=(
                TraceSpec(kind="csv", path=str(tmp_path / "a" / "trace.csv")),
                TraceSpec(kind="csv", path=str(tmp_path / "b" / "trace.csv")),
            ),
        )
        assert len(set(grid.keys())) == 2

    def test_azure_kind_respects_service(self):
        spec = TraceSpec(kind="azure", path=sample_trace_path("azure"), service="coding")
        trace = spec.build()
        assert all(r.service == "coding" for r in trace.requests)

    def test_grid_shares_one_file_trace(self):
        spec = TraceSpec(kind="csv", path=sample_trace_path("csv"), duration_s=60.0)
        grid = sweep(policies=("SinglePool", "DynamoLLM"), traces=(spec,))
        assert len(grid) == 2
        assert all("sample_conversation" in key for key in grid.keys())

    def test_sample_replay_end_to_end(self, experiment_config):
        spec = TraceSpec(kind="csv", path=sample_trace_path("csv"), duration_s=120.0)
        scenario = Scenario(policy="DynamoLLM", trace=spec, base_config=experiment_config)
        summary = run_scenario(scenario, lean=True)
        assert summary.latency.count == len(spec.build())
        assert summary.energy_kwh > 0.0

    def test_replay_reproduces_offered_tps(self):
        """The spec's built trace offers the file's load (binned TPS)."""
        spec = TraceSpec(kind="csv", path=sample_trace_path("csv"))
        direct = load_request_csv(sample_trace_path("csv"))
        built = spec.build()
        for file_bin, built_bin in zip(bin_trace(direct, 30.0), bin_trace(built, 30.0)):
            assert built_bin.tokens_per_second == pytest.approx(
                file_bin.tokens_per_second, rel=1e-9
            )


# ----------------------------------------------------------------------
# Streaming observers vs post-hoc accounting
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def replay_summaries(profile):
    config = ExperimentConfig(profile=profile, max_servers=16)
    spec = TraceSpec(rate_scale=3.0, duration_s=120.0, seed=9)
    return [
        run_scenario(Scenario(policy=policy, trace=spec, base_config=config))
        for policy in ("SinglePool", "DynamoLLM")
    ]


class TestStreamingObservers:
    def test_carbon_matches_post_hoc(self, replay_summaries):
        for summary in replay_summaries:
            assert summary.carbon is not None
            assert abs(summary.carbon.total_kg - summary.carbon_kg()) < 1e-9

    def test_cost_matches_post_hoc(self, replay_summaries):
        for summary in replay_summaries:
            assert summary.cost is not None
            assert abs(summary.cost.total_usd - summary.cost_usd()) < 1e-9
            assert abs(summary.cost.gpu_hours - summary.gpu_hours) < 1e-9
            assert abs(summary.cost.energy_kwh - summary.energy_kwh) < 1e-9

    def test_pool_slo_attainment_sums_to_global(self, replay_summaries):
        for summary in replay_summaries:
            counts = summary.pool_request_counts
            total = sum(counts.values())
            assert total == summary.latency.count
            weighted = sum(
                summary.pool_slo_attainment[pool] * count
                for pool, count in counts.items()
            )
            assert weighted / total == pytest.approx(summary.slo_attainment(), abs=1e-9)

    def test_carbon_timeline_binning(self, replay_summaries):
        summary = replay_summaries[0]
        binned = summary.carbon.binned_kg_per_h(60.0)
        assert binned
        total_from_bins = sum(kg_per_h * (60.0 / 3600.0) for _, kg_per_h in binned)
        assert total_from_bins == pytest.approx(summary.carbon.total_kg, rel=1e-9)

    def test_lean_compact_preserves_streaming_totals(self, experiment_config):
        from repro.api import runs

        spec = TraceSpec(rate_scale=3.0, duration_s=120.0, seed=9)
        scenario = Scenario(policy="DynamoLLM", trace=spec, base_config=experiment_config)
        full = run_scenario(scenario)
        (lean,) = runs([scenario], lean=True)
        assert lean.carbon.total_kg == full.carbon.total_kg
        assert lean.cost.total_usd == full.cost.total_usd
        assert lean.pool_slo_attainment == full.pool_slo_attainment
        # Post-hoc accounting still works on the compacted energy timeline.
        assert lean.carbon_kg() == pytest.approx(full.carbon_kg(), abs=1e-12)


# ----------------------------------------------------------------------
# Replay edge cases
# ----------------------------------------------------------------------
class TestReplayEdgeCases:
    def test_zero_duration_bin_properties(self):
        degenerate = TraceBin(
            start_time=0.0, duration=0.0, request_count=3,
            input_tokens=100, output_tokens=50,
        )
        assert degenerate.tokens_per_second == 0.0
        assert degenerate.prompt_tokens_per_second == 0.0
        assert degenerate.requests_per_second == 0.0

    def test_fluid_pool_loads_handle_zero_duration(self):
        from repro.experiments.fluid import FluidRunner

        runner = FluidRunner()
        degenerate = TraceBin(
            start_time=0.0, duration=0.0, request_count=1,
            input_tokens=100, output_tokens=50,
            count_by_type={"MM": 1}, tokens_by_type={"MM": 150},
        )
        assert runner._pool_loads(degenerate) == {}

    def test_empty_trace_has_zero_duration(self):
        trace = Trace(name="empty", requests=[])
        assert trace.duration == 0.0
        assert trace.mean_tokens_per_second == 0.0
        assert bin_trace(trace, 60.0)  # still produces a (single, empty) bin


class TestPredictorColdStart:
    def test_cold_slot_falls_back_to_last_value(self):
        predictor = TemplateLoadPredictor(blend=0.5, headroom=1.0)
        predictor.observe(10 * 3600.0, "MM", 1000.0)
        # A slot never observed (next day, different hour): last value, not 0.
        forecast = predictor.predict(30 * 3600.0, "MM")
        assert forecast == pytest.approx(1000.0)

    def test_empty_bins_do_not_seed_template_with_zero(self):
        predictor = TemplateLoadPredictor(blend=1.0, headroom=1.0)
        slot_time = 10 * 3600.0
        predictor.observe(slot_time, "MM", 0.0)  # cold empty bin
        predictor.observe(slot_time, "MM", 1000.0)
        # Pure-template prediction: the zero must not have dragged the mean.
        assert predictor.predict(slot_time, "MM") == pytest.approx(1000.0)

    def test_zero_observed_after_history_still_averages(self):
        predictor = TemplateLoadPredictor(blend=1.0, headroom=1.0)
        slot_time = 10 * 3600.0
        predictor.observe(slot_time, "MM", 1000.0)
        predictor.observe(slot_time, "MM", 0.0)  # genuine lull, counted
        assert predictor.predict(slot_time, "MM") == pytest.approx(500.0)

    def test_non_finite_and_negative_loads_dropped(self):
        predictor = TemplateLoadPredictor(blend=1.0, headroom=1.0)
        predictor.observe(0.0, "MM", float("nan"))
        predictor.observe(0.0, "MM", float("inf"))
        predictor.observe(0.0, "MM", -5.0)
        assert predictor.predict(0.0, "MM") == 0.0
        predictor.observe(0.0, "MM", 100.0)
        assert predictor.predict(0.0, "MM") == pytest.approx(100.0)
        assert math.isfinite(predictor.predict(0.0, "MM"))


# ----------------------------------------------------------------------
# CLI replay
# ----------------------------------------------------------------------
class TestCliReplay:
    def test_run_with_trace_file(self, capsys):
        from repro.__main__ import main as cli_main

        code = cli_main(
            [
                "run", "--trace-file", sample_trace_path("csv"),
                "--duration", "60", "--lean", "--json",
            ]
        )
        assert code == 0
        import json

        row = json.loads(capsys.readouterr().out)
        assert "sample_conversation.csv" in row["scenario"]
        assert row["energy_kwh"] > 0.0
        assert row["carbon_kg"] > 0.0
        assert row["cost_usd"] > 0.0
        assert row["pool_slo_attainment"]

    def test_run_azure_trace_file(self, capsys):
        from repro.__main__ import main as cli_main

        code = cli_main(
            [
                "run", "--trace", "azure", "--trace-file", sample_trace_path("azure"),
                "--duration", "60", "--lean", "--json",
            ]
        )
        assert code == 0

    def test_trace_file_required_for_file_kinds(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["run", "--trace", "csv"]) == 2
        assert "requires --trace-file" in capsys.readouterr().err

    def test_sweep_traces_dimension(self, capsys):
        from repro.__main__ import main as cli_main

        code = cli_main(
            [
                "sweep", "--policies", "SinglePool",
                "--traces", sample_trace_path("csv"),
                "--duration", "60", "--json",
            ]
        )
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 1
        assert "sample_conversation.csv" in payload["results"][0]["scenario"]
