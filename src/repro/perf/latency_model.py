"""Analytical latency and throughput model of a tensor-parallel instance.

The model captures the two computationally distinct phases of LLM
inference (Section II of the paper):

* **prefill** — compute-bound; time scales with the number of input
  tokens and inversely with the aggregate tensor-core throughput of the
  TP group, which scales with the GPU core frequency;
* **decode** — memory-bound; each iteration streams the weight shard
  plus the KV cache of the running batch from HBM, whose bandwidth is
  nearly frequency-independent, and pays a per-layer communication and
  scheduling overhead.

Under continuous batching, an instance receiving an open-loop load
settles into a steady state described by Little's law: the decode batch
grows until the instance generates tokens as fast as they are demanded.
The model solves for that steady state and derives TTFT, TBT, the KV
cache occupancy and the busy fractions, which together determine SLO
feasibility and (via :mod:`repro.perf.power_model`) power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, NamedTuple, Optional, Tuple

from repro.llm.catalog import ModelSpec
from repro.llm.gpu import GPUSpec, ServerSpec, DGX_H100
from repro.perf.config import InstanceConfig, WorkloadSlice


# ----------------------------------------------------------------------
# Tunable model constants (calibrated against the qualitative shapes of
# the paper's Tables I-III; see tests/test_perf_calibration.py).
# ----------------------------------------------------------------------
#: Fraction of peak tensor throughput achieved during prefill.
PREFILL_MFU = 0.38
#: Fraction of peak tensor throughput achieved by batched decode GEMMs.
DECODE_MFU = 0.55
#: Fixed CPU/scheduling overhead per decode iteration (seconds).
ITERATION_OVERHEAD_S = 0.004
#: Per-all-reduce latency (seconds); two all-reduces per layer.
ALLREDUCE_LATENCY_S = 8e-6
#: Fraction of the theoretical KV-cache capacity usable in practice.
KV_UTILIZATION = 0.90
#: Hard cap on concurrently running sequences (vLLM ``max_num_seqs``).
MAX_BATCH = 256
#: Busy-fraction ceiling beyond which the instance is considered unstable.
MAX_UTILIZATION = 0.95


@dataclass(frozen=True)
class OperatingPoint:
    """Steady-state behaviour of one instance configuration under load.

    ``feasible`` is False when the configuration cannot sustain the load
    at all (saturation, KV exhaustion); SLO compliance is checked
    separately by the energy model because SLOs depend on the request
    type and service.
    """

    config: InstanceConfig
    workload: WorkloadSlice
    feasible: bool
    reason: str
    prefill_time_s: float
    ttft_s: float
    tbt_s: float
    batch_size: float
    kv_tokens: float
    prefill_busy: float
    decode_busy: float
    utilization: float
    power_activity: float

    @property
    def total_busy(self) -> float:
        return self.prefill_busy + self.decode_busy


class _ConfigConstants(NamedTuple):
    """Per-(TP, frequency) quantities that depend only on the config.

    Every field is the *whole* value the corresponding elementary method
    used to compute, so cached lookups are bit-identical to recomputing:
    no constant folding or reassociation happens here, only memoisation.
    """

    prefill_rate: float
    weight_read_time: float
    decode_compute_time_per_token: float
    iteration_comm_time: float
    memory_bandwidth: float


class LatencyModel:
    """Latency/throughput model for one LLM on one server type."""

    def __init__(self, model: ModelSpec, server: ServerSpec = DGX_H100) -> None:
        self.model = model
        self.server = server
        self.gpu: GPUSpec = server.gpu
        # The instance step loop evaluates iteration_time once per decode
        # step per instance; everything except batch/context is a pure
        # function of (tp, frequency), so it is computed once per config.
        self._config_constants: Dict[Tuple[int, int], _ConfigConstants] = {}
        self._kv_capacity_by_tp: Dict[int, float] = {}
        self._kv_bytes_per_token: Optional[float] = None

    def _constants(self, config: InstanceConfig) -> _ConfigConstants:
        key = (config.tp, config.frequency_mhz)
        cached = self._config_constants.get(key)
        if cached is None:
            ratio = self._frequency_ratio(config)
            bandwidth = (
                self.gpu.memory_bandwidth_gbps * 1e9 * self._bandwidth_factor(ratio)
            )
            flops_per_token = 2.0 * self.model.active_params_b * 1e9
            cached = _ConfigConstants(
                prefill_rate=(
                    config.tp * self.gpu.peak_fp16_tflops * 1e12 * PREFILL_MFU * ratio
                )
                / flops_per_token,
                weight_read_time=self.model.active_weight_bytes / config.tp / bandwidth,
                decode_compute_time_per_token=flops_per_token
                / (config.tp * self.gpu.peak_fp16_tflops * 1e12 * DECODE_MFU * ratio),
                iteration_comm_time=(
                    0.0
                    if config.tp <= 1
                    else 2.0
                    * self.model.n_layers
                    * ALLREDUCE_LATENCY_S
                    * math.log2(config.tp)
                ),
                memory_bandwidth=bandwidth,
            )
            self._config_constants[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Elementary quantities
    # ------------------------------------------------------------------
    def _frequency_ratio(self, config: InstanceConfig) -> float:
        self.gpu.validate_frequency(config.frequency_mhz)
        return self.gpu.frequency_ratio(config.frequency_mhz)

    def _bandwidth_factor(self, frequency_ratio: float) -> float:
        """HBM bandwidth is nearly independent of the core clock."""
        return 0.85 + 0.15 * frequency_ratio

    def prefill_rate(self, config: InstanceConfig) -> float:
        """Sustained prefill throughput in prompt tokens per second."""
        return self._constants(config).prefill_rate

    def prefill_time(self, config: InstanceConfig, input_tokens: float) -> float:
        """Isolated prefill latency for a prompt of ``input_tokens``."""
        compute = input_tokens / self.prefill_rate(config)
        comm = self._prefill_comm_time(config, input_tokens)
        return compute + comm

    def _prefill_comm_time(self, config: InstanceConfig, input_tokens: float) -> float:
        if config.tp <= 1:
            return 0.0
        bytes_per_layer = (
            2.0  # two all-reduces per transformer layer
            * input_tokens
            * self.model.hidden_size
            * 2.0  # fp16 bytes
            * (config.tp - 1)
            / config.tp
        )
        transfer = bytes_per_layer / (self.gpu.nvlink_bandwidth_gbps * 1e9)
        latency = 2.0 * ALLREDUCE_LATENCY_S * math.log2(config.tp)
        return self.model.n_layers * (transfer + latency)

    def _iteration_comm_time(self, config: InstanceConfig) -> float:
        return self._constants(config).iteration_comm_time

    def weight_read_time(self, config: InstanceConfig) -> float:
        """Time to stream the per-GPU weight shard from HBM once."""
        return self._constants(config).weight_read_time

    def kv_read_time_per_token(self, config: InstanceConfig, context: float) -> float:
        """Marginal HBM time per running sequence (its KV cache) per iteration."""
        bandwidth = self._constants(config).memory_bandwidth
        kv_bytes = self._kv_bytes_per_token
        if kv_bytes is None:
            kv_bytes = self.model.kv_bytes_per_token()
            self._kv_bytes_per_token = kv_bytes
        return context * kv_bytes / config.tp / bandwidth

    def decode_compute_time_per_token(self, config: InstanceConfig) -> float:
        """Tensor-core time per generated token (matters only at huge batch)."""
        return self._constants(config).decode_compute_time_per_token

    def iteration_time(
        self, config: InstanceConfig, batch_size: float, context: float
    ) -> float:
        """Duration of one decode iteration with ``batch_size`` sequences."""
        constants = self._constants(config)
        batch = max(1.0, batch_size)
        memory = constants.weight_read_time + batch * self.kv_read_time_per_token(
            config, context
        )
        compute = batch * constants.decode_compute_time_per_token
        return max(memory, compute) + constants.iteration_comm_time + ITERATION_OVERHEAD_S

    def kv_capacity_tokens(self, config: InstanceConfig) -> float:
        """Usable KV-cache capacity (tokens of context) of the instance."""
        cached = self._kv_capacity_by_tp.get(config.tp)
        if cached is None:
            cached = self.model.kv_capacity_tokens(config.tp, self.server) * KV_UTILIZATION
            self._kv_capacity_by_tp[config.tp] = cached
        return cached

    def max_batch(self, config: InstanceConfig, context: float) -> float:
        """Maximum concurrent sequences permitted by KV memory and the seq cap."""
        if context <= 0:
            return float(MAX_BATCH)
        return min(float(MAX_BATCH), self.kv_capacity_tokens(config) / context)

    # ------------------------------------------------------------------
    # Steady-state operating point
    # ------------------------------------------------------------------
    def solve(self, config: InstanceConfig, workload: WorkloadSlice) -> OperatingPoint:
        """Solve the steady-state operating point of ``config`` under ``workload``."""
        self.server.validate_tensor_parallelism(config.tp)

        def infeasible(reason: str, **extra: float) -> OperatingPoint:
            return OperatingPoint(
                config=config,
                workload=workload,
                feasible=False,
                reason=reason,
                prefill_time_s=extra.get("prefill_time_s", float("inf")),
                ttft_s=float("inf"),
                tbt_s=float("inf"),
                batch_size=extra.get("batch_size", 0.0),
                kv_tokens=extra.get("kv_tokens", 0.0),
                prefill_busy=extra.get("prefill_busy", 1.0),
                decode_busy=extra.get("decode_busy", 1.0),
                utilization=1.0,
                power_activity=1.0,
            )

        if not self.model.fits(config.tp, self.server):
            return infeasible("weights do not fit at this tensor parallelism")

        context = workload.average_context
        prefill_time = self.prefill_time(config, workload.input_tokens)

        if workload.prompt_tokens_per_second <= 0:
            # Idle instance: trivially feasible, minimal batch.
            tbt = self.iteration_time(config, 1.0, context)
            return OperatingPoint(
                config=config,
                workload=workload,
                feasible=True,
                reason="idle",
                prefill_time_s=prefill_time,
                ttft_s=prefill_time,
                tbt_s=tbt,
                batch_size=0.0,
                kv_tokens=0.0,
                prefill_busy=0.0,
                decode_busy=0.0,
                utilization=0.0,
                power_activity=0.0,
            )

        arrival_rate = workload.arrival_rate
        decode_demand = workload.decode_tokens_per_second

        # Prefill busy fraction.
        prefill_busy = workload.prompt_tokens_per_second / self.prefill_rate(config)
        prefill_busy += arrival_rate * self._prefill_comm_time(config, workload.input_tokens)
        if prefill_busy >= MAX_UTILIZATION:
            return infeasible(
                "prefill saturates the instance",
                prefill_time_s=prefill_time,
                prefill_busy=prefill_busy,
            )

        # Decode steady state via Little's law:
        #   B = decode_demand * t_iter(B) / (1 - prefill_busy)
        # with t_iter(B) = t0 + B * t_kv in the memory-bound regime.
        residual = 1.0 - prefill_busy
        t_fixed = (
            self.weight_read_time(config)
            + self._iteration_comm_time(config)
            + ITERATION_OVERHEAD_S
        )
        t_kv = self.kv_read_time_per_token(config, context)
        t_compute = self.decode_compute_time_per_token(config)

        # Compute-throughput check: the marginal tensor-core time per token
        # must fit inside the residual capacity.
        if decode_demand * t_compute >= residual:
            return infeasible(
                "decode compute saturates the instance",
                prefill_time_s=prefill_time,
                prefill_busy=prefill_busy,
            )

        denominator = residual - decode_demand * t_kv
        if denominator <= 0:
            return infeasible(
                "decode memory bandwidth saturates the instance",
                prefill_time_s=prefill_time,
                prefill_busy=prefill_busy,
            )
        batch = decode_demand * t_fixed / denominator
        batch = max(batch, min(1.0, decode_demand * 1.0))

        # KV-cache feasibility.
        kv_tokens = batch * context
        if kv_tokens > self.kv_capacity_tokens(config) or batch > MAX_BATCH:
            return infeasible(
                "KV cache capacity exceeded",
                prefill_time_s=prefill_time,
                prefill_busy=prefill_busy,
                batch_size=batch,
                kv_tokens=kv_tokens,
            )

        iteration = self.iteration_time(config, batch, context)
        tbt = iteration / residual if batch >= 1.0 else iteration

        # Work-conserving utilization: how much of peak decode throughput is
        # consumed, measured against the largest batch the memory allows.
        capacity_batch = max(1.0, self.max_batch(config, context))
        capacity_iteration = self.iteration_time(config, capacity_batch, context)
        decode_capacity = capacity_batch / capacity_iteration * residual
        decode_utilization = min(1.0, decode_demand / decode_capacity) if decode_capacity > 0 else 1.0
        utilization = prefill_busy + decode_utilization * residual
        if utilization >= MAX_UTILIZATION:
            return infeasible(
                "instance utilization too high",
                prefill_time_s=prefill_time,
                prefill_busy=prefill_busy,
                batch_size=batch,
                kv_tokens=kv_tokens,
            )

        # TTFT: queueing delay grows as the instance approaches saturation.
        queue_factor = 1.0 + 0.5 * utilization / max(1e-6, 1.0 - utilization)
        ttft = prefill_time * queue_factor

        # Busy fraction actually spent generating tokens (decode iterations
        # run back to back whenever at least one sequence is active).
        if batch >= 1.0:
            decode_busy = residual
        else:
            decode_busy = decode_demand * iteration

        # Power activity: prefill is compute-intensive (full power), decode is
        # memory-bound and draws less, increasing with batch size.
        decode_power_factor = 0.35 + 0.55 * min(1.0, batch / 64.0)
        power_activity = min(1.0, prefill_busy + decode_busy * decode_power_factor)

        return OperatingPoint(
            config=config,
            workload=workload,
            feasible=True,
            reason="ok",
            prefill_time_s=prefill_time,
            ttft_s=ttft,
            tbt_s=tbt,
            batch_size=batch,
            kv_tokens=kv_tokens,
            prefill_busy=prefill_busy,
            decode_busy=decode_busy,
            utilization=utilization,
            power_activity=power_activity,
        )

    # ------------------------------------------------------------------
    # Capacity search helpers
    # ------------------------------------------------------------------
    def max_load(
        self,
        config: InstanceConfig,
        workload: WorkloadSlice,
        ttft_slo_s: Optional[float] = None,
        tbt_slo_s: Optional[float] = None,
        tolerance: float = 10.0,
    ) -> float:
        """Largest prompt-token load the configuration can sustain.

        Binary search over the offered load; SLO limits are optional
        (without them only stability/KV feasibility is required).
        """
        low, high = 0.0, 1e6
        probe = workload.with_load(high)
        if self._acceptable(config, probe, ttft_slo_s, tbt_slo_s):
            return high
        while high - low > tolerance:
            mid = (low + high) / 2.0
            if self._acceptable(config, workload.with_load(mid), ttft_slo_s, tbt_slo_s):
                low = mid
            else:
                high = mid
        return low

    def _acceptable(
        self,
        config: InstanceConfig,
        workload: WorkloadSlice,
        ttft_slo_s: Optional[float],
        tbt_slo_s: Optional[float],
    ) -> bool:
        point = self.solve(config, workload)
        if not point.feasible:
            return False
        if ttft_slo_s is not None and point.ttft_s > ttft_slo_s:
            return False
        if tbt_slo_s is not None and point.tbt_s > tbt_slo_s:
            return False
        return True
