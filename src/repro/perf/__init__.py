"""Analytical energy-performance models.

The paper builds per-model energy/performance profiles by measuring a
real DGX H100 server under controlled loads (Section IV-A).  This
package replaces the measurements with an analytical model of LLM
inference on tensor-parallel GPU groups:

* :mod:`repro.perf.latency_model` — prefill / decode latency, batching,
  and the feasible operating region of an instance configuration;
* :mod:`repro.perf.power_model` — GPU and instance power as a function
  of frequency (DVFS with a voltage floor) and utilisation;
* :mod:`repro.perf.energy_model` — per-request energy and SLO
  feasibility at an operating point (the data behind Tables I-III);
* :mod:`repro.perf.profile` — the profile object the controllers
  consult, with load interpolation (scipy ``interp1d``);
* :mod:`repro.perf.profiler` — offline sweep that generates profiles.
"""

from repro.perf.config import InstanceConfig, WorkloadSlice, TENSOR_PARALLELISMS
from repro.perf.latency_model import LatencyModel, OperatingPoint
from repro.perf.power_model import PowerModel
from repro.perf.energy_model import EnergyModel, EnergySample
from repro.perf.profile import EnergyPerformanceProfile, ProfileEntry
from repro.perf.profiler import Profiler

__all__ = [
    "InstanceConfig",
    "WorkloadSlice",
    "TENSOR_PARALLELISMS",
    "LatencyModel",
    "OperatingPoint",
    "PowerModel",
    "EnergyModel",
    "EnergySample",
    "EnergyPerformanceProfile",
    "ProfileEntry",
    "Profiler",
]
