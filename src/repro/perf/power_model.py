"""GPU and instance power model.

Power is modelled as an idle floor plus a dynamic component scaled by
the workload's *power activity* (how hard the silicon is driven) and by
the DVFS operating point.  Dynamic power follows the classic
``C * V^2 * f`` law; the supply voltage tracks frequency linearly down
to a voltage floor below which further frequency reduction no longer
reduces energy per operation (see :class:`repro.llm.gpu.GPUSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.gpu import GPUSpec, ServerSpec, DGX_H100


@dataclass
class PowerModel:
    """Computes GPU, instance and server power draw."""

    server: ServerSpec = DGX_H100

    @property
    def gpu(self) -> GPUSpec:
        return self.server.gpu

    # ------------------------------------------------------------------
    # Per-GPU power
    # ------------------------------------------------------------------
    def dynamic_scale(self, frequency_mhz: float) -> float:
        """Relative dynamic power at a frequency (1.0 at the max frequency)."""
        self.gpu.validate_frequency(frequency_mhz)
        ratio = self.gpu.frequency_ratio(frequency_mhz)
        voltage = self.gpu.voltage_ratio(frequency_mhz)
        reference_voltage = self.gpu.voltage_ratio(self.gpu.max_frequency_mhz)
        return (voltage ** 2 * ratio) / (reference_voltage ** 2 * 1.0)

    def gpu_power(self, frequency_mhz: float, activity: float) -> float:
        """Power of one GPU at the given frequency and activity in [0, 1]."""
        if not 0.0 <= activity <= 1.0 + 1e-9:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        activity = min(1.0, activity)
        dynamic_range = self.gpu.tdp_watts - self.gpu.idle_watts
        return self.gpu.idle_watts + dynamic_range * activity * self.dynamic_scale(frequency_mhz)

    def gpu_idle_power(self) -> float:
        """Power of an idle, initialised GPU."""
        return self.gpu.idle_watts

    # ------------------------------------------------------------------
    # Instance / server power
    # ------------------------------------------------------------------
    def host_share(self, gpus: int) -> float:
        """Host (CPU, fans, NICs) power attributed to ``gpus`` GPUs."""
        return self.server.host_idle_watts * gpus / self.server.gpus_per_server

    def instance_power(self, tensor_parallelism: int, frequency_mhz: float, activity: float) -> float:
        """Power of a TP group running at the given frequency and activity."""
        gpu_power = self.gpu_power(frequency_mhz, activity)
        return tensor_parallelism * gpu_power + self.host_share(tensor_parallelism)

    def idle_instance_power(self, tensor_parallelism: int) -> float:
        """Power of an instance holding weights but serving no requests."""
        return tensor_parallelism * self.gpu_idle_power() + self.host_share(tensor_parallelism)

    def idle_gpu_slot_power(self) -> float:
        """Power of a provisioned but unassigned GPU (plus host share)."""
        return self.gpu_idle_power() + self.host_share(1)

    def server_max_power(self) -> float:
        """Worst-case power of a fully-loaded server at maximum frequency."""
        return self.server.max_power_watts
