"""Energy-performance profiles consulted by the DynamoLLM controllers.

A profile is the output of the (offline) profiling phase: for every
request type, tensor parallelism and GPU frequency it stores the energy,
power, TTFT and TBT over a grid of load levels, plus the maximum load
that still meets the SLO.  At runtime the controllers interpolate
between profiled load levels — the paper uses SciPy's ``interp1d`` for
exactly this purpose (Section IV-E) — and never consult the underlying
analytical model directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.interpolate import interp1d

from repro.perf.config import InstanceConfig


@dataclass
class ProfileEntry:
    """Profiled behaviour of one (request type, TP, frequency) combination."""

    request_type: str
    tensor_parallelism: int
    frequency_mhz: int
    loads: Sequence[float]
    power_watts: Sequence[float]
    energy_per_request_wh: Sequence[float]
    ttft_s: Sequence[float]
    tbt_s: Sequence[float]
    max_load_slo: float
    _power_fn: Optional[interp1d] = field(default=None, init=False, repr=False)
    _energy_fn: Optional[interp1d] = field(default=None, init=False, repr=False)
    _ttft_fn: Optional[interp1d] = field(default=None, init=False, repr=False)
    _tbt_fn: Optional[interp1d] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        loads = np.asarray(self.loads, dtype=float)
        if loads.size < 2:
            raise ValueError("a profile entry needs at least two load points")
        if np.any(np.diff(loads) <= 0):
            raise ValueError("profile load points must be strictly increasing")

        def build(values: Sequence[float]) -> interp1d:
            return interp1d(
                loads,
                np.asarray(values, dtype=float),
                kind="linear",
                bounds_error=False,
                fill_value=(values[0], values[-1]),
            )

        self._power_fn = build(self.power_watts)
        self._energy_fn = build(self.energy_per_request_wh)
        self._ttft_fn = build(self.ttft_s)
        self._tbt_fn = build(self.tbt_s)

    @property
    def config(self) -> InstanceConfig:
        return InstanceConfig(self.tensor_parallelism, self.frequency_mhz)

    def supports(self, load: float) -> bool:
        """Whether the configuration meets the SLO at the given load."""
        return load <= self.max_load_slo

    def power_at(self, load: float) -> float:
        """Interpolated instance power (W) at the given prompt-token load."""
        return float(self._power_fn(max(0.0, load)))

    def energy_per_request_at(self, load: float) -> float:
        return float(self._energy_fn(max(0.0, load)))

    def ttft_at(self, load: float) -> float:
        return float(self._ttft_fn(max(0.0, load)))

    def tbt_at(self, load: float) -> float:
        return float(self._tbt_fn(max(0.0, load)))


class EnergyPerformanceProfile:
    """The full profile of one model on one server type.

    Profiles are shared across services using the same model and cached
    cluster-locally in the real system; here they are plain in-memory
    objects that can be pickled alongside experiment results.
    """

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        self._entries: Dict[Tuple[str, int, int], ProfileEntry] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_entry(self, entry: ProfileEntry) -> None:
        key = (entry.request_type, entry.tensor_parallelism, entry.frequency_mhz)
        self._entries[key] = entry

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def entry(
        self, request_type: str, tensor_parallelism: int, frequency_mhz: int
    ) -> ProfileEntry:
        key = (request_type, tensor_parallelism, frequency_mhz)
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"profile for {self.model_name} has no entry for "
                f"type={request_type} TP={tensor_parallelism} f={frequency_mhz}MHz"
            ) from None

    def has_entry(
        self, request_type: str, tensor_parallelism: int, frequency_mhz: int
    ) -> bool:
        return (request_type, tensor_parallelism, frequency_mhz) in self._entries

    def request_types(self) -> List[str]:
        return sorted({key[0] for key in self._entries})

    def tensor_parallelisms(self, request_type: str) -> List[int]:
        return sorted({key[1] for key in self._entries if key[0] == request_type})

    def frequencies(self, request_type: str, tensor_parallelism: int) -> List[int]:
        return sorted(
            {
                key[2]
                for key in self._entries
                if key[0] == request_type and key[1] == tensor_parallelism
            }
        )

    # ------------------------------------------------------------------
    # Queries used by the controllers
    # ------------------------------------------------------------------
    def max_load(
        self, request_type: str, tensor_parallelism: int, frequency_mhz: int
    ) -> float:
        """Maximum per-instance load meeting the SLO for this configuration."""
        return self.entry(request_type, tensor_parallelism, frequency_mhz).max_load_slo

    def power(
        self,
        request_type: str,
        tensor_parallelism: int,
        frequency_mhz: int,
        load: float,
    ) -> float:
        return self.entry(request_type, tensor_parallelism, frequency_mhz).power_at(load)

    def supports(
        self,
        request_type: str,
        tensor_parallelism: int,
        frequency_mhz: int,
        load: float,
    ) -> bool:
        return self.entry(request_type, tensor_parallelism, frequency_mhz).supports(load)

    def best_frequency(
        self,
        request_type: str,
        tensor_parallelism: int,
        load: float,
        frequencies: Optional[Iterable[int]] = None,
    ) -> Optional[int]:
        """Lowest-power SLO-compliant frequency for a TP degree and load.

        This is the instance-manager decision: filter out frequencies
        that violate the SLO at the current load, then pick the one that
        minimises power (equivalently energy, since the load is fixed).
        """
        if frequencies is None:
            frequencies = self.frequencies(request_type, tensor_parallelism)
        best: Optional[int] = None
        best_power = float("inf")
        for frequency in frequencies:
            if not self.has_entry(request_type, tensor_parallelism, frequency):
                continue
            entry = self.entry(request_type, tensor_parallelism, frequency)
            if not entry.supports(load):
                continue
            power = entry.power_at(load)
            if power < best_power:
                best_power = power
                best = frequency
        return best

    def instance_energy_rate(
        self,
        request_type: str,
        tensor_parallelism: int,
        frequency_mhz: int,
        load: float,
    ) -> float:
        """Instance power (W == J/s) when serving ``load``; inf if SLO-violating."""
        entry = self.entry(request_type, tensor_parallelism, frequency_mhz)
        if not entry.supports(load):
            return float("inf")
        return entry.power_at(load)
