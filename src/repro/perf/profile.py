"""Energy-performance profiles consulted by the DynamoLLM controllers.

A profile is the output of the (offline) profiling phase: for every
request type, tensor parallelism and GPU frequency it stores the energy,
power, TTFT and TBT over a grid of load levels, plus the maximum load
that still meets the SLO.  At runtime the controllers interpolate
between profiled load levels — the paper uses SciPy's ``interp1d`` for
exactly this purpose (Section IV-E) — and never consult the underlying
analytical model directly.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.config import InstanceConfig


def _interp_scalar(x: float, xp: List[float], fp: List[float]) -> float:
    """Scalar linear interpolation, bit-identical to ``np.interp``.

    Mirrors the exact float operations of numpy's compiled kernel
    (``arr_interp``): same clamping, same exact-knot short-circuit, and
    the same ``slope*(x - xp[j]) + fp[j]`` evaluation order — so results
    match ``float(np.interp(x, xp, fp))`` to the bit, at a fraction of
    the per-call overhead for scalar queries on the controller hot path.
    """
    n = len(xp)
    if x > xp[n - 1]:
        return fp[n - 1]
    if x < xp[0]:
        return fp[0]
    j = bisect_right(xp, x) - 1
    if j == n - 1:
        return fp[n - 1]
    xj = xp[j]
    if x == xj:
        return fp[j]
    slope = (fp[j + 1] - fp[j]) / (xp[j + 1] - xj)
    res = slope * (x - xj) + fp[j]
    if res != res:  # numpy's NaN recovery: grids may hold inf (SLO-violating)
        res = slope * (x - xp[j + 1]) + fp[j + 1]
        if res != res and fp[j] == fp[j + 1]:
            res = fp[j]
    return res


@dataclass
class ProfileEntry:
    """Profiled behaviour of one (request type, TP, frequency) combination."""

    request_type: str
    tensor_parallelism: int
    frequency_mhz: int
    loads: Sequence[float]
    power_watts: Sequence[float]
    energy_per_request_wh: Sequence[float]
    ttft_s: Sequence[float]
    tbt_s: Sequence[float]
    max_load_slo: float
    _load_grid: np.ndarray = field(
        default_factory=lambda: np.empty(0), init=False, repr=False
    )
    _power_grid: np.ndarray = field(
        default_factory=lambda: np.empty(0), init=False, repr=False
    )
    _energy_grid: np.ndarray = field(
        default_factory=lambda: np.empty(0), init=False, repr=False
    )
    _ttft_grid: np.ndarray = field(
        default_factory=lambda: np.empty(0), init=False, repr=False
    )
    _tbt_grid: np.ndarray = field(
        default_factory=lambda: np.empty(0), init=False, repr=False
    )
    _load_list: List[float] = field(default_factory=list, init=False, repr=False)
    _power_list: List[float] = field(default_factory=list, init=False, repr=False)
    _energy_list: List[float] = field(default_factory=list, init=False, repr=False)
    _ttft_list: List[float] = field(default_factory=list, init=False, repr=False)
    _tbt_list: List[float] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        loads = np.asarray(self.loads, dtype=float)
        if loads.size < 2:
            raise ValueError("a profile entry needs at least two load points")
        if np.any(np.diff(loads) <= 0):
            raise ValueError("profile load points must be strictly increasing")

        # ``np.interp`` over the raw grids is what SciPy's linear
        # ``interp1d`` evaluates to for float64 inputs (with the grid
        # endpoints as fill values); the lookups themselves go through
        # :func:`_interp_scalar`, which replays numpy's kernel on plain
        # floats — this sits on the controller hot path.
        self._load_grid = loads
        self._power_grid = np.asarray(self.power_watts, dtype=float)
        self._energy_grid = np.asarray(self.energy_per_request_wh, dtype=float)
        self._ttft_grid = np.asarray(self.ttft_s, dtype=float)
        self._tbt_grid = np.asarray(self.tbt_s, dtype=float)
        self._load_list = self._load_grid.tolist()
        self._power_list = self._power_grid.tolist()
        self._energy_list = self._energy_grid.tolist()
        self._ttft_list = self._ttft_grid.tolist()
        self._tbt_list = self._tbt_grid.tolist()

    @property
    def config(self) -> InstanceConfig:
        return InstanceConfig(self.tensor_parallelism, self.frequency_mhz)

    def supports(self, load: float) -> bool:
        """Whether the configuration meets the SLO at the given load."""
        return load <= self.max_load_slo

    def power_at(self, load: float) -> float:
        """Interpolated instance power (W) at the given prompt-token load."""
        return _interp_scalar(max(0.0, load), self._load_list, self._power_list)

    def energy_per_request_at(self, load: float) -> float:
        return _interp_scalar(max(0.0, load), self._load_list, self._energy_list)

    def ttft_at(self, load: float) -> float:
        return _interp_scalar(max(0.0, load), self._load_list, self._ttft_list)

    def tbt_at(self, load: float) -> float:
        return _interp_scalar(max(0.0, load), self._load_list, self._tbt_list)


class EnergyPerformanceProfile:
    """The full profile of one model on one server type.

    Profiles are shared across services using the same model and cached
    cluster-locally in the real system; here they are plain in-memory
    objects that can be pickled alongside experiment results.
    """

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        self._entries: Dict[Tuple[str, int, int], ProfileEntry] = {}
        # Memoised frequencies() results, invalidated whenever an entry
        # is added.  The controllers call frequencies() once per scaling
        # decision and the set-comprehension over every entry showed up
        # in campaign profiles.  Cached lists are shared: callers must
        # treat them as read-only (all in-repo callers do).
        self._frequency_cache: Dict[Tuple[str, int], List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_entry(self, entry: ProfileEntry) -> None:
        key = (entry.request_type, entry.tensor_parallelism, entry.frequency_mhz)
        self._entries[key] = entry
        self._frequency_cache.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def entry(
        self, request_type: str, tensor_parallelism: int, frequency_mhz: int
    ) -> ProfileEntry:
        key = (request_type, tensor_parallelism, frequency_mhz)
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"profile for {self.model_name} has no entry for "
                f"type={request_type} TP={tensor_parallelism} f={frequency_mhz}MHz"
            ) from None

    def has_entry(
        self, request_type: str, tensor_parallelism: int, frequency_mhz: int
    ) -> bool:
        return (request_type, tensor_parallelism, frequency_mhz) in self._entries

    def request_types(self) -> List[str]:
        return sorted({key[0] for key in self._entries})

    def tensor_parallelisms(self, request_type: str) -> List[int]:
        return sorted({key[1] for key in self._entries if key[0] == request_type})

    def frequencies(self, request_type: str, tensor_parallelism: int) -> List[int]:
        cache_key = (request_type, tensor_parallelism)
        cached = self._frequency_cache.get(cache_key)
        if cached is None:
            cached = sorted(
                {
                    key[2]
                    for key in self._entries
                    if key[0] == request_type and key[1] == tensor_parallelism
                }
            )
            self._frequency_cache[cache_key] = cached
        return cached

    # ------------------------------------------------------------------
    # Queries used by the controllers
    # ------------------------------------------------------------------
    def max_load(
        self, request_type: str, tensor_parallelism: int, frequency_mhz: int
    ) -> float:
        """Maximum per-instance load meeting the SLO for this configuration."""
        return self.entry(request_type, tensor_parallelism, frequency_mhz).max_load_slo

    def power(
        self,
        request_type: str,
        tensor_parallelism: int,
        frequency_mhz: int,
        load: float,
    ) -> float:
        return self.entry(request_type, tensor_parallelism, frequency_mhz).power_at(load)

    def supports(
        self,
        request_type: str,
        tensor_parallelism: int,
        frequency_mhz: int,
        load: float,
    ) -> bool:
        return self.entry(request_type, tensor_parallelism, frequency_mhz).supports(load)

    def best_frequency(
        self,
        request_type: str,
        tensor_parallelism: int,
        load: float,
        frequencies: Optional[Iterable[int]] = None,
    ) -> Optional[int]:
        """Lowest-power SLO-compliant frequency for a TP degree and load.

        This is the instance-manager decision: filter out frequencies
        that violate the SLO at the current load, then pick the one that
        minimises power (equivalently energy, since the load is fixed).
        """
        if frequencies is None:
            frequencies = self.frequencies(request_type, tensor_parallelism)
        best: Optional[int] = None
        best_power = float("inf")
        for frequency in frequencies:
            if not self.has_entry(request_type, tensor_parallelism, frequency):
                continue
            entry = self.entry(request_type, tensor_parallelism, frequency)
            if not entry.supports(load):
                continue
            power = entry.power_at(load)
            if power < best_power:
                best_power = power
                best = frequency
        return best

    def instance_energy_rate(
        self,
        request_type: str,
        tensor_parallelism: int,
        frequency_mhz: int,
        load: float,
    ) -> float:
        """Instance power (W == J/s) when serving ``load``; inf if SLO-violating."""
        entry = self.entry(request_type, tensor_parallelism, frequency_mhz)
        if not entry.supports(load):
            return float("inf")
        return entry.power_at(load)
