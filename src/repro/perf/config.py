"""Configuration and workload descriptors shared by the perf models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.llm.gpu import GPUSpec, H100
from repro.workload.classification import RequestType, representative_lengths

#: Tensor-parallel degrees DynamoLLM considers (Section II: TP2/TP4/TP8).
TENSOR_PARALLELISMS: Tuple[int, ...] = (2, 4, 8)


@dataclass(frozen=True)
class InstanceConfig:
    """A concrete instance configuration: TP degree and GPU frequency."""

    tensor_parallelism: int
    frequency_mhz: int

    def __post_init__(self) -> None:
        if self.tensor_parallelism < 1:
            raise ValueError(
                f"tensor parallelism must be >= 1, got {self.tensor_parallelism}"
            )
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_mhz}")

    @property
    def tp(self) -> int:
        return self.tensor_parallelism

    @property
    def name(self) -> str:
        return f"TP{self.tensor_parallelism}@{self.frequency_mhz}MHz"

    def with_frequency(self, frequency_mhz: int) -> "InstanceConfig":
        return InstanceConfig(self.tensor_parallelism, frequency_mhz)

    def with_tp(self, tensor_parallelism: int) -> "InstanceConfig":
        return InstanceConfig(tensor_parallelism, self.frequency_mhz)

    @staticmethod
    def highest_performance(gpu: GPUSpec = H100) -> "InstanceConfig":
        """The baseline configuration: TP8 at the maximum frequency."""
        return InstanceConfig(8, gpu.max_frequency_mhz)


@dataclass(frozen=True)
class WorkloadSlice:
    """The workload offered to a single instance.

    A slice is homogeneous: all requests share the same (average)
    input/output lengths — this is how the paper characterises energy
    (per request-type buckets) and how pools see their traffic.

    Attributes
    ----------
    input_tokens / output_tokens:
        Average prompt and generation lengths of the slice.
    prompt_tokens_per_second:
        Offered load in prompt tokens per second (the paper's TPS
        metric; Tables I and II use 650 / 2000 / 4000 TPS).
    slo_scale:
        SLO relaxation factor carried by the requests.
    """

    input_tokens: float
    output_tokens: float
    prompt_tokens_per_second: float
    slo_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("token lengths must be positive")
        if self.prompt_tokens_per_second < 0:
            raise ValueError("load must be non-negative")

    @property
    def arrival_rate(self) -> float:
        """Requests per second implied by the prompt-token load."""
        return self.prompt_tokens_per_second / self.input_tokens

    @property
    def decode_tokens_per_second(self) -> float:
        """Output tokens per second that must be generated at this load."""
        return self.arrival_rate * self.output_tokens

    @property
    def average_context(self) -> float:
        """Average context length during decode (prompt + half the output)."""
        return self.input_tokens + self.output_tokens / 2.0

    @classmethod
    def for_request_type(
        cls,
        request_type: RequestType,
        prompt_tokens_per_second: float,
        slo_scale: float = 1.0,
    ) -> "WorkloadSlice":
        """Workload slice using the bucket's representative lengths."""
        n_in, n_out = representative_lengths(request_type)
        return cls(
            input_tokens=float(n_in),
            output_tokens=float(n_out),
            prompt_tokens_per_second=prompt_tokens_per_second,
            slo_scale=slo_scale,
        )

    def with_load(self, prompt_tokens_per_second: float) -> "WorkloadSlice":
        return WorkloadSlice(
            input_tokens=self.input_tokens,
            output_tokens=self.output_tokens,
            prompt_tokens_per_second=prompt_tokens_per_second,
            slo_scale=self.slo_scale,
        )
