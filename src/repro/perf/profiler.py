"""Offline profiling phase (Section IV-A, "Generating LLM profiles").

When a service is on-boarded, DynamoLLM profiles its model by running
loads of different request lengths at different model parallelisms
(TP2/4/8) and GPU frequencies (800-1980 MHz in 200 MHz steps), and a few
load levels, then interpolates between them.  Here the measurements come
from the analytical :class:`~repro.perf.energy_model.EnergyModel`; the
resulting :class:`~repro.perf.profile.EnergyPerformanceProfile` has the
same shape a measured profile would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.llm.catalog import ModelSpec
from repro.llm.gpu import ServerSpec, DGX_H100
from repro.perf.config import InstanceConfig, TENSOR_PARALLELISMS
from repro.perf.energy_model import EnergyModel
from repro.perf.profile import EnergyPerformanceProfile, ProfileEntry
from repro.workload.classification import REQUEST_TYPE_NAMES, RequestType
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY

#: Default per-instance load grid in prompt tokens per second.
DEFAULT_LOAD_GRID: Tuple[float, ...] = (
    0.0,
    250.0,
    500.0,
    1000.0,
    1500.0,
    2000.0,
    3000.0,
    4000.0,
    6000.0,
    8000.0,
)


@dataclass
class Profiler:
    """Builds energy-performance profiles for a model.

    Parameters
    ----------
    model:
        Model to profile.
    server:
        Server type the profile applies to.
    slo_policy:
        SLO policy used to mark configurations (in)feasible per load.
    load_grid:
        Per-instance prompt-token loads to profile; behaviour between
        grid points is interpolated at query time.
    """

    model: ModelSpec
    server: ServerSpec = DGX_H100
    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY
    load_grid: Sequence[float] = DEFAULT_LOAD_GRID
    _cache: Dict[Tuple[str, float], EnergyPerformanceProfile] = field(
        default_factory=dict, init=False, repr=False
    )

    def build_profile(
        self,
        request_types: Optional[Iterable[str]] = None,
        tensor_parallelisms: Iterable[int] = TENSOR_PARALLELISMS,
        frequencies: Optional[Iterable[int]] = None,
        slo_scale: float = 1.0,
    ) -> EnergyPerformanceProfile:
        """Profile the model over request types, TP degrees and frequencies."""
        if request_types is None:
            request_types = REQUEST_TYPE_NAMES
        if frequencies is None:
            frequencies = self.server.gpu.frequency_levels()
        energy_model = EnergyModel(self.model, self.server, self.slo_policy)
        profile = EnergyPerformanceProfile(self.model.name)
        for type_name in request_types:
            request_type = RequestType.from_name(type_name)
            slo = energy_model._conservative_slo(request_type).scaled(slo_scale)
            for tp in tensor_parallelisms:
                for frequency in frequencies:
                    config = InstanceConfig(tp, int(frequency))
                    entry = self._profile_entry(
                        energy_model, request_type, config, slo, slo_scale
                    )
                    profile.add_entry(entry)
        return profile

    def cached_profile(self, slo_scale: float = 1.0) -> EnergyPerformanceProfile:
        """Build (or reuse) the default full profile for this model.

        Mirrors the paper's global profile repository: profiles are
        computed once per (model, SLO) pair and reused across services.
        """
        key = (self.model.name, slo_scale)
        if key not in self._cache:
            self._cache[key] = self.build_profile(slo_scale=slo_scale)
        return self._cache[key]

    # ------------------------------------------------------------------
    def _profile_entry(
        self,
        energy_model: EnergyModel,
        request_type: RequestType,
        config: InstanceConfig,
        slo,
        slo_scale: float,
    ) -> ProfileEntry:
        loads = list(self.load_grid)
        power = []
        energy = []
        ttft = []
        tbt = []
        max_supported = 0.0
        previous_feasible_power = None
        for load in loads:
            sample = energy_model.evaluate_request_type(
                request_type, config, load, slo_scale=1.0
            )
            point = sample.operating_point
            if point.feasible:
                power.append(sample.power_watts)
                energy.append(
                    sample.energy_per_request_wh if load > 0 else 0.0
                )
                ttft.append(point.ttft_s)
                tbt.append(point.tbt_s)
                previous_feasible_power = sample.power_watts
                if slo.is_met_by(point.ttft_s, point.tbt_s):
                    max_supported = max(max_supported, load)
            else:
                # Saturated: clamp to the last feasible values so the
                # interpolator stays monotone; the SLO limit already
                # excludes this region from being selected.
                fallback_power = (
                    previous_feasible_power
                    if previous_feasible_power is not None
                    else energy_model.power.instance_power(
                        config.tp, config.frequency_mhz, 1.0
                    )
                )
                power.append(fallback_power)
                energy.append(energy[-1] if energy else float("inf"))
                ttft.append(float("inf"))
                tbt.append(float("inf"))
        # Refine the SLO boundary between the last supported grid point and
        # the next one with a short binary search.
        max_load = energy_model.max_load(request_type, config, slo_scale=slo_scale)
        max_supported = max(max_supported, 0.0)
        max_load = max(max_load, max_supported)
        return ProfileEntry(
            request_type=request_type.name,
            tensor_parallelism=config.tp,
            frequency_mhz=config.frequency_mhz,
            loads=loads,
            power_watts=power,
            energy_per_request_wh=energy,
            ttft_s=ttft,
            tbt_s=tbt,
            max_load_slo=max_load,
        )


_PROFILE_CACHE: Dict[Tuple[str, float], EnergyPerformanceProfile] = {}


def get_default_profile(
    model: ModelSpec,
    server: ServerSpec = DGX_H100,
    slo_scale: float = 1.0,
) -> EnergyPerformanceProfile:
    """Module-level cached profile (the "global profile repository")."""
    key = (model.name, slo_scale)
    if key not in _PROFILE_CACHE:
        profiler = Profiler(model=model, server=server)
        _PROFILE_CACHE[key] = profiler.build_profile(slo_scale=slo_scale)
    return _PROFILE_CACHE[key]
