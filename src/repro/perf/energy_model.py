"""Per-request energy and SLO feasibility (the data behind Tables I-III).

The energy model combines the latency model (operating point under
load) with the power model (instance power at that operating point).
A configuration's energy for a workload slice is the full instance
power divided by the request completion rate, i.e. the energy the
instance spends per served request, including its idle share — the same
attribution the paper's watt-hour heat maps use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.llm.catalog import ModelSpec
from repro.llm.gpu import ServerSpec, DGX_H100
from repro.perf.config import InstanceConfig, WorkloadSlice, TENSOR_PARALLELISMS
from repro.perf.latency_model import LatencyModel, OperatingPoint
from repro.perf.power_model import PowerModel
from repro.workload.classification import RequestType
from repro.workload.slo import SLO, SLOPolicy, DEFAULT_SLO_POLICY


@dataclass(frozen=True)
class EnergySample:
    """Energy/performance of one configuration under one workload slice."""

    config: InstanceConfig
    workload: WorkloadSlice
    operating_point: OperatingPoint
    power_watts: float
    energy_per_request_wh: float
    meets_slo: bool
    slo: Optional[SLO]

    @property
    def feasible(self) -> bool:
        """Stable *and* SLO-compliant (what the paper's heat maps colour)."""
        return self.operating_point.feasible and self.meets_slo

    @property
    def ttft_s(self) -> float:
        return self.operating_point.ttft_s

    @property
    def tbt_s(self) -> float:
        return self.operating_point.tbt_s


class EnergyModel:
    """Evaluates instance configurations for a given model and workload."""

    def __init__(
        self,
        model: ModelSpec,
        server: ServerSpec = DGX_H100,
        slo_policy: SLOPolicy = DEFAULT_SLO_POLICY,
    ) -> None:
        self.model = model
        self.server = server
        self.slo_policy = slo_policy
        self.latency = LatencyModel(model, server)
        self.power = PowerModel(server)

    # ------------------------------------------------------------------
    # Single-point evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        config: InstanceConfig,
        workload: WorkloadSlice,
        slo: Optional[SLO] = None,
    ) -> EnergySample:
        """Evaluate a configuration; ``slo`` is optional (None = no SLO check)."""
        point = self.latency.solve(config, workload)
        if not point.feasible:
            power = self.power.instance_power(config.tp, config.frequency_mhz, 1.0)
            return EnergySample(
                config=config,
                workload=workload,
                operating_point=point,
                power_watts=power,
                energy_per_request_wh=float("inf"),
                meets_slo=False,
                slo=slo,
            )
        power = self.power.instance_power(
            config.tp, config.frequency_mhz, point.power_activity
        )
        arrival_rate = workload.arrival_rate
        if arrival_rate > 0:
            energy_wh = power / arrival_rate / 3600.0
        else:
            energy_wh = 0.0
        meets = True
        if slo is not None:
            effective = slo.scaled(workload.slo_scale) if workload.slo_scale != 1.0 else slo
            meets = effective.is_met_by(point.ttft_s, point.tbt_s)
        return EnergySample(
            config=config,
            workload=workload,
            operating_point=point,
            power_watts=power,
            energy_per_request_wh=energy_wh,
            meets_slo=meets,
            slo=slo,
        )

    def evaluate_request_type(
        self,
        request_type: RequestType,
        config: InstanceConfig,
        prompt_tokens_per_second: float,
        slo_scale: float = 1.0,
    ) -> EnergySample:
        """Evaluate a configuration for a request-type bucket at a load.

        The TTFT check is applied conservatively: the bucket's near-worst-
        case prompt (not just its representative one) must meet the SLO,
        which is expressed by tightening the TTFT target by the bucket's
        worst-case/representative prompt-length ratio.
        """
        workload = WorkloadSlice.for_request_type(
            request_type, prompt_tokens_per_second, slo_scale
        )
        slo = self._conservative_slo(request_type)
        return self.evaluate(config, workload, slo)

    def _conservative_slo(self, request_type: RequestType) -> SLO:
        from repro.workload.classification import ttft_safety_factor

        slo = self.slo_policy.slo_for(request_type)
        return SLO(ttft_s=slo.ttft_s / ttft_safety_factor(request_type), tbt_s=slo.tbt_s)

    # ------------------------------------------------------------------
    # Sweeps (used by the characterisation tables and the profiler)
    # ------------------------------------------------------------------
    def sweep_configs(
        self,
        request_type: RequestType,
        prompt_tokens_per_second: float,
        tensor_parallelisms: Iterable[int] = TENSOR_PARALLELISMS,
        frequencies: Optional[Iterable[int]] = None,
        slo_scale: float = 1.0,
    ) -> Dict[InstanceConfig, EnergySample]:
        """Evaluate every (TP, frequency) combination for a bucket and load."""
        if frequencies is None:
            frequencies = self.server.gpu.frequency_levels()
        samples: Dict[InstanceConfig, EnergySample] = {}
        for tp in tensor_parallelisms:
            for frequency in frequencies:
                config = InstanceConfig(tp, int(frequency))
                samples[config] = self.evaluate_request_type(
                    request_type, config, prompt_tokens_per_second, slo_scale
                )
        return samples

    def best_config(
        self,
        request_type: RequestType,
        prompt_tokens_per_second: float,
        tensor_parallelisms: Iterable[int] = TENSOR_PARALLELISMS,
        frequencies: Optional[Iterable[int]] = None,
        slo_scale: float = 1.0,
    ) -> Optional[EnergySample]:
        """The minimum-energy SLO-compliant configuration, or None."""
        samples = self.sweep_configs(
            request_type,
            prompt_tokens_per_second,
            tensor_parallelisms,
            frequencies,
            slo_scale,
        )
        feasible = [s for s in samples.values() if s.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda s: s.energy_per_request_wh)

    def feasible_configs(
        self,
        request_type: RequestType,
        prompt_tokens_per_second: float,
        slo_scale: float = 1.0,
    ) -> List[InstanceConfig]:
        """All SLO-compliant configurations for a bucket and load."""
        samples = self.sweep_configs(
            request_type, prompt_tokens_per_second, slo_scale=slo_scale
        )
        return [config for config, sample in samples.items() if sample.feasible]

    def max_load(
        self,
        request_type: RequestType,
        config: InstanceConfig,
        slo_scale: float = 1.0,
    ) -> float:
        """Largest sustainable prompt-token load for a bucket under SLO."""
        workload = WorkloadSlice.for_request_type(request_type, 1.0, slo_scale)
        slo = self._conservative_slo(request_type).scaled(slo_scale)
        return self.latency.max_load(
            config, workload, ttft_slo_s=slo.ttft_s, tbt_slo_s=slo.tbt_s
        )
