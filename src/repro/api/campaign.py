"""Manifest-driven campaigns: declarative 1000+-scenario sensitivity grids.

A *campaign* is a sweep described by data instead of code: a JSON (or
TOML) manifest names the grid dimensions (policies x traces x seeds x
SLO scales x accuracies x pool counts x models x backends), an output
file, shard/parallelism settings and a report recipe.  The
:class:`CampaignRunner` turns that manifest into the paper's
sensitivity studies end to end:

* **expand** — every grid block goes through
  :func:`repro.api.scenario.sweep`; the resulting
  :class:`~repro.api.scenario.ScenarioGrid` is validated up front
  (unknown manifest keys, fluid-vs-event dimension rules, duplicate
  scenario keys) so a 1000-scenario campaign cannot die on scenario 937;
* **shard** — :func:`shard_scenarios` deals the grid round-robin over
  ``n`` shards (disjoint, covering, stable across runs — pinned by the
  property suite), each shard streaming into its own
  :func:`shard_path` results file, so ``--shard i/n`` splits one
  campaign across processes or hosts with no coordination beyond the
  shared manifest;
* **run** — scenarios stream through the append-only
  :mod:`repro.api.sinks` with ``resume=True``: a killed shard rerun
  executes exactly its missing scenarios, and a results file written by
  a *different* grid raises
  :class:`~repro.api.sinks.ResultsMismatchError` instead of being
  silently mixed with this campaign's records;
* **status** — :meth:`CampaignRunner.status` rolls every discovered
  results file up into a :class:`CampaignStatus` (completed / failed /
  pending per shard and campaign-wide);
* **report** — :meth:`CampaignRunner.report` pivots the records into
  the paper's sensitivity tables (:class:`ReportTable`): one metric per
  cell, aggregated over the residual dimensions (seeds, usually) and
  optionally compared against a baseline policy (energy *savings* per
  scheme / SLO-scale / accuracy cell, as in Figures 11-16).

Surfaced as ``python -m repro campaign run|status|report|validate
<manifest>``; the bundled manifests under
:mod:`repro.experiments.manifests` reproduce the Figure 11/15/16 grids
plus wider-than-paper sensitivity campaigns.
"""

from __future__ import annotations

import glob
import json
import os
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.api.executor import SweepReport, runs
from repro.api.scenario import (
    BINNED_TRACE_KINDS,
    FILE_TRACE_KINDS,
    Scenario,
    ScenarioGrid,
    TraceSpec,
    sweep,
)
from repro.api.sinks import (
    InMemorySink,
    ResultsMismatchError,
    ResultSink,
    read_records,
    sink_for_path,
)


class ManifestError(ValueError):
    """A campaign manifest that cannot be parsed, validated or expanded.

    Always carries enough context (manifest name/path, grid block index,
    offending key) to fix the manifest without reading the code.
    """


# ----------------------------------------------------------------------
# Manifest schema
# ----------------------------------------------------------------------
#: Grid-block keys :func:`sweep` dimensions map onto, in expansion order.
GRID_KEYS = (
    "policies",
    "traces",
    "seeds",
    "slo_scales",
    "accuracies",
    "pool_counts",
    "models",
    "backends",
    "fluid_bin_s",
    "label",
)

#: Report pivot dimensions: Scenario fields plus the TraceSpec knobs the
#: paper sweeps.  ``trace`` is the full trace key; ``service`` /
#: ``rate_scale`` / ``seed`` / ``level`` are only available when the
#: scenario carries a :class:`TraceSpec` (concrete traces report None).
REPORT_DIMENSIONS = (
    "policy",
    "trace",
    "backend",
    "model",
    "slo_scale",
    "predictor_accuracy",
    "pool_count",
    "fluid_bin_s",
    "seed",
    "service",
    "rate_scale",
    "level",
    "label",
)

#: Ways a report cell can relate to the baseline cell.
COMPARE_MODES = ("raw", "saving", "ratio")

#: Ways a report cell aggregates its residual-dimension values.
AGGREGATES = ("mean", "sum", "min", "max")


@dataclass(frozen=True)
class ReportSpec:
    """How :meth:`CampaignRunner.report` pivots records into a table.

    ``value`` names a numeric record column (``energy_kwh``,
    ``carbon_kg``, ``slo_attainment``, ...); ``rows`` / ``cols`` name
    :data:`REPORT_DIMENSIONS` that span the table; every remaining
    dimension (seeds, usually) is aggregated away per cell with
    ``aggregate``.  ``compare="saving"`` / ``"ratio"`` divides each cell
    by the matching cell of the ``baseline`` policy — ``saving`` is the
    paper's ``1 - value/baseline``.
    """

    value: str = "energy_kwh"
    rows: Tuple[str, ...] = ("policy",)
    cols: Tuple[str, ...] = ()
    compare: str = "raw"
    baseline: Optional[str] = None
    aggregate: str = "mean"

    def __post_init__(self) -> None:
        for dim in tuple(self.rows) + tuple(self.cols):
            if dim not in REPORT_DIMENSIONS:
                raise ManifestError(
                    f"unknown report dimension {dim!r}; known dimensions: "
                    + ", ".join(REPORT_DIMENSIONS)
                )
        duplicated = set(self.rows) & set(self.cols)
        if duplicated:
            raise ManifestError(
                f"report dimension(s) {sorted(duplicated)} appear in both "
                "rows and cols"
            )
        if self.compare not in COMPARE_MODES:
            raise ManifestError(
                f"unknown report compare mode {self.compare!r}; known: "
                + ", ".join(COMPARE_MODES)
            )
        if self.aggregate not in AGGREGATES:
            raise ManifestError(
                f"unknown report aggregate {self.aggregate!r}; known: "
                + ", ".join(AGGREGATES)
            )
        if self.compare != "raw" and not self.baseline:
            raise ManifestError(
                f"report compare={self.compare!r} needs a baseline policy "
                "(report.baseline)"
            )


@dataclass(frozen=True)
class CampaignManifest:
    """One parsed campaign manifest (see :func:`load_manifest`).

    ``grids`` holds the raw grid blocks — expansion is deferred to
    :func:`expand_manifest` so a manifest can be loaded, listed and
    introspected cheaply.  ``base_dir`` anchors relative trace paths
    (the manifest's own directory); ``output`` is resolved against the
    *working* directory, because bundled manifests live inside the
    installed package.
    """

    name: str
    grids: Tuple[Mapping[str, object], ...]
    output: str
    description: str = ""
    workers: Optional[int] = None
    mode: str = "thread"
    shards: int = 1
    lean: bool = True
    report: ReportSpec = field(default_factory=ReportSpec)
    base_dir: Optional[str] = None
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ManifestError("manifest needs a non-empty string 'name'")
        if not self.grids:
            raise ManifestError(
                f"manifest {self.name!r} describes no grid — add a 'grid' "
                "object or a 'grids' list"
            )
        try:
            # Validates the extension without touching the filesystem.
            sink_for_path(self.output)
        except ValueError as error:
            raise ManifestError(
                f"manifest {self.name!r}: bad output {self.output!r}: {error}"
            ) from None
        if self.mode not in ("thread", "process"):
            raise ManifestError(
                f"manifest {self.name!r}: unknown execution mode {self.mode!r}; "
                "use 'thread' or 'process'"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ManifestError(
                f"manifest {self.name!r}: shards must be a positive integer, "
                f"got {self.shards!r}"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ManifestError(
                f"manifest {self.name!r}: workers must be a positive integer "
                f"or null, got {self.workers!r}"
            )


_EXECUTION_KEYS = ("workers", "mode", "shards", "lean")
_TOP_LEVEL_KEYS = ("name", "description", "grid", "grids", "output", "execution", "report")


def manifest_from_dict(
    data: Mapping[str, object],
    source: Optional[str] = None,
    base_dir: Optional[str] = None,
) -> CampaignManifest:
    """Build a validated :class:`CampaignManifest` from parsed data.

    Unknown keys raise :class:`ManifestError` — a declarative layer that
    ignored typos (``accuracys``, ``slo_scale``) would silently run the
    wrong grid.
    """
    where = source or "<manifest>"
    if not isinstance(data, Mapping):
        raise ManifestError(f"{where}: manifest must be a mapping/object")
    unknown = set(data) - set(_TOP_LEVEL_KEYS)
    if unknown:
        raise ManifestError(
            f"{where}: unknown manifest key(s) {sorted(unknown)}; known keys: "
            + ", ".join(_TOP_LEVEL_KEYS)
        )
    if "grid" in data and "grids" in data:
        raise ManifestError(f"{where}: give either 'grid' or 'grids', not both")
    raw_grids = data.get("grids", [data["grid"]] if "grid" in data else [])
    if isinstance(raw_grids, Mapping):
        raw_grids = [raw_grids]
    grids: List[Mapping[str, object]] = []
    for index, block in enumerate(raw_grids):
        if not isinstance(block, Mapping):
            raise ManifestError(f"{where}: grid block {index} must be a mapping")
        unknown = set(block) - set(GRID_KEYS)
        if unknown:
            raise ManifestError(
                f"{where}: grid block {index} has unknown key(s) "
                f"{sorted(unknown)}; known keys: " + ", ".join(GRID_KEYS)
            )
        for key, value in block.items():
            # A scalar where a list belongs either iterates per
            # character ("DynamoLLM" -> policy 'D') or dies with
            # "'int' object is not iterable"; name the fix instead of
            # surfacing the shrapnel.  fluid_bin_s and label are the
            # schema's only scalar keys.
            if key not in ("fluid_bin_s", "label") and not isinstance(
                value, (list, tuple)
            ):
                raise ManifestError(
                    f"{where}: grid block {index}: {key!r} must be a "
                    f"list, got {value!r} — write \"{key}\": [{value!r}]"
                )
        grids.append(dict(block))
    execution = data.get("execution", {})
    if not isinstance(execution, Mapping):
        raise ManifestError(f"{where}: 'execution' must be a mapping")
    unknown = set(execution) - set(_EXECUTION_KEYS)
    if unknown:
        raise ManifestError(
            f"{where}: unknown execution key(s) {sorted(unknown)}; known "
            "keys: " + ", ".join(_EXECUTION_KEYS)
        )
    report_data = data.get("report", {})
    if not isinstance(report_data, Mapping):
        raise ManifestError(f"{where}: 'report' must be a mapping")
    for key in ("rows", "cols"):
        if isinstance(report_data.get(key), str):
            # tuple("policy") would expand to per-character "dimensions".
            raise ManifestError(
                f"{where}: report {key!r} must be a list of dimension "
                f"names, got the string {report_data[key]!r} — write "
                f'"{key}": [{report_data[key]!r}]'
            )
    try:
        report = ReportSpec(
            value=report_data.get("value", "energy_kwh"),
            rows=tuple(report_data.get("rows", ("policy",))),
            cols=tuple(report_data.get("cols", ())),
            compare=report_data.get("compare", "raw"),
            baseline=report_data.get("baseline"),
            aggregate=report_data.get("aggregate", "mean"),
        )
    except TypeError as error:
        raise ManifestError(f"{where}: bad report spec: {error}") from None
    unknown = set(report_data) - {
        "value", "rows", "cols", "compare", "baseline", "aggregate"
    }
    if unknown:
        raise ManifestError(
            f"{where}: unknown report key(s) {sorted(unknown)}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ManifestError(f"{where}: manifest needs a non-empty string 'name'")
    output = data.get("output", f"{name}.jsonl")
    if not isinstance(output, str):
        raise ManifestError(f"{where}: 'output' must be a string path")
    return CampaignManifest(
        name=name,
        description=str(data.get("description", "")),
        grids=tuple(grids),
        output=output,
        workers=execution.get("workers"),
        mode=execution.get("mode", "thread"),
        shards=execution.get("shards", 1),
        lean=bool(execution.get("lean", True)),
        report=report,
        base_dir=base_dir,
        source=source,
    )


def _open_manifest(path: str, mode: str = "r", **kwargs):
    """Open a manifest file, normalising raw OSError into ManifestError.

    The CLI shows ValueError text without a traceback, so the message
    must name the offending path and say what to do.
    """
    try:
        return open(path, mode, **kwargs)
    except FileNotFoundError:
        raise ManifestError(
            f"manifest {path!r} does not exist — check the path"
        ) from None
    except OSError as error:
        reason = error.strerror or str(error)
        raise ManifestError(
            f"cannot read manifest {path!r} ({reason}) — check the path "
            "points at a readable .json or .toml file"
        ) from None


def load_manifest(path: str) -> CampaignManifest:
    """Parse a campaign manifest from a ``.json`` or ``.toml`` file."""
    lowered = path.lower()
    if lowered.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11
            raise ManifestError(
                f"{path}: TOML manifests need Python 3.11+ (tomllib); "
                "use the JSON form on older interpreters"
            ) from None
        with _open_manifest(path, "rb") as handle:
            try:
                data = tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise ManifestError(f"{path}: invalid TOML: {error}") from None
    elif lowered.endswith(".json"):
        with _open_manifest(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise ManifestError(f"{path}: invalid JSON: {error}") from None
    else:
        raise ManifestError(
            f"cannot infer manifest format from {path!r}; use a .json or "
            ".toml extension"
        )
    return manifest_from_dict(
        data, source=path, base_dir=os.path.dirname(os.path.abspath(path))
    )


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def _trace_from_spec(
    spec: object, base_dir: Optional[str], where: str
) -> TraceSpec:
    if isinstance(spec, TraceSpec):
        return spec
    if not isinstance(spec, Mapping):
        raise ManifestError(
            f"{where}: each trace must be a mapping of TraceSpec fields, "
            f"got {spec!r}"
        )
    fields = dict(spec)
    path = fields.get("path")
    if path and base_dir and not os.path.isabs(path):
        # Trace files ship next to the manifest that names them.
        fields["path"] = os.path.join(base_dir, path)
    if fields.get("path") and not os.path.exists(fields["path"]):
        # TraceSpec reads the file lazily; a campaign validates it now —
        # a 1000-scenario run must not die on the first file scenario.
        raise ManifestError(
            f"{where}: bad trace {dict(spec)!r}: trace file "
            f"{fields['path']!r} does not exist (relative paths resolve "
            "against the manifest's directory)"
        )
    try:
        return TraceSpec(**fields)
    except (TypeError, ValueError) as error:
        raise ManifestError(f"{where}: bad trace {dict(spec)!r}: {error}") from None


def _expand_block(
    block: Mapping[str, object],
    index: int,
    manifest: CampaignManifest,
) -> ScenarioGrid:
    where = f"{manifest.source or manifest.name}: grid block {index}"
    traces = [
        _trace_from_spec(spec, manifest.base_dir, where)
        for spec in block.get("traces", ({},))
    ]
    seeds = block.get("seeds")
    if seeds:
        file_kinds = [t.kind for t in traces if t.kind in FILE_TRACE_KINDS]
        if file_kinds:
            raise ManifestError(
                f"{where}: 'seeds' cannot cross file-replay traces "
                f"({'/'.join(file_kinds)}) — a replayed file has no "
                "generation seed, so every seed would produce the same "
                "scenario key"
            )
        traces = [trace.with_(seed=int(seed)) for trace in traces for seed in seeds]
    backends = tuple(block.get("backends", ("event",)))
    binned_kinds = sorted({t.kind for t in traces if t.kind in BINNED_TRACE_KINDS})
    if binned_kinds and "event" in backends:
        raise ManifestError(
            f"{where}: trace kind(s) {'/'.join(binned_kinds)} only exist in "
            "binned form and cannot run on the per-request event backend — "
            "set backends to ['fluid'] for this block"
        )
    try:
        # Resolve policy and model names now: a 1000-scenario campaign
        # must learn about a typo at validation, not at scenario 937.
        from repro.llm.catalog import get_model
        from repro.policies.base import get_policy_spec

        for policy in block.get("policies", ("DynamoLLM",)):
            if isinstance(policy, str):
                get_policy_spec(policy)
        for model in block.get("models", ()):
            if isinstance(model, str):
                get_model(model)
        grid = sweep(
            policies=tuple(block.get("policies", ("DynamoLLM",))),
            traces=tuple(traces),
            slo_scales=tuple(
                float(v) for v in block["slo_scales"]
            ) if "slo_scales" in block else (None,),
            accuracies=tuple(
                float(v) for v in block["accuracies"]
            ) if "accuracies" in block else (None,),
            pool_counts=tuple(
                int(v) for v in block["pool_counts"]
            ) if "pool_counts" in block else (None,),
            models=tuple(block.get("models", (None,))),
            backends=backends,
        )
        if block.get("fluid_bin_s") is not None:
            grid = grid.with_(fluid_bin_s=float(block["fluid_bin_s"]))
        if block.get("label"):
            grid = grid.with_(label=str(block["label"]))
    except (KeyError, TypeError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise ManifestError(f"{where}: {message}") from None
    return grid


def expand_manifest(manifest: CampaignManifest) -> ScenarioGrid:
    """Expand every grid block and validate the combined grid.

    Scenario-level rules (fluid-vs-event dimensions, unknown trace
    kinds) surface here with manifest context; duplicate keys within or
    across blocks are rejected — they would collide in the results file
    and corrupt resume.
    """
    grids = [
        _expand_block(block, index, manifest)
        for index, block in enumerate(manifest.grids)
    ]
    combined = grids[0]
    try:
        for grid in grids[1:]:
            combined = combined + grid
    except ValueError as error:
        raise ManifestError(
            f"{manifest.source or manifest.name}: {error} (grid blocks "
            "overlap — give the blocks distinct 'label's)"
        ) from None
    return combined


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def shard_scenarios(
    grid: Union[ScenarioGrid, Sequence[Scenario]], index: int, count: int
) -> List[Scenario]:
    """Deterministic round-robin shard ``index`` of ``count``.

    Scenario ``i`` of the expanded grid belongs to shard ``i % count``:
    shards are disjoint, cover the grid, balance to within one scenario
    and — because expansion order is itself deterministic — are stable
    across processes and hosts sharing the manifest.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside 0..{count - 1}")
    return [s for position, s in enumerate(grid) if position % count == index]


_SHARD_SUFFIX = re.compile(r"\.shard(\d+)of(\d+)$")


def shard_path(output: str, index: int, count: int) -> str:
    """The results file of shard ``index``/``count`` for ``output``.

    A single-shard campaign streams straight into ``output``; shard
    ``i`` of ``n`` inserts ``.shard<i>of<n>`` before the extension, so
    concurrent shards never contend on one file and
    :meth:`CampaignRunner.status` can discover and attribute them.
    """
    if count == 1:
        return output
    root, extension = os.path.splitext(output)
    return f"{root}.shard{index}of{count}{extension}"


def discover_result_paths(output: str) -> List[Tuple[str, Optional[Tuple[int, int]]]]:
    """Results files on disk for ``output``: the base file and any shards.

    Returns ``(path, (index, count))`` pairs — ``None`` for the
    unsharded base file — ordered base first, then shards by
    ``(count, index)``, so roll-ups are deterministic.
    """
    paths: List[Tuple[str, Optional[Tuple[int, int]]]] = []
    if os.path.exists(output):
        paths.append((output, None))
    root, extension = os.path.splitext(output)
    shards: List[Tuple[int, int, str]] = []
    for candidate in glob.glob(f"{glob.escape(root)}.shard*of*{extension}"):
        candidate_root = candidate[: len(candidate) - len(extension)] if extension else candidate
        match = _SHARD_SUFFIX.search(candidate_root)
        if match:
            index, count = int(match.group(1)), int(match.group(2))
            if 0 <= index < count:
                shards.append((count, index, candidate))
    paths.extend((path, (index, count)) for count, index, path in sorted(shards))
    return paths


# ----------------------------------------------------------------------
# Status
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardStatus:
    """Progress of one results file (the whole grid, or one shard of it)."""

    path: str
    index: Optional[int]  # None for the unsharded base file
    count: Optional[int]
    expected: int  # scenarios this file is responsible for
    completed: int
    failed: int

    @property
    def pending(self) -> int:
        return self.expected - self.completed - self.failed


@dataclass(frozen=True)
class CampaignStatus:
    """Roll-up of every discovered results file of a campaign.

    ``completed`` counts grid scenarios with a successful record in any
    file; ``failed`` counts scenarios whose only records are errors
    (a resumed run retries them); ``pending`` is the rest.  The per-run
    :class:`~repro.api.executor.SweepReport` objects live on the
    :class:`ShardRun` values :meth:`CampaignRunner.run` returns.
    """

    name: str
    total: int
    completed: int
    failed: int
    shards: Tuple[ShardStatus, ...]

    @property
    def pending(self) -> int:
        return self.total - self.completed - self.failed

    @property
    def done(self) -> bool:
        return self.pending == 0 and self.failed == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "pending": self.pending,
            "done": self.done,
            "shards": [
                {
                    "path": shard.path,
                    "shard": None
                    if shard.index is None
                    else f"{shard.index}/{shard.count}",
                    "expected": shard.expected,
                    "completed": shard.completed,
                    "failed": shard.failed,
                    "pending": shard.pending,
                }
                for shard in self.shards
            ],
        }


@dataclass(frozen=True)
class ShardRun:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    path: Optional[str]  # None when streaming into a caller-supplied sink
    index: Optional[int]
    count: Optional[int]
    report: SweepReport


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def scenario_dimensions(scenario: Scenario) -> Dict[str, object]:
    """The :data:`REPORT_DIMENSIONS` values of one scenario."""
    spec = scenario.trace if isinstance(scenario.trace, TraceSpec) else None
    model = scenario.model_spec()
    return {
        "policy": scenario.policy_name,
        "trace": scenario.trace_key,
        "backend": scenario.backend,
        "model": model.name if model is not None else None,
        "slo_scale": scenario.slo_scale,
        "predictor_accuracy": scenario.predictor_accuracy,
        "pool_count": scenario.pool_count,
        "fluid_bin_s": scenario.fluid_bin_s,
        "seed": spec.seed if spec is not None else None,
        "service": spec.service if spec is not None else None,
        "rate_scale": spec.rate_scale if spec is not None else None,
        "level": spec.level if spec is not None and spec.kind == "poisson" else None,
        "label": scenario.label,
    }


def _dimension_label(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _sort_token(value: object) -> Tuple[int, object]:
    # None sorts first, then numbers, then strings — mixed-type cells
    # (e.g. predictor_accuracy None on the baseline) stay orderable.
    if value is None:
        return (0, 0.0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return (2, str(value))
    return (1, float(value))


@dataclass(frozen=True)
class ReportTable:
    """One pivoted sensitivity table (see :class:`ReportSpec`).

    ``columns`` lists the row-dimension names followed by one label per
    column cell; ``rows`` holds the matching values — dimension values
    first, then the (possibly compared) metric per column cell, ``None``
    where the campaign has no records yet.
    """

    name: str
    value: str
    compare: str
    baseline: Optional[str]
    row_dims: Tuple[str, ...]
    col_dims: Tuple[str, ...]
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": self.value,
            "compare": self.compare,
            "baseline": self.baseline,
            "row_dims": list(self.row_dims),
            "col_dims": list(self.col_dims),
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    def format(self) -> str:
        """Fixed-width text rendering for the terminal."""
        header = list(self.columns)
        body = [
            [
                _dimension_label(cell)
                if position < len(self.row_dims)
                else ("-" if cell is None else f"{cell:.4f}")
                for position, cell in enumerate(row)
            ]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(name.ljust(widths[i]) for i, name in enumerate(header)),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for row in body:
            lines.append(
                "  ".join(
                    cell.ljust(widths[i]) if i < len(self.row_dims) else cell.rjust(widths[i])
                    for i, cell in enumerate(row)
                )
            )
        title = f"{self.name}: {self.value}"
        if self.compare != "raw":
            title += f" ({self.compare} vs {self.baseline})"
        return title + "\n" + "\n".join(lines)


def _aggregate(values: Sequence[float], how: str) -> float:
    if how == "mean":
        return sum(values) / len(values)
    if how == "sum":
        return sum(values)
    if how == "min":
        return min(values)
    return max(values)


def build_report(
    spec: ReportSpec,
    grid: ScenarioGrid,
    records: Mapping[str, Mapping[str, object]],
) -> ReportTable:
    """Pivot successful records into the manifest's sensitivity table.

    ``records`` maps scenario keys to their result records (the merged,
    grid-validated output of :meth:`CampaignRunner.records`).  Each
    record contributes its ``spec.value`` column to the (rows x cols)
    cell its scenario's dimensions select; with ``compare`` set, the
    contribution is first divided by the matching baseline record —
    matched per record on every dimension the baseline scenario pins
    (its ``None`` dimensions are wildcards, so the paper's
    accuracy-less ``SinglePool`` baseline matches every accuracy cell of
    the same trace/seed).
    """
    pivot = tuple(spec.rows) + tuple(spec.cols)
    cells: Dict[Tuple, Dict[Tuple, List[float]]] = {}
    baselines_by_trace: Dict[str, List[Tuple[Dict[str, object], float]]] = {}

    contributions: List[Tuple[Tuple, Tuple, Dict[str, object], float]] = []
    for key, record in records.items():
        scenario = grid[key]
        dims = scenario_dimensions(scenario)
        raw = record.get(spec.value)
        if not isinstance(raw, (int, float)) or isinstance(raw, bool):
            available = sorted(
                name
                for name, cell in record.items()
                if isinstance(cell, (int, float)) and not isinstance(cell, bool)
            )
            raise ManifestError(
                f"report value {spec.value!r} is not a numeric column of the "
                f"records (scenario {key!r}); numeric columns: "
                + ", ".join(available)
            )
        value = float(raw)
        if spec.baseline is not None and dims["policy"] == spec.baseline:
            baselines_by_trace.setdefault(dims["trace"], []).append((dims, value))
        row_id = tuple(dims[d] for d in spec.rows)
        col_id = tuple(dims[d] for d in spec.cols)
        contributions.append((row_id, col_id, dims, value))

    if spec.compare != "raw" and not baselines_by_trace:
        raise ManifestError(
            f"report compare={spec.compare!r} found no records of the "
            f"baseline policy {spec.baseline!r} — has the campaign run it?"
        )

    def baseline_for(dims: Mapping[str, object]) -> float:
        # "label" is excluded from the match: it disambiguates grid
        # blocks (a baseline block may carry one precisely because it
        # overlaps another block), it does not describe the simulation.
        candidates = [
            value
            for base_dims, value in baselines_by_trace.get(dims["trace"], ())
            if all(
                base_dims[d] is None or base_dims[d] == dims[d]
                for d in REPORT_DIMENSIONS
                if d not in ("policy", "trace", "label")
            )
        ]
        if not candidates:
            raise ManifestError(
                f"no baseline ({spec.baseline!r}) record matches the "
                f"scenario dimensions {dict(dims)!r}; the baseline grid "
                "block must cover every trace/seed the compared scenarios "
                "use"
            )
        return _aggregate(candidates, spec.aggregate)

    for row_id, col_id, dims, value in contributions:
        if spec.compare != "raw":
            base = baseline_for(dims)
            if base == 0.0:
                # 1 - x/0 would fabricate a perfect saving (and 0/0 a
                # perfect one for the baseline row itself); a zero-valued
                # baseline makes relative comparison meaningless.
                raise ManifestError(
                    f"the {spec.baseline!r} baseline records "
                    f"{spec.value} == 0 for scenario dimensions "
                    f"{dict(dims)!r}, so compare={spec.compare!r} is "
                    "undefined — pick a different value column or "
                    "compare='raw'"
                )
            ratio = value / base
            value = 1.0 - ratio if spec.compare == "saving" else ratio
        cells.setdefault(row_id, {}).setdefault(col_id, []).append(value)

    col_ids = sorted(
        {col_id for row in cells.values() for col_id in row},
        key=lambda col_id: tuple(_sort_token(v) for v in col_id),
    )
    row_ids = sorted(
        cells, key=lambda row_id: tuple(_sort_token(v) for v in row_id)
    )
    if spec.cols:
        col_labels = [
            " ".join(
                f"{d}={_dimension_label(v)}" for d, v in zip(spec.cols, col_id)
            )
            for col_id in col_ids
        ]
    else:
        col_labels = [spec.value if spec.compare == "raw" else spec.compare]
        col_ids = col_ids or [()]
    rows = tuple(
        tuple(row_id)
        + tuple(
            _aggregate(cells[row_id][col_id], spec.aggregate)
            if col_id in cells[row_id]
            else None
            for col_id in col_ids
        )
        for row_id in row_ids
    )
    return ReportTable(
        name="report",
        value=spec.value,
        compare=spec.compare,
        baseline=spec.baseline,
        row_dims=tuple(spec.rows),
        col_dims=tuple(spec.cols),
        columns=tuple(spec.rows) + tuple(col_labels),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class CampaignRunner:
    """Drives one campaign manifest end to end: run, status, report.

    ``out`` overrides the manifest's output path (bundled manifests name
    a working-directory-relative default).  The expanded grid is cached;
    construction itself stays cheap.
    """

    def __init__(self, manifest: CampaignManifest, out: Optional[str] = None) -> None:
        self.manifest = manifest
        self.out = out or manifest.output
        self._grid: Optional[ScenarioGrid] = None

    @classmethod
    def from_path(cls, path: str, out: Optional[str] = None) -> "CampaignRunner":
        return cls(load_manifest(path), out=out)

    @classmethod
    def from_grid(
        cls,
        name: str,
        grid: Union[ScenarioGrid, Iterable[Scenario]],
        output: Optional[str] = None,
        report: Optional[ReportSpec] = None,
        workers: Optional[int] = None,
        mode: str = "thread",
        shards: int = 1,
        lean: bool = True,
    ) -> "CampaignRunner":
        """A programmatic campaign over an already-built grid.

        The declarative layer's substrate for in-code drivers (the
        sensitivity figures): sharding, resume, status and report all
        behave exactly as for a manifest-loaded campaign.
        """
        if not isinstance(grid, ScenarioGrid):
            grid = ScenarioGrid(grid)
        manifest = CampaignManifest(
            name=name,
            grids=({},),  # placeholder; expansion is pre-empted below
            output=output or f"{name}.jsonl",
            workers=workers,
            mode=mode,
            shards=shards,
            lean=lean,
            report=report or ReportSpec(),
        )
        runner = cls(manifest)
        runner._grid = grid
        return runner

    # ------------------------------------------------------------------
    def grid(self) -> ScenarioGrid:
        """The expanded, validated scenario grid (cached)."""
        if self._grid is None:
            self._grid = expand_manifest(self.manifest)
        return self._grid

    def validate(self) -> ScenarioGrid:
        """Expand and validate; raises :class:`ManifestError` on problems."""
        return self.grid()

    # ------------------------------------------------------------------
    def run(
        self,
        shard: Optional[Tuple[int, int]] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        resume: bool = True,
        sink: Optional[ResultSink] = None,
    ) -> List[ShardRun]:
        """Run the campaign (or one shard of it) and return shard reports.

        ``shard=(i, n)`` runs only that shard into its
        :func:`shard_path` results file — the multi-host entry point.
        Without ``shard``, the manifest's ``shards`` setting applies:
        every shard runs in sequence locally (one results file each), so
        a single host still produces the sharded layout a fleet would.
        Scenarios stream through an append-only file sink with
        ``resume=True`` (default): rerunning after a kill executes
        exactly the missing scenarios; ``resume=False`` refuses an
        existing non-empty results file instead of appending to it.  A
        caller-supplied ``sink`` (e.g. :class:`InMemorySink`) bypasses
        the file layout and runs the whole grid — or the given shard —
        into it.
        """
        grid = self.grid()
        workers = workers if workers is not None else self.manifest.workers
        mode = mode or self.manifest.mode
        if sink is not None:
            scenarios = (
                shard_scenarios(grid, *shard) if shard is not None else list(grid)
            )
            result = runs(
                scenarios,
                workers=workers,
                lean=self.manifest.lean,
                mode=mode,
                sink=sink,
                resume=resume or sink.resume,
            )
            return [
                ShardRun(
                    path=None,
                    index=shard[0] if shard else None,
                    count=shard[1] if shard else None,
                    report=result.report,
                )
            ]
        if shard is not None:
            pairs = [shard]
        elif self.manifest.shards > 1:
            pairs = [(index, self.manifest.shards) for index in range(self.manifest.shards)]
        else:
            pairs = [(0, 1)]
        shard_runs: List[ShardRun] = []
        for index, count in pairs:
            scenarios = shard_scenarios(grid, index, count)
            path = shard_path(self.out, index, count)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            if not resume and os.path.exists(path) and os.path.getsize(path) > 0:
                raise ValueError(
                    f"{path} already holds results; campaigns resume by "
                    "default (resume=True) — pass resume only after removing "
                    "the file for a genuinely fresh run (it is never "
                    "truncated)"
                )
            file_sink = sink_for_path(path, resume=resume)
            result = runs(
                scenarios,
                workers=workers,
                lean=self.manifest.lean,
                mode=mode,
                sink=file_sink,
                resume=resume,
            )
            shard_runs.append(
                ShardRun(
                    path=path,
                    index=index if count > 1 else None,
                    count=count if count > 1 else None,
                    report=result.report,
                )
            )
        return shard_runs

    # ------------------------------------------------------------------
    def result_paths(self) -> List[Tuple[str, Optional[Tuple[int, int]]]]:
        return discover_result_paths(self.out)

    def records(self) -> Dict[str, Mapping[str, object]]:
        """Merged successful records across every discovered results file.

        Keys are validated against the expanded grid: a record naming a
        scenario the manifest does not describe means the file belongs
        to a different campaign and raises
        :class:`~repro.api.sinks.ResultsMismatchError` (the campaign
        counterpart of the executors' resume check).  Later files win on
        duplicate keys (a scenario legitimately appears in both an
        unsharded and a sharded results file after re-sharding).
        """
        known: Set[str] = set(self.grid().keys())
        merged: Dict[str, Mapping[str, object]] = {}
        for path, _ in self.result_paths():
            for record in read_records(path):
                key = record.get("scenario")
                if key in (None, ""):
                    continue
                key = str(key)
                if key not in known:
                    raise ResultsMismatchError(
                        f"{path} records scenario {key!r}, which campaign "
                        f"{self.manifest.name!r} does not describe — the "
                        "file belongs to a different grid/manifest; point "
                        "--out at this campaign's results (or remove the "
                        "stale file)"
                    )
                if not record.get("error"):
                    merged[key] = record
        return merged

    def status(self) -> CampaignStatus:
        """Per-shard and campaign-wide completion roll-up."""
        grid = self.grid()
        all_keys = set(grid.keys())
        completed: Set[str] = set()
        failed: Set[str] = set()
        shards: List[ShardStatus] = []
        for path, shard in self.result_paths():
            succeeded: Set[str] = set()
            errored: Set[str] = set()
            for record in read_records(path):
                key = record.get("scenario")
                if key in (None, ""):
                    continue
                key = str(key)
                if key not in all_keys:
                    raise ResultsMismatchError(
                        f"{path} records scenario {key!r}, which campaign "
                        f"{self.manifest.name!r} does not describe — the "
                        "file belongs to a different grid/manifest"
                    )
                (errored if record.get("error") else succeeded).add(key)
            errored -= succeeded  # a later success supersedes the error
            completed |= succeeded
            failed |= errored
            expected = (
                len(shard_scenarios(grid, *shard)) if shard is not None else len(grid)
            )
            shards.append(
                ShardStatus(
                    path=path,
                    index=shard[0] if shard else None,
                    count=shard[1] if shard else None,
                    expected=expected,
                    completed=len(succeeded),
                    failed=len(errored),
                )
            )
        failed -= completed
        return CampaignStatus(
            name=self.manifest.name,
            total=len(grid),
            completed=len(completed),
            failed=len(failed),
            shards=tuple(shards),
        )

    def report(self) -> ReportTable:
        """Pivot the campaign's records into its sensitivity table."""
        records = self.records()
        if not records:
            raise ManifestError(
                f"campaign {self.manifest.name!r} has no successful records "
                f"under {self.out!r} yet — run it first "
                "(python -m repro campaign run ...)"
            )
        return build_report(self.manifest.report, self.grid(), records)

    def run_in_memory(
        self, workers: Optional[int] = None, mode: Optional[str] = None
    ) -> InMemorySink:
        """Run the whole grid into an :class:`InMemorySink` and return it.

        The in-process path the ported figure drivers use: full
        :class:`~repro.metrics.summary.RunSummary` objects, no files.
        """
        sink = InMemorySink()
        self.run(workers=workers, mode=mode, sink=sink, resume=False)
        return sink
