"""Immutable scenario descriptions and grid combinators.

A :class:`Scenario` names everything one simulated run needs — the
policy, a declarative :class:`TraceSpec` and the experiment-level knobs
the paper sweeps (SLO scale, predictor accuracy, pool count, ...).
Scenarios are immutable; derive variants with :meth:`Scenario.with_` /
:meth:`Scenario.with_trace`, and expand cartesian products with
:func:`sweep`, which returns a :class:`ScenarioGrid` whose members are
addressable by their unique :attr:`Scenario.key`.

Scenarios are *descriptions*: nothing is simulated until they are given
to :func:`repro.api.executor.run_scenario` / :func:`~repro.api.executor.run_grid`
or turned into a :class:`~repro.api.engine.SimulationEngine`.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.llm.catalog import ModelSpec, get_model
from repro.policies.base import PolicySpec, get_policy_spec
from repro.workload.slo import SLOPolicy
from repro.workload.traces import Trace


# ----------------------------------------------------------------------
# Trace specification
# ----------------------------------------------------------------------
#: Request-level trace families the spec can materialise.  The first two
#: are synthetic (today's generators); ``csv`` and ``azure`` replay
#: recorded invocation traces from disk.
TRACE_KINDS = ("one_hour", "poisson", "csv", "azure")

#: Kinds that replay a trace file rather than synthesising one.
FILE_TRACE_KINDS = ("csv", "azure")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative recipe for a request-level trace.

    ``kind="one_hour"`` builds the synthetic 1-hour service trace used
    throughout Section V-B; ``kind="poisson"`` builds the constant-rate
    Poisson traces of the load-level sensitivity study (Figure 12).

    ``kind="csv"`` replays a generic request CSV
    (timestamp / input / output rows) and ``kind="azure"`` replays the
    Azure LLM-inference trace format (datetime ``TIMESTAMP`` column);
    both require ``path``, support burst-preserving rate scaling via
    ``resample`` and clip to ``duration_s``.  File parsing is cached per
    process, and grid executors additionally share the built trace across
    scenarios (see :func:`repro.api.executor.run_grid`), so a sweep over
    one trace file reads it once.
    """

    kind: str = "one_hour"
    service: str = "conversation"
    rate_scale: float = 10.0
    duration_s: Optional[float] = None
    seed: int = 7
    level: str = "medium"  # Poisson load level (low / medium / high)
    load_multiplier: float = 6.0  # scales Poisson levels up to cluster size
    path: Optional[str] = None  # trace file (csv / azure kinds)
    resample: float = 1.0  # burst-preserving rate factor (file kinds)

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"unknown trace kind {self.kind!r}; known kinds: {', '.join(TRACE_KINDS)}"
            )
        if self.kind in FILE_TRACE_KINDS and not self.path:
            raise ValueError(f"TraceSpec(kind={self.kind!r}) requires path=")
        if self.resample <= 0:
            raise ValueError("resample must be positive")

    def build(self) -> Trace:
        """Materialise the described trace."""
        if self.kind == "one_hour":
            from repro.workload.synthetic import make_one_hour_trace

            trace = make_one_hour_trace(
                self.service, seed=self.seed, rate_scale=self.rate_scale
            )
            if self.duration_s is not None and self.duration_s < trace.duration:
                trace = trace.slice(0.0, self.duration_s)
            return trace
        if self.kind == "csv":
            from repro.workload.loaders import load_request_csv, resample_trace

            trace = load_request_csv(self.path, service=self.service)
            if self.resample != 1.0:
                trace = resample_trace(trace, self.resample)
            if self.duration_s is not None and self.duration_s < trace.duration:
                trace = trace.slice(0.0, self.duration_s)
            return trace
        if self.kind == "azure":
            from repro.workload.loaders import load_azure_trace

            return load_azure_trace(
                self.path,
                service=self.service,
                resample=self.resample,
                duration_s=self.duration_s,
            )
        # kind == "poisson"
        from repro.workload.arrival import PoissonArrivalGenerator, get_load_level

        level = get_load_level(self.level)
        scaled = type(level)(
            level.name, level.prompt_tokens_per_second * self.load_multiplier
        )
        generator = PoissonArrivalGenerator(seed=self.seed)
        return generator.generate(scaled, self.duration_s or 1800.0)

    @property
    def key(self) -> str:
        """Compact unique identifier for grid/result addressing."""
        if self.kind == "one_hour":
            parts = [self.service, f"x{self.rate_scale:g}", f"s{self.seed}"]
        elif self.kind in FILE_TRACE_KINDS:
            import hashlib
            import os

            # Basename alone would collide for distinct files that share
            # a filename; a short path digest keeps keys unique per file.
            digest = hashlib.sha1(
                os.path.abspath(self.path).encode("utf-8")
            ).hexdigest()[:6]
            parts = [f"{os.path.basename(self.path)}#{digest}"]
            if self.resample != 1.0:
                parts.append(f"x{self.resample:g}")
        else:
            parts = [self.level, f"m{self.load_multiplier:g}", f"s{self.seed}"]
        if self.duration_s is not None:
            parts.append(f"{self.duration_s:g}s")
        return f"{self.kind}({','.join(parts)})"

    def with_(self, **changes) -> "TraceSpec":
        """A copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One immutable, fully-described simulation run.

    Only the dimensions that differ from the experiment defaults need to
    be set; ``None`` means "inherit from ``base_config``".  The optional
    ``base_config`` carries everything else (profile, epochs, drain
    timeout, ...) and is shared, not copied, across grid members.
    """

    policy: Union[str, PolicySpec] = "DynamoLLM"
    trace: Union[TraceSpec, Trace] = TraceSpec()
    slo_scale: Optional[float] = None
    predictor_accuracy: Optional[float] = None
    pool_count: Optional[int] = None
    static_servers: Optional[int] = None
    max_servers: Optional[int] = None
    time_step_s: Optional[float] = None
    model: Optional[Union[str, ModelSpec]] = None
    label: Optional[str] = None
    base_config: Optional[object] = None  # ExperimentConfig

    # ------------------------------------------------------------------
    def policy_spec(self) -> PolicySpec:
        if isinstance(self.policy, PolicySpec):
            return self.policy
        return get_policy_spec(self.policy)

    @property
    def policy_name(self) -> str:
        return self.policy.name if isinstance(self.policy, PolicySpec) else self.policy

    def build_trace(self) -> Trace:
        """The trace to serve: built from the spec, or passed through."""
        return self.trace if isinstance(self.trace, Trace) else self.trace.build()

    @property
    def trace_key(self) -> str:
        return self.trace.name if isinstance(self.trace, Trace) else self.trace.key

    def model_spec(self) -> Optional[ModelSpec]:
        if self.model is None or isinstance(self.model, ModelSpec):
            return self.model
        return get_model(self.model)

    def resolved_config(self):
        """The ExperimentConfig for this run: base config + overrides."""
        from repro.experiments.runner import ExperimentConfig

        base = self.base_config or ExperimentConfig()
        changes: Dict[str, object] = {}
        if self.model is not None:
            changes["model"] = self.model_spec()
            if base.profile is not None:
                changes["profile"] = None  # base profile is for another model
        if self.slo_scale is not None:
            changes["slo_policy"] = SLOPolicy(scale=self.slo_scale)
        if self.predictor_accuracy is not None:
            changes["predictor_accuracy"] = self.predictor_accuracy
        if self.pool_count is not None:
            from repro.workload.classification import scheme_for_pool_count

            changes["scheme"] = scheme_for_pool_count(self.pool_count)
        if self.static_servers is not None:
            changes["static_servers"] = self.static_servers
        if self.max_servers is not None:
            changes["max_servers"] = self.max_servers
        if self.time_step_s is not None:
            changes["time_step_s"] = self.time_step_s
        return dataclasses.replace(base, **changes) if changes else base

    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Unique, human-readable identifier within a grid."""
        parts = [self.policy_name, self.trace_key]
        if self.model is not None:
            model = self.model_spec()
            parts.append(model.name if model is not None else str(self.model))
        if self.slo_scale is not None:
            parts.append(f"slo{self.slo_scale:g}")
        if self.predictor_accuracy is not None:
            parts.append(f"acc{self.predictor_accuracy:g}")
        if self.pool_count is not None:
            parts.append(f"pools{self.pool_count}")
        if self.label:
            parts.append(self.label)
        return "/".join(parts)

    def with_(self, **changes) -> "Scenario":
        """A copy of this scenario with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_trace(self, **changes) -> "Scenario":
        """A copy with fields of the *trace spec* replaced."""
        if isinstance(self.trace, Trace):
            raise TypeError(
                "with_trace() needs a TraceSpec; this scenario carries a "
                "concrete Trace — replace it with .with_(trace=...)"
            )
        return dataclasses.replace(self, trace=self.trace.with_(**changes))


# ----------------------------------------------------------------------
# Grid
# ----------------------------------------------------------------------
class ScenarioGrid:
    """An ordered collection of scenarios with unique keys."""

    def __init__(self, scenarios: Iterable[Scenario]) -> None:
        self.scenarios: Tuple[Scenario, ...] = tuple(scenarios)
        seen: Dict[str, Scenario] = {}
        for scenario in self.scenarios:
            if scenario.key in seen:
                raise ValueError(
                    f"duplicate scenario key {scenario.key!r}; "
                    "disambiguate with Scenario.label"
                )
            seen[scenario.key] = scenario
        self._by_key = seen

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, item: Union[int, str]) -> Scenario:
        if isinstance(item, str):
            return self._by_key[item]
        return self.scenarios[item]

    def keys(self) -> Tuple[str, ...]:
        return tuple(s.key for s in self.scenarios)

    def filter(self, predicate: Callable[[Scenario], bool]) -> "ScenarioGrid":
        return ScenarioGrid(s for s in self.scenarios if predicate(s))

    def with_(self, **changes) -> "ScenarioGrid":
        """Apply the same field replacement to every member."""
        return ScenarioGrid(s.with_(**changes) for s in self.scenarios)

    def __add__(self, other: "ScenarioGrid") -> "ScenarioGrid":
        return ScenarioGrid(tuple(self.scenarios) + tuple(other.scenarios))

    def __repr__(self) -> str:
        return f"ScenarioGrid({len(self)} scenarios)"


def sweep(
    policies: Sequence[Union[str, PolicySpec]] = ("DynamoLLM",),
    traces: Sequence[Union[TraceSpec, Trace]] = (TraceSpec(),),
    slo_scales: Sequence[Optional[float]] = (None,),
    accuracies: Sequence[Optional[float]] = (None,),
    pool_counts: Sequence[Optional[int]] = (None,),
    models: Sequence[Optional[Union[str, ModelSpec]]] = (None,),
    base_config=None,
) -> ScenarioGrid:
    """Cartesian product over the paper's sweep dimensions.

    Every combination of policy x trace x SLO scale x predictor accuracy
    x pool count x model becomes one :class:`Scenario`.  Dimensions left
    at their defaults contribute a single ``None`` (inherit) entry and do
    not appear in the scenario keys.
    """
    scenarios = [
        Scenario(
            policy=policy,
            trace=trace,
            slo_scale=slo_scale,
            predictor_accuracy=accuracy,
            pool_count=pool_count,
            model=model,
            base_config=base_config,
        )
        for policy, trace, slo_scale, accuracy, pool_count, model in itertools.product(
            policies, traces, slo_scales, accuracies, pool_counts, models
        )
    ]
    return ScenarioGrid(scenarios)
