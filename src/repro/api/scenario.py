"""Immutable scenario descriptions and grid combinators.

A :class:`Scenario` names everything one simulated run needs — the
policy, a declarative :class:`TraceSpec` and the experiment-level knobs
the paper sweeps (SLO scale, predictor accuracy, pool count, ...).
Scenarios are immutable; derive variants with :meth:`Scenario.with_` /
:meth:`Scenario.with_trace`, and expand cartesian products with
:func:`sweep`, which returns a :class:`ScenarioGrid` whose members are
addressable by their unique :attr:`Scenario.key`.

Scenarios are *descriptions*: nothing is simulated until they are given
to :func:`repro.api.executor.run_scenario` / :func:`~repro.api.executor.run_grid`
or turned into a :class:`~repro.api.engine.SimulationEngine`.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.llm.catalog import ModelSpec, get_model
from repro.policies.base import PolicySpec, get_policy_spec
from repro.workload.slo import SLOPolicy
from repro.workload.traces import BinnedTrace, Trace, TraceBin, bin_trace


# ----------------------------------------------------------------------
# Trace specification
# ----------------------------------------------------------------------
#: Trace families the spec can materialise.  ``one_hour`` and ``poisson``
#: are synthetic request-level generators; ``csv`` and ``azure`` replay
#: recorded invocation traces from disk; ``week`` is the synthetic
#: week-long *binned* trace (fluid backend only — no request level).
TRACE_KINDS = ("one_hour", "poisson", "csv", "azure", "week")

#: Kinds that replay a trace file rather than synthesising one.
FILE_TRACE_KINDS = ("csv", "azure")

#: Kinds that only exist in binned form (usable with ``backend="fluid"``).
BINNED_TRACE_KINDS = ("week",)

#: Simulation backends a :class:`Scenario` can select.
BACKENDS = ("event", "fluid")


@dataclass(frozen=True)
class TraceSpec:
    """Declarative recipe for a request-level trace.

    ``kind="one_hour"`` builds the synthetic 1-hour service trace used
    throughout Section V-B; ``kind="poisson"`` builds the constant-rate
    Poisson traces of the load-level sensitivity study (Figure 12).

    ``kind="csv"`` replays a generic request CSV
    (timestamp / input / output rows) and ``kind="azure"`` replays the
    Azure LLM-inference trace format (datetime ``TIMESTAMP`` column);
    both require ``path``, support burst-preserving rate scaling via
    ``resample`` and clip to ``duration_s``.  File parsing is cached per
    process, and grid executors additionally share the built trace across
    scenarios (see :func:`repro.api.executor.run_grid`), so a sweep over
    one trace file reads it once.

    ``kind="week"`` builds the week-long synthetic service trace the
    paper's Figures 14-16 run on.  It is generated directly in binned
    form (no request level exists), so it can only be simulated with
    ``Scenario(backend="fluid")``; :meth:`build` raises and
    :meth:`build_bins` is the materialiser.
    """

    kind: str = "one_hour"
    service: str = "conversation"
    rate_scale: float = 10.0
    duration_s: Optional[float] = None
    seed: int = 7
    level: str = "medium"  # Poisson load level (low / medium / high)
    load_multiplier: float = 6.0  # scales Poisson levels up to cluster size
    path: Optional[str] = None  # trace file (csv / azure kinds)
    resample: float = 1.0  # burst-preserving rate factor (file kinds)

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"unknown trace kind {self.kind!r}; known kinds: {', '.join(TRACE_KINDS)}"
            )
        if self.kind in FILE_TRACE_KINDS and not self.path:
            raise ValueError(f"TraceSpec(kind={self.kind!r}) requires path=")
        if self.resample <= 0:
            raise ValueError("resample must be positive")

    def build(self) -> Trace:
        """Materialise the described trace at request level."""
        if self.kind in BINNED_TRACE_KINDS:
            raise ValueError(
                f"TraceSpec(kind={self.kind!r}) only exists in binned form; "
                "simulate it with Scenario(backend='fluid') (build_bins), "
                "not the request-level event backend"
            )
        if self.kind == "one_hour":
            from repro.workload.synthetic import make_one_hour_trace

            trace = make_one_hour_trace(
                self.service, seed=self.seed, rate_scale=self.rate_scale
            )
            if self.duration_s is not None and self.duration_s < trace.duration:
                trace = trace.slice(0.0, self.duration_s)
            return trace
        if self.kind == "csv":
            from repro.workload.loaders import load_request_csv, resample_trace

            trace = load_request_csv(self.path, service=self.service)
            if self.resample != 1.0:
                trace = resample_trace(trace, self.resample)
            if self.duration_s is not None and self.duration_s < trace.duration:
                trace = trace.slice(0.0, self.duration_s)
            return trace
        if self.kind == "azure":
            from repro.workload.loaders import load_azure_trace

            return load_azure_trace(
                self.path,
                service=self.service,
                resample=self.resample,
                duration_s=self.duration_s,
            )
        # kind == "poisson"
        from repro.workload.arrival import PoissonArrivalGenerator, get_load_level

        level = get_load_level(self.level)
        scaled = type(level)(
            level.name, level.prompt_tokens_per_second * self.load_multiplier
        )
        generator = PoissonArrivalGenerator(seed=self.seed)
        return generator.generate(scaled, self.duration_s or 1800.0)

    def build_bins(self, bin_seconds: float = 300.0) -> List[TraceBin]:
        """Materialise the described trace in binned form (fluid backend).

        Binned-only kinds (``week``) generate their bins directly; every
        other kind builds the request-level trace and aggregates it into
        ``bin_seconds``-wide bins.
        """
        if self.kind == "week":
            from repro.workload.synthetic import make_week_trace

            bins = make_week_trace(
                self.service,
                seed=self.seed,
                rate_scale=self.rate_scale,
                bin_seconds=bin_seconds,
            )
            if self.duration_s is not None:
                bins = _clip_bins(bins, self.duration_s)
            return bins
        return bin_trace(self.build(), bin_seconds)

    @property
    def key(self) -> str:
        """Compact unique identifier for grid/result addressing."""
        if self.kind in ("one_hour", "week"):
            parts = [self.service, f"x{self.rate_scale:g}", f"s{self.seed}"]
        elif self.kind in FILE_TRACE_KINDS:
            import hashlib
            import os

            # Basename alone would collide for distinct files that share
            # a filename; a short path digest keeps keys unique per file.
            digest = hashlib.sha1(
                os.path.abspath(self.path).encode("utf-8")
            ).hexdigest()[:6]
            parts = [f"{os.path.basename(self.path)}#{digest}"]
            if self.resample != 1.0:
                parts.append(f"x{self.resample:g}")
        else:
            parts = [self.level, f"m{self.load_multiplier:g}", f"s{self.seed}"]
        if self.duration_s is not None:
            parts.append(f"{self.duration_s:g}s")
        return f"{self.kind}({','.join(parts)})"

    def with_(self, **changes) -> "TraceSpec":
        """A copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def _clip_bins(bins, duration_s: float):
    """Clip a binned trace to ``duration_s``, like request-level clipping.

    A bin straddling the cut is truncated: its duration becomes the
    remaining window and its aggregates scale by the kept fraction, so
    the offered *rate* is unchanged while the simulated horizon (and
    hence energy) honours the requested duration exactly.  The per-type
    maps are scaled first and the totals derived from them (splitting
    tokens by the bin's original prompt share), so the truncated bin
    stays internally consistent — independent rounding could otherwise
    zero a type map while the totals still report load.
    """
    clipped = []
    for b in bins:
        if b.start_time >= duration_s:
            break
        if b.start_time + b.duration <= duration_s:
            clipped.append(b)
            continue
        fraction = (duration_s - b.start_time) / b.duration
        tokens_by_type = {
            k: int(round(v * fraction)) for k, v in b.tokens_by_type.items()
        }
        tokens_by_type = {k: v for k, v in tokens_by_type.items() if v > 0}
        count_by_type = {
            k: max(1, int(round(v * fraction)))
            for k, v in b.count_by_type.items()
            if k in tokens_by_type
        }
        total_tokens = sum(tokens_by_type.values())
        prompt_share = (
            b.input_tokens / b.total_tokens if b.total_tokens > 0 else 0.0
        )
        input_tokens = int(round(total_tokens * prompt_share))
        clipped.append(
            TraceBin(
                start_time=b.start_time,
                duration=duration_s - b.start_time,
                request_count=sum(count_by_type.values()),
                input_tokens=input_tokens,
                output_tokens=total_tokens - input_tokens,
                count_by_type=count_by_type,
                tokens_by_type=tokens_by_type,
            )
        )
    return clipped


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One immutable, fully-described simulation run.

    Only the dimensions that differ from the experiment defaults need to
    be set; ``None`` means "inherit from ``base_config``".  The optional
    ``base_config`` carries everything else (profile, epochs, drain
    timeout, ...) and is shared, not copied, across grid members.

    ``backend`` selects the simulator: ``"event"`` (default) runs the
    per-request :class:`~repro.api.engine.SimulationEngine`; ``"fluid"``
    runs the binned :class:`~repro.api.fluid_engine.FluidEngine`, which
    wraps the discrete-time fluid simulator the paper's large-scale
    results use — hours-long traces in milliseconds, at the cost of
    request-level latency fidelity (fluid summaries carry no latency
    percentiles).  ``fluid_bin_s`` overrides the bin width used when the
    fluid backend has to bin a request-level trace itself.
    """

    policy: Union[str, PolicySpec] = "DynamoLLM"
    trace: Union[TraceSpec, Trace, BinnedTrace] = TraceSpec()
    slo_scale: Optional[float] = None
    predictor_accuracy: Optional[float] = None
    pool_count: Optional[int] = None
    static_servers: Optional[int] = None
    max_servers: Optional[int] = None
    time_step_s: Optional[float] = None
    model: Optional[Union[str, ModelSpec]] = None
    backend: str = "event"
    fluid_bin_s: Optional[float] = None
    label: Optional[str] = None
    base_config: Optional[object] = None  # ExperimentConfig

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known backends: "
                f"{', '.join(BACKENDS)}"
            )
        if self.backend == "fluid":
            # The fluid simulator has no request level: budgets come from
            # binned peaks and there is no predictor, SLO evaluation or
            # time step.  Silently dropping these dimensions would yield
            # distinct-keyed scenarios with identical results (or corrupt
            # cross-backend comparisons), so reject them up front.
            # pool_count and model DO affect the fluid simulation and
            # stay sweepable.
            ignored = {
                "static_servers": self.static_servers,
                "max_servers": self.max_servers,
                "slo_scale": self.slo_scale,
                "predictor_accuracy": self.predictor_accuracy,
                "time_step_s": self.time_step_s,
            }
            set_fields = [name for name, value in ignored.items() if value is not None]
            if set_fields:
                raise ValueError(
                    f"{'/'.join(set_fields)} are event-backend dimensions "
                    "the fluid simulator cannot honour; sweep them with "
                    "backend='event' (fluid budgets come from binned trace "
                    "peaks — pass static_budgets= to FluidEngine to pin them)"
                )
        elif self.fluid_bin_s is not None:
            raise ValueError(
                "fluid_bin_s only applies to backend='fluid'; the event "
                "backend simulates individual requests, not bins"
            )

    # ------------------------------------------------------------------
    def policy_spec(self) -> PolicySpec:
        if isinstance(self.policy, PolicySpec):
            return self.policy
        return get_policy_spec(self.policy)

    @property
    def policy_name(self) -> str:
        return self.policy.name if isinstance(self.policy, PolicySpec) else self.policy

    def build_trace(self) -> Trace:
        """The request-level trace to serve: built from the spec, or passed through."""
        if isinstance(self.trace, BinnedTrace):
            raise ValueError(
                "this scenario carries a pre-binned trace, which only the "
                "fluid backend can simulate — use Scenario(backend='fluid')"
            )
        return self.trace if isinstance(self.trace, Trace) else self.trace.build()

    def build_bins(self, bin_seconds: Optional[float] = None) -> List[TraceBin]:
        """The binned trace the fluid backend simulates.

        Pre-binned traces pass through unchanged; request-level traces
        and specs are aggregated into ``bin_seconds``-wide bins
        (default: ``fluid_bin_s`` override, else the config's).
        """
        if isinstance(self.trace, BinnedTrace):
            return self.trace.bins
        if bin_seconds is None:
            bin_seconds = self.fluid_bin_s
        if bin_seconds is None:
            bin_seconds = self.resolved_config().fluid_bin_s
        if isinstance(self.trace, Trace):
            return bin_trace(self.trace, bin_seconds)
        return self.trace.build_bins(bin_seconds)

    @property
    def trace_key(self) -> str:
        if isinstance(self.trace, (Trace, BinnedTrace)):
            return self.trace.name
        return self.trace.key

    def model_spec(self) -> Optional[ModelSpec]:
        if self.model is None or isinstance(self.model, ModelSpec):
            return self.model
        return get_model(self.model)

    def resolved_config(self):
        """The ExperimentConfig for this run: base config + overrides."""
        from repro.experiments.runner import ExperimentConfig

        base = self.base_config or ExperimentConfig()
        changes: Dict[str, object] = {}
        if self.model is not None:
            changes["model"] = self.model_spec()
            if base.profile is not None:
                changes["profile"] = None  # base profile is for another model
        if self.slo_scale is not None:
            changes["slo_policy"] = SLOPolicy(scale=self.slo_scale)
        if self.predictor_accuracy is not None:
            changes["predictor_accuracy"] = self.predictor_accuracy
        if self.pool_count is not None:
            from repro.workload.classification import scheme_for_pool_count

            changes["scheme"] = scheme_for_pool_count(self.pool_count)
        if self.static_servers is not None:
            changes["static_servers"] = self.static_servers
        if self.max_servers is not None:
            changes["max_servers"] = self.max_servers
        if self.time_step_s is not None:
            changes["time_step_s"] = self.time_step_s
        if self.fluid_bin_s is not None:
            changes["fluid_bin_s"] = self.fluid_bin_s
        return dataclasses.replace(base, **changes) if changes else base

    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Unique, human-readable identifier within a grid."""
        parts = [self.policy_name, self.trace_key]
        if self.model is not None:
            model = self.model_spec()
            parts.append(model.name if model is not None else str(self.model))
        if self.slo_scale is not None:
            parts.append(f"slo{self.slo_scale:g}")
        if self.predictor_accuracy is not None:
            parts.append(f"acc{self.predictor_accuracy:g}")
        if self.pool_count is not None:
            parts.append(f"pools{self.pool_count}")
        if self.fluid_bin_s is not None:
            parts.append(f"bin{self.fluid_bin_s:g}")
        if self.backend != "event":
            parts.append(self.backend)
        if self.label:
            parts.append(self.label)
        return "/".join(parts)

    def with_(self, **changes) -> "Scenario":
        """A copy of this scenario with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_trace(self, **changes) -> "Scenario":
        """A copy with fields of the *trace spec* replaced."""
        if isinstance(self.trace, Trace):
            raise TypeError(
                "with_trace() needs a TraceSpec; this scenario carries a "
                "concrete Trace — replace it with .with_(trace=...)"
            )
        return dataclasses.replace(self, trace=self.trace.with_(**changes))


# ----------------------------------------------------------------------
# Grid
# ----------------------------------------------------------------------
class ScenarioGrid:
    """An ordered collection of scenarios with unique keys."""

    def __init__(self, scenarios: Iterable[Scenario]) -> None:
        self.scenarios: Tuple[Scenario, ...] = tuple(scenarios)
        seen: Dict[str, Scenario] = {}
        for scenario in self.scenarios:
            if scenario.key in seen:
                raise ValueError(
                    f"duplicate scenario key {scenario.key!r}; "
                    "disambiguate with Scenario.label"
                )
            seen[scenario.key] = scenario
        self._by_key = seen

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, item: Union[int, str]) -> Scenario:
        if isinstance(item, str):
            return self._by_key[item]
        return self.scenarios[item]

    def keys(self) -> Tuple[str, ...]:
        return tuple(s.key for s in self.scenarios)

    def filter(self, predicate: Callable[[Scenario], bool]) -> "ScenarioGrid":
        return ScenarioGrid(s for s in self.scenarios if predicate(s))

    def with_(self, **changes) -> "ScenarioGrid":
        """Apply the same field replacement to every member."""
        return ScenarioGrid(s.with_(**changes) for s in self.scenarios)

    def __add__(self, other: "ScenarioGrid") -> "ScenarioGrid":
        return ScenarioGrid(tuple(self.scenarios) + tuple(other.scenarios))

    def __repr__(self) -> str:
        return f"ScenarioGrid({len(self)} scenarios)"


def sweep(
    policies: Sequence[Union[str, PolicySpec]] = ("DynamoLLM",),
    traces: Sequence[Union[TraceSpec, Trace, BinnedTrace]] = (TraceSpec(),),
    slo_scales: Sequence[Optional[float]] = (None,),
    accuracies: Sequence[Optional[float]] = (None,),
    pool_counts: Sequence[Optional[int]] = (None,),
    models: Sequence[Optional[Union[str, ModelSpec]]] = (None,),
    backends: Sequence[str] = ("event",),
    base_config=None,
) -> ScenarioGrid:
    """Cartesian product over the paper's sweep dimensions.

    Every combination of policy x trace x SLO scale x predictor accuracy
    x pool count x model x backend becomes one :class:`Scenario`.
    Dimensions left at their defaults contribute a single ``None``
    (inherit) entry and do not appear in the scenario keys.
    """
    scenarios = [
        Scenario(
            policy=policy,
            trace=trace,
            slo_scale=slo_scale,
            predictor_accuracy=accuracy,
            pool_count=pool_count,
            model=model,
            backend=backend,
            base_config=base_config,
        )
        for policy, trace, slo_scale, accuracy, pool_count, model, backend in itertools.product(
            policies, traces, slo_scales, accuracies, pool_counts, models, backends
        )
    ]
    return ScenarioGrid(scenarios)
