"""Streamed result sinks for large scenario sweeps.

A 1000+-scenario grid should not hold every
:class:`~repro.metrics.summary.RunSummary` in memory until the sweep
ends.  A :class:`ResultSink` receives each summary *as it completes*:
the executors (:func:`repro.api.executor.runs` /
:func:`~repro.api.executor.run_grid` /
:func:`~repro.api.executor.run_policies`) and the CLI
(``python -m repro sweep --out results.jsonl``) thread one through and
flush results incrementally instead of accumulating them.

Three built-in sinks:

* :class:`JsonlSink` — one JSON object per line, flushed per result.
  Crash-safe for long sweeps (every completed scenario is already on
  disk) and trivially streamable (``tail -f results.jsonl``).
* :class:`CsvSink` — one row per result; nested values (the per-pool
  attainment map) are JSON-encoded into their cell.
* :class:`InMemorySink` — keeps summaries keyed like ``run_grid``; the
  in-process default the streaming paths are measured against.

Every record is a flat :func:`summary_record` dict, so files written by
either file sink round-trip through :func:`read_jsonl` /
:func:`read_csv` (pinned by the property suite).

Durability contract
-------------------
The file sinks are restart-safe: opening one on an existing results
file **appends** — it never truncates — so a sweep killed 900 scenarios
into a 1000-scenario grid keeps its first 900 records.  ``count`` seeds
from the records already on disk, :class:`CsvSink` reuses the existing
header instead of writing a second one, and a *torn* final line left by
a crash mid-write is repaired on open (the partial record is dropped;
:func:`read_jsonl` / :func:`read_csv` tolerate it too).  The scenario
keys stored in the ``scenario`` column are the resume identity:
:func:`completed_keys` lists the keys already recorded successfully,
and the executors' ``resume=True`` (or a sink constructed with
``resume=True``) skips exactly those, so the rerun executes only the
missing scenarios.  A scenario that *raises* is recorded as a
structured :func:`error_record` (``error`` is non-``None``) via
:meth:`ResultSink.write_error`; error records do not count as
completed, so a resumed sweep retries them.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Dict, IO, List, Optional, Set

from repro.metrics.summary import RunSummary


def _open_error(path: str, error: OSError, verb: str) -> ValueError:
    """Normalise a raw :class:`OSError` into a short actionable message.

    The CLI surfaces ``ValueError`` text directly (no traceback), so the
    message must stand alone: it names the offending path, the OS
    reason, and what to do about it.
    """
    reason = error.strerror or str(error)
    if isinstance(error, FileNotFoundError):
        hint = (
            "check the path exists"
            if verb == "read"
            else "create the parent directory first"
        )
    elif isinstance(error, IsADirectoryError):
        hint = "pass a file path, not a directory"
    elif isinstance(error, PermissionError):
        hint = "check the file permissions"
    else:
        hint = "check the path"
    return ValueError(f"cannot {verb} results file {path!r} ({reason}) — {hint}")


class ResultsMismatchError(ValueError):
    """A results file does not belong to the sweep trying to resume it.

    Raised when a resume finds scenario keys on disk that the current
    grid does not contain: the file was written by a *different* grid
    (stale manifest, edited sweep arguments, wrong ``--out`` path).
    Silently ignoring the unknown keys used to mix two sweeps' records
    in one file and present the stale rows as this sweep's output —
    resume now refuses instead, pointing at a fresh output file.
    """


def summary_record(key: str, summary: RunSummary) -> Dict[str, object]:
    """Flatten one run summary into a JSON/CSV-serialisable record.

    The scoreboard fields come from :meth:`RunSummary.headline` (the one
    flattening of a summary — fields added there reach every sink and
    the CLI automatically); this wraps them with identity columns and
    the streaming carbon/cost totals (post-hoc accounting is the
    fallback for summaries produced without the default observer set).
    ``error`` is ``None`` on every successful record — it is the column
    :func:`error_record` fills (error records carry only the identity
    and error columns; the metric columns exist in the CSV header but
    stay empty for them).
    """
    record: Dict[str, object] = {
        "scenario": key,
        "policy": summary.policy,
        "trace": summary.trace,
        "duration_s": summary.duration_s,
    }
    record.update(summary.headline())
    # headline() reports counters as floats for its numeric scoreboard;
    # records keep them as the integers they are.
    record["requests"] = int(record["requests"])
    record["squashed"] = int(record["squashed"])
    record["reconfigurations"] = summary.reconfigurations
    record["carbon_kg"] = (
        summary.carbon.total_kg if summary.carbon is not None else summary.carbon_kg()
    )
    record["cost_usd"] = (
        summary.cost.total_usd if summary.cost is not None else summary.cost_usd()
    )
    record["pool_slo_attainment"] = dict(summary.pool_slo_attainment)
    record["error"] = None
    return record


def error_record(key: str, error: BaseException) -> Dict[str, object]:
    """The structured record of a scenario that raised instead of completing.

    Shares the ``scenario`` identity and ``error`` columns with
    :func:`summary_record` but carries no metric fields (there is no
    summary) — consumers should filter on ``record.get("error")``
    before indexing metric columns.  ``error`` holds
    ``"ExceptionType: message"`` with whitespace runs collapsed: a raw
    newline inside a CSV cell would leave a torn-row crash ambiguous
    (see ``CsvSink._repair``).  Records with a non-empty ``error`` are
    excluded from :func:`completed_keys`, so a resumed sweep reruns the
    failed scenario — its fresh record appends after the stale error
    record.
    """
    message = " ".join(f"{type(error).__name__}: {error}".split())
    return {
        "scenario": key,
        "error": message,
    }


#: Lazily-computed canonical column set of :func:`summary_record` (the
#: schema is static — identity columns + the headline scoreboard).
_RECORD_FIELDNAMES: Optional[List[str]] = None


def record_fieldnames() -> List[str]:
    """The canonical column order of :func:`summary_record`.

    Derived from an empty :class:`RunSummary`, so any field added to
    ``RunSummary.headline`` appears here automatically.  Lets
    :class:`CsvSink` write its header up front — before the first
    result, even if that result is an error record — keeping one schema
    across interrupted, failed and resumed sweeps.
    """
    global _RECORD_FIELDNAMES
    if _RECORD_FIELDNAMES is None:
        from repro.metrics.energy import EnergyAccount
        from repro.metrics.latency import LatencyStats
        from repro.metrics.power import PowerTimeSeries

        dummy = RunSummary(
            policy="", trace="", duration_s=0.0,
            energy=EnergyAccount(), latency=LatencyStats(),
            power=PowerTimeSeries(),
        )
        _RECORD_FIELDNAMES = list(summary_record("", dummy))
    return list(_RECORD_FIELDNAMES)


class ResultSink:
    """Receives one result at a time from a sweep executor.

    Subclasses implement :meth:`write`; :meth:`open` / :meth:`close`
    bracket the sweep (the executors call them via the context-manager
    protocol, so sinks are usable in ``with`` blocks directly).
    """

    #: Executors treat a truthy ``resume`` as ``resume=True``: scenarios
    #: whose keys :meth:`completed_keys` reports are skipped.
    resume: bool = False
    #: The executors attach a :class:`repro.api.executor.SweepReport`
    #: (ran / skipped / failed counts) here after a streamed sweep.
    report = None

    def open(self) -> None:  # pragma: no cover - hook
        """Called once before the first result."""

    def write(self, key: str, summary: RunSummary) -> None:
        """Called once per completed scenario, in completion order."""
        raise NotImplementedError

    def write_error(self, key: str, error: BaseException) -> None:
        """Called for a scenario that raised instead of completing.

        The default records nothing (the executor still counts the
        failure in its report); sinks that persist records should write
        an :func:`error_record` so the failure is visible in the file
        and the scenario is retried on resume.
        """

    def completed_keys(self, trace: Optional[str] = None) -> Set[str]:
        """Scenario keys already recorded successfully (for ``resume``).

        ``trace`` narrows the answer to records of that trace —
        ``run_policies`` keys records by bare policy name, so without
        the filter a sink reused across sweeps of *different* traces
        would skip each other's work.
        """
        return set()

    def recorded_keys(self, trace: Optional[str] = None) -> Set[str]:
        """Every scenario key with *any* record in the sink — errors too.

        The superset :meth:`completed_keys` draws from: error records
        count here (their scenario was attempted and is part of the
        sink's grid) even though they do not count as completed.  The
        executors compare this against the sweep's own keys when
        resuming, so a results file written by a different grid raises
        :class:`ResultsMismatchError` instead of silently mixing two
        sweeps' records in one file.  ``trace`` narrows to records of
        that trace, like :meth:`completed_keys` (error records carry no
        trace column, so the filter excludes them — they cannot be
        attributed to a trace).
        """
        return self.completed_keys(trace=trace)

    def scan_keys(self, trace: Optional[str] = None):
        """``(recorded, completed)`` key sets in one scan.

        What the executors' resume path calls: file sinks derive both
        sets from a single read of the results file instead of parsing
        it once per set.
        """
        return self.recorded_keys(trace), self.completed_keys(trace)

    def close(self) -> None:  # pragma: no cover - hook
        """Called once after the last result (also on error)."""

    def __enter__(self) -> "ResultSink":
        self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemorySink(ResultSink):
    """Accumulates summaries in memory, keyed like ``run_grid`` results."""

    def __init__(self) -> None:
        self.results: Dict[str, RunSummary] = {}
        self.errors: Dict[str, BaseException] = {}

    def write(self, key: str, summary: RunSummary) -> None:
        self.results[key] = summary

    def write_error(self, key: str, error: BaseException) -> None:
        self.errors[key] = error

    def completed_keys(self, trace: Optional[str] = None) -> Set[str]:
        if trace is None:
            return set(self.results)
        return {
            key for key, summary in self.results.items() if summary.trace == trace
        }

    def recorded_keys(self, trace: Optional[str] = None) -> Set[str]:
        if trace is None:
            return set(self.results) | set(self.errors)
        return self.completed_keys(trace=trace)

    def __len__(self) -> int:
        return len(self.results)


class _FileSink(ResultSink):
    """Append-only file sink base: restart seeding and torn-tail repair.

    Subclasses provide ``_repair(data)`` — given the file's current
    bytes, return ``(bytes_to_keep, record_count)``.  ``bytes_to_keep``
    below ``len(data)`` truncates a torn final record a crash mid-write
    left behind; ``len(data) + 1`` appends the newline a complete final
    record is missing.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        self.resume = resume
        #: Records in the file: seeded from disk on open, then
        #: incremented per write (success or error), so it always
        #: matches the file's record count.
        self.count = 0
        #: Successful / error records written by *this* sink instance.
        self.written = 0
        self.failed = 0
        self._handle: Optional[IO[str]] = None
        self._seeded = False

    def completed_keys(self, trace: Optional[str] = None) -> Set[str]:
        # Seed (and so repair a torn tail) *before* reading: a torn CSV
        # row can look complete to the reader while the repair is about
        # to truncate it — counting it as done would skip its scenario
        # and then delete its record.
        if not self._seeded:
            self._seed_from_disk()
        return completed_keys(self.path, trace=trace)

    def recorded_keys(self, trace: Optional[str] = None) -> Set[str]:
        # Same repair-before-read ordering as completed_keys.
        if not self._seeded:
            self._seed_from_disk()
        return recorded_keys(self.path, trace=trace)

    def scan_keys(self, trace: Optional[str] = None):
        # One repaired read serves both key sets.
        if not self._seeded:
            self._seed_from_disk()
        records = read_records(self.path)
        return (
            _keys_of(records, trace, completed_only=False),
            _keys_of(records, trace, completed_only=True),
        )

    def open(self) -> None:
        if self._handle is not None:
            return
        if not self._seeded:
            self._seed_from_disk()
        try:
            self._handle = open(self.path, "a", newline="", encoding="utf-8")
        except OSError as error:
            raise _open_error(self.path, error, "write") from None

    def _seed_from_disk(self) -> None:
        self._seeded = True
        try:
            handle = open(self.path, "rb+")
        except FileNotFoundError:
            return
        except OSError as error:
            raise _open_error(self.path, error, "open") from None
        with handle:
            data = handle.read()
            keep, self.count = self._repair(data)
            if keep < len(data):
                # Drop the torn final record a crash mid-write left
                # behind (never a complete record — those stay intact).
                handle.seek(keep)
                handle.truncate()
            elif keep > len(data):
                # A complete final record merely missing its newline
                # separator (written by another tool): terminate it so
                # the append starts on a fresh line.
                handle.write(b"\n")

    def _repair(self, data: bytes):  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class JsonlSink(_FileSink):
    """Appends one JSON line per result, flushed as soon as it completes.

    Opening the sink on an existing results file appends after the
    records already there (``count`` seeds from them); it never
    truncates.  With ``resume=True`` the executors additionally skip
    scenarios the file already records successfully.
    """

    def write(self, key: str, summary: RunSummary) -> None:
        if self._handle is None:
            self.open()
        self._write_line(summary_record(key, summary))
        self.written += 1

    def write_error(self, key: str, error: BaseException) -> None:
        if self._handle is None:
            self.open()
        self._write_line(error_record(key, error))
        self.failed += 1

    def _write_line(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        self.count += 1

    def _repair(self, data: bytes):
        keep = len(data)
        if data and not data.endswith(b"\n"):
            tail = data.rpartition(b"\n")[2]
            try:
                json.loads(tail.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                # Torn final line: keep everything before it.
                keep = len(data) - len(tail)
                data = data[:keep]
            else:
                # Complete record merely missing its newline: keep it
                # and have the base class write the separator.
                keep = len(data) + 1
        elif data:
            # A newline-terminated final line can still be torn (a
            # truncation landing exactly on the terminator).  The
            # readers tolerate it only while it is *last* — appending
            # after it would turn it into a hard read error — so the
            # repair must drop exactly what the readers drop.
            start = data[:-1].rfind(b"\n") + 1
            last = data[start:].strip()
            if last:
                try:
                    json.loads(last.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    keep = start
                    data = data[:keep]
        count = sum(1 for line in data.split(b"\n") if line.strip())
        return keep, count


class CsvSink(_FileSink):
    """Appends one CSV row per result; nested values are JSON-encoded.

    The header is the canonical :func:`record_fieldnames` schema,
    written up front on a fresh file — before the first result, so an
    error record arriving first (or an error-only sweep) leaves the
    same schema a successful sweep would.  Opening the sink on an
    existing results file reuses the header already there — ``count``
    seeds from the data rows and no second header is written; the file
    is never truncated.  Error records (:meth:`write_error`) fill the
    shared ``error`` column and leave the metric cells empty; columns
    the header does not name are dropped (an older file keeps its own
    schema consistently rather than gaining misaligned cells).
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        super().__init__(path, resume=resume)
        self._writer = None
        self._fieldnames: Optional[List[str]] = None
        self._has_header = False

    def open(self) -> None:
        super().open()
        if self._writer is None:
            if self._fieldnames is None:
                self._fieldnames = record_fieldnames()
            self._writer = csv.DictWriter(
                self._handle, fieldnames=self._fieldnames, restval=""
            )
            if not self._has_header:
                self._writer.writeheader()
                self._handle.flush()
                self._has_header = True

    def write(self, key: str, summary: RunSummary) -> None:
        if self._handle is None:
            self.open()
        self._write_row(summary_record(key, summary))
        self.written += 1

    def write_error(self, key: str, error: BaseException) -> None:
        if self._handle is None:
            self.open()
        if "error" not in self._fieldnames:
            # A header without the error column predates error records.
            # Writing the row anyway would strip the message, leaving a
            # record that reads as a *success* — the failed scenario
            # would never be retried.  Refuse loudly instead.
            raise ValueError(
                f"{self.path} has no 'error' column (written before error "
                f"records existed), so the failure of {key!r} cannot be "
                "recorded — rerun into a fresh results file"
            ) from error
        self._write_row(error_record(key, error))
        self.failed += 1

    def _write_row(self, record: Dict[str, object]) -> None:
        self._writer.writerow(
            {
                name: json.dumps(value) if isinstance(value, (dict, list)) else value
                for name, value in record.items()
                if name in self._writer.fieldnames
            }
        )
        self._handle.flush()
        self.count += 1

    def _repair(self, data: bytes):
        if data and not data.endswith(b"\n"):
            # The csv writer terminates every row (and error_record
            # keeps raw newlines out of cells), so a file not ending in
            # a newline was torn mid-row — keep the complete rows only.
            tail = data.rpartition(b"\n")[2]
            data = data[: len(data) - len(tail)]
        text = data.decode("utf-8")
        rows = list(csv.reader(io.StringIO(text))) if text.strip() else []
        if len(rows) > 1 and len(rows[-1]) < len(rows[0]):
            # A newline-terminated final row short of columns is the
            # other torn-write shape (truncation landing on the row
            # terminator).  ``read_csv`` tolerates it only while it is
            # last; drop it so appended records cannot strand it as a
            # corrupt middle row.
            start = data[:-1].rfind(b"\n") + 1
            data = data[:start]
            rows.pop()
        if rows:
            self._fieldnames = rows[0]
            self._has_header = True
        return len(data), max(0, len(rows) - 1)

    def close(self) -> None:
        super().close()
        self._writer = None


def sink_for_path(path: str, resume: bool = False) -> ResultSink:
    """The file sink matching ``path``'s extension (.jsonl/.ndjson or .csv).

    ``.json`` is rejected: the sink writes one JSON object per line
    (JSON Lines), and many objects on separate lines is not a valid
    ``.json`` document.
    """
    lowered = path.lower()
    if lowered.endswith(".csv"):
        return CsvSink(path, resume=resume)
    if lowered.endswith((".jsonl", ".ndjson")):
        return JsonlSink(path, resume=resume)
    if lowered.endswith(".json"):
        raise ValueError(
            f"refusing to write {path!r}: the sink streams one JSON object "
            "per line (JSON Lines), which is not a valid .json document — "
            "use a .jsonl or .ndjson extension"
        )
    raise ValueError(
        f"cannot infer sink format from {path!r}; use a .jsonl, .ndjson or "
        ".csv extension"
    )


# ----------------------------------------------------------------------
# Readers (round-trip counterparts of the file sinks)
# ----------------------------------------------------------------------
def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Records written by a :class:`JsonlSink`, in file order.

    A torn *final* line — the partial record a killed sweep leaves
    behind — is tolerated and dropped; an unparsable line anywhere else
    means the file is corrupt and raises ``ValueError``.
    """
    records: List[Dict[str, object]] = []
    try:
        handle = open(path, encoding="utf-8")
    except OSError as error:
        raise _open_error(path, error, "read") from None
    with handle:
        lines = [
            (number, line.strip())
            for number, line in enumerate(handle, start=1)
            if line.strip()
        ]
    for index, (number, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            if index == len(lines) - 1:
                break  # torn final record from a crash mid-write
            raise ValueError(
                f"{path}:{number}: unparsable JSONL record: {error}"
            ) from None
    return records


#: Identity columns of :func:`summary_record` — always strings, never
#: JSON-decoded on readback (a trace named "2024" must stay a string).
_STRING_COLUMNS = frozenset({"scenario", "policy", "trace"})


def read_csv(path: str) -> List[Dict[str, object]]:
    """Records written by a :class:`CsvSink`, in file order.

    Non-identity cells are decoded as JSON where possible (numbers,
    nested maps — Python float reprs round-trip exactly); identity
    columns and anything undecodable stay strings, and empty cells
    (``None`` values, or columns an :func:`error_record` left blank)
    decode to ``None``.  A short *final* row — torn by a crash
    mid-write — is dropped.
    """
    records: List[Dict[str, object]] = []
    try:
        handle = open(path, newline="", encoding="utf-8")
    except OSError as error:
        raise _open_error(path, error, "read") from None
    with handle:
        rows = list(csv.DictReader(handle, restval=None))
    for index, row in enumerate(rows):
        if any(value is None for value in row.values()):
            if index == len(rows) - 1:
                break  # torn final row from a crash mid-write
            raise ValueError(f"{path}: row {index + 1} is missing columns")
        record: Dict[str, object] = {}
        for name, cell in row.items():
            if name in _STRING_COLUMNS:
                record[name] = cell
                continue
            if cell == "":
                record[name] = None
                continue
            try:
                record[name] = json.loads(cell)
            except (json.JSONDecodeError, TypeError):
                record[name] = cell
        records.append(record)
    return records


def read_records(path: str) -> List[Dict[str, object]]:
    """Records from either file-sink format, dispatched on extension.

    The one reader every consumer (resume scans, campaign status /
    report roll-ups) goes through, so format dispatch and torn-line
    tolerance have a single home.  Missing files read as empty — a
    resumed sweep that never started is just a fresh sweep.
    """
    if not os.path.exists(path):
        return []
    if path.lower().endswith(".csv"):
        return read_csv(path)
    return read_jsonl(path)


def _keys_of(
    records: List[Dict[str, object]],
    trace: Optional[str],
    completed_only: bool,
) -> Set[str]:
    return {
        str(record["scenario"])
        for record in records
        if record.get("scenario") not in (None, "")
        and (not completed_only or not record.get("error"))
        and (trace is None or record.get("trace") == trace)
    }


def completed_keys(path: str, trace: Optional[str] = None) -> Set[str]:
    """Scenario keys with a successful record already in ``path``.

    Records whose ``error`` column is non-empty do **not** count: a
    resumed sweep retries scenarios that previously raised.  ``trace``
    keeps only records of that trace — the resume filter for record
    keys (policy names) that do not themselves encode the trace.
    """
    return _keys_of(read_records(path), trace, completed_only=True)


def recorded_keys(path: str, trace: Optional[str] = None) -> Set[str]:
    """Every scenario key with *any* record in ``path`` — errors included.

    The superset of :func:`completed_keys` the resume mismatch check
    compares against a sweep's own keys: an error record still names a
    scenario of the grid that wrote the file, so a key unknown to the
    current grid — errored or not — means the file belongs to a
    different sweep.  With ``trace`` set, only records of that trace
    count (error records carry no trace column and are excluded, as
    they cannot be attributed to a trace).
    """
    return _keys_of(read_records(path), trace, completed_only=False)
