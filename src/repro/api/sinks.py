"""Streamed result sinks for large scenario sweeps.

A 1000+-scenario grid should not hold every
:class:`~repro.metrics.summary.RunSummary` in memory until the sweep
ends.  A :class:`ResultSink` receives each summary *as it completes*:
the executors (:func:`repro.api.executor.runs` /
:func:`~repro.api.executor.run_grid` /
:func:`~repro.api.executor.run_policies`) and the CLI
(``python -m repro sweep --out results.jsonl``) thread one through and
flush results incrementally instead of accumulating them.

Three built-in sinks:

* :class:`JsonlSink` — one JSON object per line, flushed per result.
  Crash-safe for long sweeps (every completed scenario is already on
  disk) and trivially streamable (``tail -f results.jsonl``).
* :class:`CsvSink` — one row per result; nested values (the per-pool
  attainment map) are JSON-encoded into their cell.
* :class:`InMemorySink` — keeps summaries keyed like ``run_grid``; the
  in-process default the streaming paths are measured against.

Every record is a flat :func:`summary_record` dict, so files written by
either file sink round-trip through :func:`read_jsonl` /
:func:`read_csv` (pinned by the property suite).
"""

from __future__ import annotations

import csv
import json
from typing import Dict, IO, List, Optional

from repro.metrics.summary import RunSummary


def summary_record(key: str, summary: RunSummary) -> Dict[str, object]:
    """Flatten one run summary into a JSON/CSV-serialisable record.

    The scoreboard fields come from :meth:`RunSummary.headline` (the one
    flattening of a summary — fields added there reach every sink and
    the CLI automatically); this wraps them with identity columns and
    the streaming carbon/cost totals (post-hoc accounting is the
    fallback for summaries produced without the default observer set).
    """
    record: Dict[str, object] = {
        "scenario": key,
        "policy": summary.policy,
        "trace": summary.trace,
        "duration_s": summary.duration_s,
    }
    record.update(summary.headline())
    # headline() reports counters as floats for its numeric scoreboard;
    # records keep them as the integers they are.
    record["requests"] = int(record["requests"])
    record["squashed"] = int(record["squashed"])
    record["reconfigurations"] = summary.reconfigurations
    record["carbon_kg"] = (
        summary.carbon.total_kg if summary.carbon is not None else summary.carbon_kg()
    )
    record["cost_usd"] = (
        summary.cost.total_usd if summary.cost is not None else summary.cost_usd()
    )
    record["pool_slo_attainment"] = dict(summary.pool_slo_attainment)
    return record


class ResultSink:
    """Receives one result at a time from a sweep executor.

    Subclasses implement :meth:`write`; :meth:`open` / :meth:`close`
    bracket the sweep (the executors call them via the context-manager
    protocol, so sinks are usable in ``with`` blocks directly).
    """

    def open(self) -> None:  # pragma: no cover - hook
        """Called once before the first result."""

    def write(self, key: str, summary: RunSummary) -> None:
        """Called once per completed scenario, in completion order."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - hook
        """Called once after the last result (also on error)."""

    def __enter__(self) -> "ResultSink":
        self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemorySink(ResultSink):
    """Accumulates summaries in memory, keyed like ``run_grid`` results."""

    def __init__(self) -> None:
        self.results: Dict[str, RunSummary] = {}

    def write(self, key: str, summary: RunSummary) -> None:
        self.results[key] = summary

    def __len__(self) -> int:
        return len(self.results)


class JsonlSink(ResultSink):
    """Appends one JSON line per result, flushed as soon as it completes."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.count = 0
        self._handle: Optional[IO[str]] = None
        self._opened_once = False

    def open(self) -> None:
        if self._handle is None:
            # First open truncates; reuse across sweeps appends, so
            # `count` always matches the file's line count.
            self._handle = open(
                self.path, "a" if self._opened_once else "w", encoding="utf-8"
            )
            self._opened_once = True

    def write(self, key: str, summary: RunSummary) -> None:
        if self._handle is None:
            self.open()
        self._handle.write(json.dumps(summary_record(key, summary)) + "\n")
        self._handle.flush()
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CsvSink(ResultSink):
    """Appends one CSV row per result; nested values are JSON-encoded.

    The header is taken from the first record (all records share the
    :func:`summary_record` schema).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.count = 0
        self._handle: Optional[IO[str]] = None
        self._writer = None
        self._opened_once = False

    def open(self) -> None:
        if self._handle is None:
            # First open truncates and writes the header; reuse appends.
            self._handle = open(
                self.path, "a" if self._opened_once else "w",
                newline="", encoding="utf-8",
            )
            self._opened_once = True

    def write(self, key: str, summary: RunSummary) -> None:
        if self._handle is None:
            self.open()
        record = summary_record(key, summary)
        if self._writer is None:
            self._writer = csv.DictWriter(self._handle, fieldnames=list(record))
            if self.count == 0:
                self._writer.writeheader()
        self._writer.writerow(
            {
                name: json.dumps(value) if isinstance(value, (dict, list)) else value
                for name, value in record.items()
            }
        )
        self._handle.flush()
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._writer = None


def sink_for_path(path: str) -> ResultSink:
    """The file sink matching ``path``'s extension (.jsonl/.json or .csv)."""
    lowered = path.lower()
    if lowered.endswith(".csv"):
        return CsvSink(path)
    if lowered.endswith((".jsonl", ".json", ".ndjson")):
        return JsonlSink(path)
    raise ValueError(
        f"cannot infer sink format from {path!r}; use a .jsonl or .csv extension"
    )


# ----------------------------------------------------------------------
# Readers (round-trip counterparts of the file sinks)
# ----------------------------------------------------------------------
def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Records written by a :class:`JsonlSink`, in file order."""
    records: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


#: Identity columns of :func:`summary_record` — always strings, never
#: JSON-decoded on readback (a trace named "2024" must stay a string).
_STRING_COLUMNS = frozenset({"scenario", "policy", "trace"})


def read_csv(path: str) -> List[Dict[str, object]]:
    """Records written by a :class:`CsvSink`, in file order.

    Non-identity cells are decoded as JSON where possible (numbers,
    nested maps — Python float reprs round-trip exactly); identity
    columns and anything undecodable stay strings.
    """
    records: List[Dict[str, object]] = []
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            record: Dict[str, object] = {}
            for name, cell in row.items():
                if name in _STRING_COLUMNS:
                    record[name] = cell
                    continue
                try:
                    record[name] = json.loads(cell)
                except (json.JSONDecodeError, TypeError):
                    record[name] = cell
            records.append(record)
    return records
