"""Unified experiment-facing API: scenarios, engine, observers, executors.

This layer replaces the monolithic ``run_policy_on_trace`` loop with
three composable pieces:

* :mod:`repro.api.scenario` — immutable :class:`Scenario` descriptions,
  :class:`TraceSpec` recipes and the :func:`sweep` grid combinator;
* :mod:`repro.api.engine` — the stepped :class:`SimulationEngine`
  emitting typed events to pluggable :class:`Observer` collectors;
* :mod:`repro.api.executor` — :func:`runs` / :func:`run_grid` /
  :func:`run_policies` with optional thread-parallel execution.

Quickstart::

    from repro.api import TraceSpec, run_grid, sweep

    grid = sweep(
        policies=("SinglePool", "DynamoLLM"),
        traces=(TraceSpec(service="conversation", rate_scale=10.0, duration_s=600.0),),
        accuracies=(None, 0.8),
    )
    summaries = run_grid(grid, workers=4, lean=True)
    for key, summary in summaries.items():
        print(key, summary.energy_kwh)
"""

from repro.api.engine import SimulationEngine
from repro.api.executor import run_grid, run_policies, run_scenario, runs
from repro.api.observers import (
    CarbonObserver,
    CostObserver,
    EnergyObserver,
    EpochReconfigured,
    LatencyObserver,
    Observer,
    PowerObserver,
    ReconfigurationObserver,
    RequestRouted,
    RunFinished,
    RunStarted,
    ServerCountObserver,
    SLOAttainmentObserver,
    StepCompleted,
    TimelineObserver,
    default_observers,
)
from repro.api.scenario import Scenario, ScenarioGrid, TraceSpec, sweep

__all__ = [
    "SimulationEngine",
    "Scenario",
    "ScenarioGrid",
    "TraceSpec",
    "sweep",
    "run_scenario",
    "runs",
    "run_grid",
    "run_policies",
    "Observer",
    "default_observers",
    "CarbonObserver",
    "CostObserver",
    "SLOAttainmentObserver",
    "EnergyObserver",
    "LatencyObserver",
    "PowerObserver",
    "ServerCountObserver",
    "TimelineObserver",
    "ReconfigurationObserver",
    "RunStarted",
    "RequestRouted",
    "EpochReconfigured",
    "StepCompleted",
    "RunFinished",
]
