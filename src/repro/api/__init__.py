"""Unified experiment-facing API: scenarios, engine, observers, executors.

This layer replaces the monolithic ``run_policy_on_trace`` loop with
three composable pieces:

* :mod:`repro.api.scenario` — immutable :class:`Scenario` descriptions
  (including the simulation ``backend``), :class:`TraceSpec` recipes and
  the :func:`sweep` grid combinator;
* :mod:`repro.api.engine` — the stepped per-request
  :class:`SimulationEngine` emitting typed events to pluggable
  :class:`Observer` collectors;
* :mod:`repro.api.fluid_engine` — the :class:`FluidEngine` adapter that
  runs the binned fluid simulator behind the same stepped/observed
  interface (``Scenario(backend="fluid")``);
* :mod:`repro.api.executor` — :func:`runs` / :func:`run_grid` /
  :func:`run_policies` with optional thread-parallel execution;
* :mod:`repro.api.sinks` — streamed :class:`ResultSink` outputs
  (:class:`JsonlSink` / :class:`CsvSink` / :class:`InMemorySink`) so
  1000+-scenario sweeps flush results incrementally.  File sinks are
  append-only and restart-safe: ``resume=True`` (on the sink or the
  executor) skips scenarios already recorded, scenarios that raise
  become structured error records instead of aborting the sweep, and
  ``completed_keys(path)`` lists what a results file already holds;
* :mod:`repro.api.campaign` — manifest-driven campaigns on top of all
  of it: a JSON/TOML manifest describes the grid, sharding and a report
  recipe, and :class:`CampaignRunner` expands, validates, shards, runs
  (resumably) and pivots the results into the paper's sensitivity
  tables (``python -m repro campaign run|status|report``).

Quickstart::

    from repro.api import TraceSpec, run_grid, sweep

    grid = sweep(
        policies=("SinglePool", "DynamoLLM"),
        traces=(TraceSpec(service="conversation", rate_scale=10.0, duration_s=600.0),),
        accuracies=(None, 0.8),
    )
    summaries = run_grid(grid, workers=4, lean=True)
    for key, summary in summaries.items():
        print(key, summary.energy_kwh)

Streaming a week-long fluid sweep to disk::

    from repro.api import JsonlSink, TraceSpec, run_grid, sweep

    grid = sweep(
        policies=("SinglePool", "DynamoLLM"),
        traces=(TraceSpec(kind="week", service="conversation", rate_scale=40.0),),
        backends=("fluid",),
    )
    run_grid(grid, sink=JsonlSink("results.jsonl"))
"""

from repro.api.campaign import (
    CampaignManifest,
    CampaignRunner,
    CampaignStatus,
    ManifestError,
    ReportSpec,
    ReportTable,
    build_report,
    expand_manifest,
    load_manifest,
    manifest_from_dict,
    shard_path,
    shard_scenarios,
)
from repro.api.engine import SimulationEngine
from repro.api.executor import SweepReport, run_grid, run_policies, run_scenario, runs
from repro.api.fluid_engine import FluidEngine
from repro.api.sinks import (
    CsvSink,
    InMemorySink,
    JsonlSink,
    ResultsMismatchError,
    ResultSink,
    completed_keys,
    error_record,
    read_csv,
    read_jsonl,
    read_records,
    record_fieldnames,
    recorded_keys,
    sink_for_path,
    summary_record,
)
from repro.api.observers import (
    CarbonObserver,
    CostObserver,
    EnergyObserver,
    EpochReconfigured,
    LatencyObserver,
    Observer,
    PowerObserver,
    ReconfigurationObserver,
    RequestRouted,
    RunFinished,
    RunStarted,
    ServerCountObserver,
    SLOAttainmentObserver,
    StepCompleted,
    TimelineObserver,
    default_observers,
)
from repro.api.scenario import BACKENDS, Scenario, ScenarioGrid, TraceSpec, sweep
from repro.workload.traces import BinnedTrace

__all__ = [
    "SimulationEngine",
    "FluidEngine",
    "Scenario",
    "ScenarioGrid",
    "TraceSpec",
    "BinnedTrace",
    "BACKENDS",
    "sweep",
    "run_scenario",
    "runs",
    "run_grid",
    "run_policies",
    "ResultSink",
    "JsonlSink",
    "CsvSink",
    "InMemorySink",
    "SweepReport",
    "sink_for_path",
    "summary_record",
    "error_record",
    "record_fieldnames",
    "completed_keys",
    "recorded_keys",
    "read_jsonl",
    "read_csv",
    "read_records",
    "ResultsMismatchError",
    "CampaignManifest",
    "CampaignRunner",
    "CampaignStatus",
    "ManifestError",
    "ReportSpec",
    "ReportTable",
    "build_report",
    "expand_manifest",
    "load_manifest",
    "manifest_from_dict",
    "shard_scenarios",
    "shard_path",
    "Observer",
    "default_observers",
    "CarbonObserver",
    "CostObserver",
    "SLOAttainmentObserver",
    "EnergyObserver",
    "LatencyObserver",
    "PowerObserver",
    "ServerCountObserver",
    "TimelineObserver",
    "ReconfigurationObserver",
    "RunStarted",
    "RequestRouted",
    "EpochReconfigured",
    "StepCompleted",
    "RunFinished",
]
