"""The fluid (binned) simulation backend behind the Scenario API.

:class:`FluidEngine` adapts the discrete-time
:class:`~repro.experiments.fluid.FluidRunner` — the simulator the
paper's large-scale results (Figures 14-16, cost analysis) come from —
to the same stepped interface as the per-request
:class:`~repro.api.engine.SimulationEngine`: :meth:`step` advances one
trace bin, typed events (:class:`~repro.api.observers.RunStarted`,
:class:`~repro.api.observers.EpochReconfigured`,
:class:`~repro.api.observers.StepCompleted` per bin,
:class:`~repro.api.observers.RunFinished`) flow to the same pluggable
:class:`~repro.api.observers.Observer` collectors, and :meth:`run`
returns a :class:`~repro.metrics.summary.RunSummary`.

Fidelity contract
-----------------
The engine consumes :meth:`FluidRunner.steps` — the *same* per-bin loop
``FluidRunner.run`` integrates — so its energy, GPU-hour, carbon and
reconfiguration accounting is byte-for-byte identical to the
:class:`~repro.experiments.fluid.FluidResult` of a direct run (the
equivalence suite in ``tests/test_backends.py`` pins this).  What the
fluid backend cannot provide is request-level telemetry: summaries carry
no latency percentiles (``latency`` stays empty, SLO attainment reports
1.0), no per-request outcomes and no frequency/TP timelines.  Events
differ from the event backend accordingly:

* ``RunStarted.policy`` and ``RunFinished.cluster`` are ``None`` — there
  is no live controller or cluster object;
* ``StepCompleted.stats`` is a
  :class:`~repro.experiments.fluid.FluidStepStats` (duck-typed like the
  cluster's ``StepStats``; ``outcomes`` always empty);
* one ``EpochReconfigured(kind="scale")`` fires per pool whose GPU
  allocation changed between bins.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.api.observers import (
    EpochReconfigured,
    Observer,
    ObserverDispatch,
    RunFinished,
    RunStarted,
    StepCompleted,
    default_observers,
)
from repro.experiments.fluid import FluidResult, FluidRunner, FluidStepStats
from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import LatencyStats
from repro.metrics.power import PowerTimeSeries
from repro.metrics.summary import RunSummary
from repro.policies.base import PolicySpec
from repro.workload.classification import DEFAULT_SCHEME
from repro.workload.traces import BinnedTrace, Trace, TraceBin, bin_trace


class FluidEngine(ObserverDispatch):
    """Run one policy over one binned trace, bin by bin.

    Parameters
    ----------
    spec:
        The policy to simulate.
    trace:
        The trace to serve: a pre-binned :class:`BinnedTrace`, a raw
        ``TraceBin`` sequence, or a request-level :class:`Trace` (binned
        into ``config.fluid_bin_s``-wide bins).
    config:
        Simulation configuration; defaults to ``ExperimentConfig()``.
        ``model``, ``profile``, ``scheme`` and ``fluid_bin_s`` are
        honoured; request-level knobs (time step, predictor, drain,
        ``max_servers`` — fluid pools are elastic by construction) do
        not apply to the fluid simulator, and a pinned
        ``static_servers`` is rejected rather than silently ignored
        (see below).
    observers:
        Metric collectors to attach.  ``None`` attaches the summary
        observer set (``default_observers(lean=True)``) — the timeline
        observer needs the live controller the fluid backend does not
        have.
    static_budgets / fine_budgets:
        Optional precomputed static-server budgets (see
        :meth:`FluidRunner.run`); sweep executors pass ``fine_budgets``
        so grid members sharing a trace size the baseline cluster once.
    """

    def __init__(
        self,
        spec: PolicySpec,
        trace: Union[BinnedTrace, Trace, Sequence[TraceBin]],
        config=None,
        observers: Optional[Sequence[Observer]] = None,
        lean: bool = False,
        static_budgets=None,
        fine_budgets=None,
        trace_name: Optional[str] = None,
    ) -> None:
        from repro.experiments.runner import ExperimentConfig

        self.spec = spec
        self.config = config or ExperimentConfig()
        if self.config.static_servers is not None and static_budgets is None:
            # Silently ignoring the pinned event-backend budget would
            # corrupt cross-backend comparisons; the fluid simulator
            # sizes per-pool budgets from binned peaks instead.
            raise ValueError(
                "static_servers is event-backend configuration; the fluid "
                "backend provisions per-pool budgets from the binned trace "
                "peaks — pass static_budgets= to FluidEngine/FluidRunner to "
                "pin them explicitly"
            )

        if isinstance(trace, BinnedTrace):
            bins, name = trace.bins, trace.name
        elif isinstance(trace, Trace):
            bins = bin_trace(trace, self.config.fluid_bin_s)
            name = trace.name
        else:
            bins, name = list(trace), "bins"
        self.bins: List[TraceBin] = list(bins)
        self.trace_name = trace_name or name

        self.runner = FluidRunner(
            model=self.config.model,
            scheme=self.config.scheme or DEFAULT_SCHEME,
            profile=self.config.resolved_profile(),
        )
        self._steps = self.runner.steps(
            spec, self.bins, static_budgets=static_budgets, fine_budgets=fine_budgets
        )

        if observers is None:
            # lean has no effect on the default fluid set: the timeline
            # observer is inapplicable either way, and the summary
            # observers are already cheap (one sample per bin).
            observers = default_observers(slo_policy=self.config.slo_policy, lean=True)
        self.observers: List[Observer] = list(observers)

        # Stepping state / run accounting (mirrors FluidRunner.run).
        self.now = 0.0
        self._energy_wh = 0.0
        self._gpu_seconds = 0.0
        self._energy_timeline = []
        self._servers_timeline = []
        self._reconfigurations = 0
        self._started = False
        self._finished = False
        self._epoch_listeners: List[Observer] = []
        self._step_listeners: List[Observer] = []

    # ------------------------------------------------------------------
    # Stepping (observer dispatch shared via ObserverDispatch)
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._epoch_listeners = self._listeners("on_epoch_reconfigured")
        self._step_listeners = self._listeners("on_step_completed")
        started_listeners = self._listeners("on_run_started")
        if started_listeners:
            self._emit(
                started_listeners,
                "on_run_started",
                RunStarted(
                    time=0.0,
                    policy_name=self.spec.name,
                    trace_name=self.trace_name,
                    policy=None,  # no live controller in the fluid backend
                    config=self.config,
                ),
            )
        self._started = True

    def step(self) -> bool:
        """Advance the simulation by one trace bin.

        Returns ``True`` while bins remain and ``False`` once the trace
        is exhausted.
        """
        if not self._started:
            self._start()
        if self._finished:
            return False
        stats: Optional[FluidStepStats] = next(self._steps, None)
        if stats is None:
            self._finished = True
            return False

        # Accumulate exactly as FluidRunner.run does (same order).
        self._energy_wh += stats.energy_wh
        self._gpu_seconds += stats.online_gpus * stats.dt
        self._energy_timeline.append((stats.time, stats.energy_wh))
        self._servers_timeline.append((stats.time, stats.online_servers))
        self._reconfigurations += len(stats.reconfigured_pools)

        if self._step_listeners:
            self._emit(
                self._step_listeners,
                "on_step_completed",
                StepCompleted(time=stats.time, dt=stats.dt, stats=stats, policy=None),
            )
        if self._epoch_listeners:
            for _pool in stats.reconfigured_pools:
                self._emit(
                    self._epoch_listeners,
                    "on_epoch_reconfigured",
                    EpochReconfigured(time=stats.time, kind="scale"),
                )
        self.now = stats.time + stats.dt
        return True

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------
    def run(self) -> RunSummary:
        """Drive the simulation to completion and build the summary."""
        while self.step():
            pass
        finished_listeners = self._listeners("on_run_finished")
        if finished_listeners:
            self._emit(
                finished_listeners,
                "on_run_finished",
                RunFinished(time=self.now, cluster=None),
            )
        return self.summary()

    def result(self) -> FluidResult:
        """The run's accounting as a :class:`FluidResult`.

        Field-for-field what ``FluidRunner.run`` would have returned for
        the same policy and bins (the shared ``steps`` loop guarantees
        it).
        """
        if self.bins:
            last = self.bins[-1]
            duration = last.start_time + last.duration
        else:
            duration = 0.0
        return FluidResult(
            policy=self.spec.name,
            duration_s=duration,
            energy_wh=self._energy_wh,
            gpu_hours=self._gpu_seconds / 3600.0,
            energy_timeline_wh=list(self._energy_timeline),
            servers_timeline=list(self._servers_timeline),
            reconfigurations=self._reconfigurations,
        )

    def summary(self) -> RunSummary:
        """Assemble the RunSummary from engine state and the observers.

        ``gpu_hours``, ``average_servers`` (time-weighted, matching
        :attr:`FluidResult.average_servers`) and ``reconfigurations``
        come from the fluid accounting; everything observable flows
        through the observers exactly as on the event backend.
        """
        result = self.result()
        summary = RunSummary(
            policy=self.spec.name,
            trace=self.trace_name,
            duration_s=result.duration_s,
            energy=EnergyAccount(),
            latency=LatencyStats(slo_policy=self.config.slo_policy),
            power=PowerTimeSeries(),
        )
        for observer in self.observers:
            observer.contribute(summary)
        # The fluid accounting is authoritative for the whole-run
        # aggregates: a ServerCountObserver's plain sample mean would
        # miscount uneven bins, so the time-weighted value wins.
        summary.gpu_hours = result.gpu_hours
        summary.average_servers = result.average_servers
        summary.reconfigurations = result.reconfigurations
        return summary
