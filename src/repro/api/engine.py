"""The stepped simulation engine behind every request-level experiment.

:class:`SimulationEngine` is the legacy ``run_policy_on_trace`` while
loop refactored into an explicit engine: construction wires the cluster,
predictor and policy exactly as before; :meth:`step` advances one time
step; :meth:`run` drives the loop to completion and assembles the
:class:`~repro.metrics.summary.RunSummary` from its observers.

Metric collection lives entirely in pluggable
:class:`~repro.api.observers.Observer` instances — the engine only emits
typed events (:class:`~repro.api.observers.RunStarted`,
:class:`~repro.api.observers.RequestRouted`,
:class:`~repro.api.observers.EpochReconfigured`,
:class:`~repro.api.observers.StepCompleted`,
:class:`~repro.api.observers.RunFinished`).  With the default observer
set the resulting summary is field-for-field identical to the legacy
runner's; ``lean=True`` drops the timeline collectors for faster sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.api.observers import (
    EpochReconfigured,
    Observer,
    ObserverDispatch,
    RequestRouted,
    RunFinished,
    RunStarted,
    StepCompleted,
    default_observers,
)
from repro.cluster.cluster import GPUCluster
from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import LatencyStats
from repro.metrics.power import PowerTimeSeries
from repro.metrics.summary import RunSummary
from repro.policies.base import PolicySpec, build_policy
from repro.sim.clock import SimClock
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.traces import Trace


class SimulationEngine(ObserverDispatch):
    """Run one policy over one request-level trace, step by step.

    Parameters
    ----------
    spec:
        The policy to simulate.
    trace:
        The request-level trace to serve.
    config:
        Simulation configuration; defaults to ``ExperimentConfig()``.
    observers:
        Metric collectors to attach.  ``None`` attaches the default set
        (energy, latency, power, server counts, and — unless ``lean`` —
        the frequency/sharding timelines).
    lean:
        When ``True``, attach only the summary observers (if
        ``observers`` is ``None``) and disable per-step history
        retention on the cluster and its instances, so memory stays
        bounded regardless of horizon.  Large sweeps that never look at
        timelines run measurably faster this way.
    vectorized:
        When ``True`` (the default) the per-step admission slice comes
        from a ``numpy.searchsorted`` over the trace's arrival-time
        column instead of a per-request Python walk.  The engine falls
        back to the scalar walk automatically when the trace's arrivals
        are not sorted; both paths route exactly the same requests at
        exactly the same step.
    load_fractions / warm_loads:
        Optional precomputed capacity-planning inputs (the executor
        caches them per trace x scheme so grid members sharing a trace
        do not re-bin it).  When omitted they are derived from the
        trace, exactly as the legacy runner did.
    """

    def __init__(
        self,
        spec: PolicySpec,
        trace: Trace,
        config=None,
        observers: Optional[Sequence[Observer]] = None,
        lean: bool = False,
        load_fractions=None,
        warm_loads=None,
        vectorized: bool = True,
    ) -> None:
        from repro.experiments.runner import ExperimentConfig, resolve_static_servers

        self.spec = spec
        self.trace = trace
        self.config = config or ExperimentConfig()
        self.profile = self.config.resolved_profile()
        self.scheme = spec.scheme(self.config.scheme)

        self.static_servers = resolve_static_servers(self.config, trace, self.profile)
        max_servers = max(self.config.max_servers, self.static_servers)

        self.cluster = GPUCluster(
            model=self.config.model,
            initial_servers=0,
            max_servers=max_servers,
            proactive_provisioning=spec.proactive_provisioning,
            optimized_frequency_switching=spec.optimized_frequency_switching,
            record_history=not lean,
        )
        predictor = OutputLengthPredictor(
            accuracy=self.config.predictor_accuracy, seed=self.config.predictor_seed
        )
        from repro.experiments.runner import load_fractions_from_trace, pool_loads_from_trace

        fractions = (
            load_fractions
            if load_fractions is not None
            else load_fractions_from_trace(trace, self.scheme)
        )
        self.policy = build_policy(
            spec,
            model=self.config.model,
            cluster=self.cluster,
            profile=self.profile,
            static_servers=self.static_servers,
            expected_load_fractions=fractions,
            slo_policy=self.config.slo_policy,
            predictor=predictor,
            scheme=self.config.scheme,
            epochs=self.config.epochs,
        )
        self.policy.epoch_listener = self._on_epoch
        self._warm_loads = (
            warm_loads if warm_loads is not None else pool_loads_from_trace(trace, self.scheme)
        )

        if observers is None:
            observers = default_observers(slo_policy=self.config.slo_policy, lean=lean)
        self.observers: List[Observer] = list(observers)

        # Stepping state.  Time is derived from an integer step counter
        # (``step * dt`` via SimClock) rather than repeated float
        # addition, so long horizons cannot accumulate rounding drift
        # that mis-bins boundary arrivals.
        self._requests = list(trace.requests)
        self._request_index = 0
        self._dt = self.config.time_step_s
        self._clock = SimClock(time_step=self._dt)
        self._horizon = trace.duration + self._dt
        self._drain_deadline = self._horizon + self.config.drain_timeout_s
        # Arrival-time column for the vectorized admission slice.  The
        # scalar walk remains as a fallback for unsorted request lists
        # (Trace sorts on construction, but the engine does not assume).
        self._arrivals = np.array(
            [request.arrival_time for request in self._requests], dtype=float
        )
        sorted_arrivals = bool(np.all(np.diff(self._arrivals) >= 0.0))
        self._vectorized = vectorized and sorted_arrivals
        self.now = 0.0
        self.reconfigurations = 0
        self._started = False
        self._finished = False
        # Per-hook dispatch lists, computed at start (see _listeners).
        self._epoch_listeners: List[Observer] = []
        self._route_listeners: List[Observer] = []
        self._step_listeners: List[Observer] = []
        self._full_stats = True

    # ------------------------------------------------------------------
    # Observer plumbing (dispatch machinery shared via ObserverDispatch)
    # ------------------------------------------------------------------
    def _on_epoch(self, kind: str, now: float) -> None:
        self.reconfigurations += 1
        if self._epoch_listeners:
            self._emit(
                self._epoch_listeners,
                "on_epoch_reconfigured",
                EpochReconfigured(time=now, kind=kind),
            )

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._epoch_listeners = self._listeners("on_epoch_reconfigured")
        self._route_listeners = self._listeners("on_request_routed")
        self._step_listeners = self._listeners("on_step_completed")
        # Lean fast path: when no attached step listener consumes the
        # timeline fields (or nobody listens at all), the cluster skips
        # the per-pool/per-TP stats bookkeeping every step.
        self._full_stats = any(
            observer.requires_full_step_stats for observer in self._step_listeners
        )
        self.policy.setup(0.0, warm_loads=self._warm_loads)
        started_listeners = self._listeners("on_run_started")
        if started_listeners:
            self._emit(
                started_listeners,
                "on_run_started",
                RunStarted(
                    time=0.0,
                    policy_name=self.spec.name,
                    trace_name=self.trace.name,
                    policy=self.policy,
                    config=self.config,
                ),
            )
        self._started = True

    def step(self) -> bool:
        """Advance the simulation by one time step.

        Returns ``True`` while the simulation should keep stepping and
        ``False`` once the trace is served and the cluster drained (or
        the drain deadline passed).
        """
        if not self._started:
            self._start()
        if self._finished or self.now >= self._drain_deadline:
            self._finished = True
            return False

        now, dt = self.now, self._dt
        # The admission boundary is the *next* step's clock time, so
        # every request falls into exactly one step no matter how long
        # the horizon is (boundaries are computed as k*dt, not
        # accumulated additions).
        boundary = self._clock.time_of_step(self._clock.step + 1)
        if self._vectorized:
            end = int(np.searchsorted(self._arrivals, boundary, side="left"))
            route = self.policy.route
            if self._route_listeners:
                for index in range(self._request_index, end):
                    request = self._requests[index]
                    route(request, now)
                    self._emit(
                        self._route_listeners,
                        "on_request_routed",
                        RequestRouted(time=now, request=request),
                    )
            else:
                for index in range(self._request_index, end):
                    route(self._requests[index], now)
            self._request_index = end
        else:
            while (
                self._request_index < len(self._requests)
                and self._requests[self._request_index].arrival_time < boundary
            ):
                request = self._requests[self._request_index]
                self.policy.route(request, now)
                if self._route_listeners:
                    self._emit(
                        self._route_listeners,
                        "on_request_routed",
                        RequestRouted(time=now, request=request),
                    )
                self._request_index += 1

        self.policy.on_step(now, dt)
        stats = self.cluster.step(now, dt, full_stats=self._full_stats)
        if self._step_listeners:
            self._emit(
                self._step_listeners,
                "on_step_completed",
                StepCompleted(time=now, dt=dt, stats=stats, policy=self.policy),
            )

        self.now = self._clock.advance()
        if self.now >= self._horizon and self._request_index >= len(self._requests):
            in_flight = sum(i.active_requests for i in self.cluster.instances.values())
            if in_flight == 0:
                self._finished = True
                return False
        if self.now >= self._drain_deadline:
            self._finished = True
            return False
        return True

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------
    def run(self) -> RunSummary:
        """Drive the simulation to completion and build the summary."""
        while self.step():
            pass
        finished_listeners = self._listeners("on_run_finished")
        if finished_listeners:
            self._emit(
                finished_listeners,
                "on_run_finished",
                RunFinished(time=self.now, cluster=self.cluster),
            )
        return self.summary()

    def summary(self) -> RunSummary:
        """Assemble the RunSummary from engine state and the observers."""
        summary = RunSummary(
            policy=self.spec.name,
            trace=self.trace.name,
            duration_s=self.now,
            energy=EnergyAccount(),
            latency=LatencyStats(slo_policy=self.config.slo_policy),
            power=PowerTimeSeries(),
            gpu_hours=self.cluster.gpu_hours,
            squashed_requests=self.policy.total_squashed(),
            routed_requests=self.policy.routed_requests,
            reconfigurations=self.reconfigurations,
        )
        for observer in self.observers:
            observer.contribute(summary)
        return summary
