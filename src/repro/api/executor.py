"""Scenario executors: serial and parallel sweep running.

``run_scenario`` runs one :class:`~repro.api.scenario.Scenario` on the
:class:`~repro.api.engine.SimulationEngine`.  ``runs`` and ``run_grid``
execute many scenarios, serially or on a ``concurrent.futures`` pool;
results come back in input order (``runs``) or keyed by
:attr:`Scenario.key` (``run_grid``) and are identical across execution
modes (every engine owns its RNG streams, and parallel thread runs get
private copies of shared request objects).

Two parallel modes:

* ``mode="thread"`` (default) — works everywhere, nothing to pickle.
  The simulation is pure CPU-bound Python, so the GIL limits the
  speedup; threads mainly help once scenario setup or observers do I/O.
* ``mode="process"`` — true multi-core parallelism for large sweeps on
  multi-core machines; scenarios and summaries must pickle (they do for
  everything in-tree) and each worker pays a fork/spawn cost, so prefer
  it when individual scenarios run for seconds, not milliseconds.

``run_policies`` is the engine-backed successor of the legacy
``run_all_policies``: it runs several policies over one trace with a
shared static-server budget — computed into a local copy of the config,
never written back onto the caller's.
"""

from __future__ import annotations

import copy
import dataclasses
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.engine import SimulationEngine
from repro.api.scenario import Scenario, ScenarioGrid
from repro.metrics.summary import RunSummary
from repro.policies.base import PolicySpec
from repro.workload.traces import Trace

#: (scenario, trace, config, load_fractions, warm_loads)
_Job = Tuple[Scenario, Trace, object, dict, dict]


def run_scenario(
    scenario: Scenario,
    lean: bool = False,
    observers=None,
    trace: Optional[Trace] = None,
) -> RunSummary:
    """Run one scenario to completion and return its summary.

    ``trace`` short-circuits :meth:`TraceSpec.build` when the caller has
    already materialised (and can share) the trace.
    """
    config = scenario.resolved_config()
    trace = trace if trace is not None else scenario.build_trace()
    engine = SimulationEngine(
        scenario.policy_spec(), trace, config, observers=observers, lean=lean
    )
    return engine.run()


def _prepared(scenarios: Sequence[Scenario]) -> List[_Job]:
    """Materialise shared inputs once: traces, profiles, capacity planning.

    Grid members sharing a trace reuse one built ``Trace``; the static
    server budget (trace x profile) and the per-pool load fractions /
    warm loads (trace x scheme) are each computed once instead of per
    scenario.  Doing this serially up front also keeps worker threads
    free of shared lazy caches, so parallel execution is deterministic
    and does no duplicated work.
    """
    from repro.experiments.runner import (
        load_fractions_from_trace,
        pool_loads_from_trace,
        resolve_static_servers,
    )

    traces: Dict[object, Trace] = {}
    static_cache: Dict[Tuple[object, int], int] = {}
    capacity_cache: Dict[Tuple[object, str], Tuple[dict, dict]] = {}
    jobs: List[_Job] = []
    for scenario in scenarios:
        key = id(scenario.trace) if isinstance(scenario.trace, Trace) else scenario.trace
        if key not in traces:
            traces[key] = scenario.build_trace()
        trace = traces[key]
        config = scenario.resolved_config()
        if config.profile is None:
            config = dataclasses.replace(config, profile=config.resolved_profile())
        if config.static_servers is None:
            static_key = (key, id(config.profile))
            if static_key not in static_cache:
                static_cache[static_key] = resolve_static_servers(
                    config, trace, config.profile
                )
            config = dataclasses.replace(
                config, static_servers=static_cache[static_key]
            )
        scheme = scenario.policy_spec().scheme(config.scheme)
        capacity_key = (key, scheme.name)
        if capacity_key not in capacity_cache:
            capacity_cache[capacity_key] = (
                load_fractions_from_trace(trace, scheme),
                pool_loads_from_trace(trace, scheme),
            )
        fractions, warm_loads = capacity_cache[capacity_key]
        jobs.append((scenario, trace, config, fractions, warm_loads))
    return jobs


def _run_job(job: _Job, lean: bool, isolate: bool = False) -> RunSummary:
    scenario, trace, config, fractions, warm_loads = job
    if isolate:
        # Thread-parallel runs share Request objects across engines, and
        # the cluster manager writes `request.predicted_type`; give each
        # engine private copies so concurrent scenarios cannot race.
        trace = Trace(
            name=trace.name, requests=[copy.copy(r) for r in trace.requests]
        )
    engine = SimulationEngine(
        scenario.policy_spec(),
        trace,
        config,
        lean=lean,
        load_fractions=fractions,
        warm_loads=warm_loads,
    )
    summary = engine.run()
    # Lean sweeps only consume summary statistics; condense the
    # per-request payloads so process pools do not spend their speedup
    # pickling outcome objects back to the parent (every derived metric
    # is unchanged — see RunSummary.compact).  Applied in serial mode
    # too, so results are identical across execution modes.
    return summary.compact() if lean else summary


def _execute(jobs: List[_Job], workers: Optional[int], lean: bool, mode: str) -> List[RunSummary]:
    if not workers or workers <= 1:
        return [_run_job(job, lean) for job in jobs]
    if mode == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_job, job, lean, True) for job in jobs]
            return [future.result() for future in futures]
    if mode == "process":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_job, job, lean) for job in jobs]
            return [future.result() for future in futures]
    raise ValueError(f"unknown executor mode {mode!r}; use 'thread' or 'process'")


def runs(
    scenarios: Iterable[Scenario],
    workers: Optional[int] = None,
    lean: bool = False,
    mode: str = "thread",
) -> List[RunSummary]:
    """Run many scenarios, returning summaries in input order.

    ``workers`` > 1 executes scenarios on a thread or process pool (see
    the module docstring for the trade-off); ``None``, 0 or 1 runs them
    serially.  Results are identical in every mode.  ``lean=True``
    additionally returns *compact* summaries (condensed latency arrays
    instead of per-request outcome objects — identical derived metrics,
    far cheaper to transfer from process pools).
    """
    return _execute(_prepared(list(scenarios)), workers, lean, mode)


def run_grid(
    grid: ScenarioGrid,
    workers: Optional[int] = None,
    lean: bool = False,
    mode: str = "thread",
) -> Dict[str, RunSummary]:
    """Run a scenario grid; summaries are keyed by :attr:`Scenario.key`."""
    if not isinstance(grid, ScenarioGrid):
        grid = ScenarioGrid(grid)
    summaries = runs(grid, workers=workers, lean=lean, mode=mode)
    return {scenario.key: summary for scenario, summary in zip(grid, summaries)}


def run_policies(
    trace: Trace,
    specs: Iterable[PolicySpec],
    config=None,
    workers: Optional[int] = None,
    lean: bool = False,
    mode: str = "thread",
) -> Dict[str, RunSummary]:
    """Run several policies on one trace with a shared static budget.

    The static server budget is computed once from the trace (9-pool
    peak accounting, as the paper provisions every baseline with the
    same peak-capable cluster) and applied through a *copy* of the
    config — the caller's ``ExperimentConfig`` is never mutated.
    """
    from repro.experiments.runner import ExperimentConfig, recommended_static_servers

    config = config or ExperimentConfig()
    if config.static_servers is None:
        from repro.workload.classification import DEFAULT_SCHEME

        profile = config.resolved_profile()
        budget = recommended_static_servers(
            trace, profile, config.scheme or DEFAULT_SCHEME
        )
        config = dataclasses.replace(config, static_servers=budget)
    specs = list(specs)
    scenarios = [
        Scenario(policy=spec, trace=trace, base_config=config) for spec in specs
    ]
    summaries = runs(scenarios, workers=workers, lean=lean, mode=mode)
    return {spec.name: summary for spec, summary in zip(specs, summaries)}
