"""Scenario executors: serial and parallel sweep running.

``run_scenario`` runs one :class:`~repro.api.scenario.Scenario` on the
engine its ``backend`` selects (the per-request
:class:`~repro.api.engine.SimulationEngine` or the binned
:class:`~repro.api.fluid_engine.FluidEngine`).  ``runs`` and
``run_grid`` execute many scenarios, serially or on a
``concurrent.futures`` pool; results come back in input order
(``runs``) or keyed by :attr:`Scenario.key` (``run_grid``) and are
identical across execution modes (every engine owns its RNG streams,
and parallel thread runs get private copies of shared request objects).

Two parallel modes:

* ``mode="thread"`` (default) — works everywhere, nothing to pickle.
  The simulation is pure CPU-bound Python, so the GIL limits the
  speedup; threads mainly help once scenario setup or observers do I/O.
* ``mode="process"`` — true multi-core parallelism for large sweeps on
  multi-core machines; scenarios and summaries must pickle (they do for
  everything in-tree) and each worker pays a fork/spawn cost, so prefer
  it when individual scenarios run for seconds, not milliseconds.
  Event-backend traces are not pickled per job: the executor encodes
  each shared trace once into numpy columns in POSIX shared memory
  (:mod:`multiprocessing.shared_memory`) and ships only the segment
  name; every worker rehydrates the trace once per process from the
  segment, however many grid members reuse it.  Rehydrated requests
  are field-identical to the originals (ids, services and SLO scales
  included), so results stay identical across modes.

Passing ``sink=`` (a :class:`~repro.api.sinks.ResultSink`) switches the
executors to *streaming* mode: each summary is handed to the sink as it
completes — in input order serially, in completion order on pools — and
is **not** accumulated, so a 1000+-scenario sweep holds one summary at
a time.  The executor returns the sink itself in that case, with a
:class:`SweepReport` (ran / skipped / failed counts) attached as
``sink.report``.

Streamed sweeps are *fault-tolerant* and *resumable*:

* a scenario that raises is recorded in the sink as a structured error
  record (:meth:`~repro.api.sinks.ResultSink.write_error`) and the
  remaining scenarios keep running — one bad scenario cannot abort a
  1000-scenario sweep;
* ``resume=True`` (or a sink constructed with ``resume=True``) skips
  every scenario whose key the sink already records successfully
  (:meth:`~repro.api.sinks.ResultSink.completed_keys`), *before* traces
  are materialised — rerunning an interrupted sweep executes exactly
  the missing scenarios and appends their records.  Scenario keys are
  therefore a durability contract: streamed sweeps reject duplicate
  keys up front instead of silently collapsing them, and a resume
  against a file whose records name keys *outside* the current grid
  raises :class:`~repro.api.sinks.ResultsMismatchError` — the file was
  written by a different grid and must not be mixed with this one.

``run_policies`` is the engine-backed successor of the legacy
``run_all_policies``: it runs several policies over one trace with a
shared static-server budget — computed into a local copy of the config,
never written back onto the caller's.
"""

from __future__ import annotations

import copy
import dataclasses
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.engine import SimulationEngine
from repro.api.fluid_engine import FluidEngine
from repro.api.scenario import Scenario, ScenarioGrid
from repro.api.sinks import ResultsMismatchError, ResultSink
from repro.metrics.summary import RunSummary
from repro.policies.base import PolicySpec
from repro.workload.request import Request
from repro.workload.traces import BinnedTrace, Trace


@dataclasses.dataclass(frozen=True)
class SweepReport:
    """Outcome counts of one streamed sweep (attached as ``sink.report``).

    ``total`` is the full sweep size; ``skipped`` scenarios were already
    recorded in the sink and not rerun (``resume``), ``ran`` completed
    and wrote a summary record, ``failed`` raised and wrote an error
    record.  ``skipped + ran + failed == total`` unless the sweep itself
    was interrupted again.
    """

    total: int
    skipped: int
    ran: int
    failed: int


def _check_no_stale_records(recorded: set, keys: Sequence[str], context: str = "sweep") -> None:
    """Refuse to resume a results file written by a different grid.

    ``recorded`` keys missing from the current sweep's ``keys`` mean the
    sink already holds another grid's records (stale file, edited sweep
    arguments, wrong output path).  Skipping "nothing" and appending
    this sweep's records would silently mix the two grids in one file —
    and present the stale rows as this sweep's output — so resume
    raises instead.
    """
    stale = set(recorded) - set(keys)
    if stale:
        shown = ", ".join(repr(key) for key in sorted(stale)[:5])
        if len(stale) > 5:
            shown += f", ... ({len(stale)} total)"
        raise ResultsMismatchError(
            f"cannot resume: the sink already records key(s) {shown} that "
            f"this {context} does not contain, so its records belong to a "
            "different grid — resume with the grid that wrote the file, or "
            "stream this sweep into a fresh output file"
        )


def _duplicate_keys(keys: Sequence[str]) -> List[str]:
    seen: set = set()
    duplicates: List[str] = []
    for key in keys:
        if key in seen and key not in duplicates:
            duplicates.append(key)
        seen.add(key)
    return duplicates


@dataclasses.dataclass
class _Job:
    """One scenario with its shared inputs materialised.

    Event-backend jobs carry the built request-level trace plus the
    cached capacity-planning maps; fluid-backend jobs carry the binned
    trace and the cached per-bucket static budgets.  On process pools
    the trace travels as a :class:`_SharedTrace` handle instead
    (``trace`` is then ``None``) and workers rehydrate it from shared
    memory.
    """

    scenario: Scenario
    config: object  # resolved ExperimentConfig
    trace: Optional[Trace] = None
    fractions: Optional[dict] = None
    warm_loads: Optional[dict] = None
    bins: Optional[list] = None
    trace_name: Optional[str] = None
    fine_budgets: Optional[dict] = None
    shared_trace: Optional["_SharedTrace"] = None


#: Column layout of a trace in shared memory.  ``service`` holds an index
#: into the handle's unique-service table; everything else round-trips
#: the Request fields exactly (float64/int64 are lossless for the values
#: Request validation admits).
_TRACE_DTYPE = np.dtype(
    [
        ("arrival_time", np.float64),
        ("input_tokens", np.int64),
        ("output_tokens", np.int64),
        ("request_id", np.int64),
        ("service", np.int32),
        ("slo_scale", np.float64),
    ]
)


@dataclasses.dataclass(frozen=True)
class _SharedTrace:
    """Pickle-cheap handle to a trace encoded in a shared-memory segment.

    The handle carries only the segment name, the row count, the trace
    name and the unique service strings — a few hundred bytes — while
    the request columns live in the named segment.  The parent process
    owns the segment (see :class:`_SharedTraceArena`); workers attach,
    copy, and close.
    """

    shm_name: str
    count: int
    name: str
    services: Tuple[str, ...]


def _encode_trace(trace: Trace) -> Tuple["_SharedTrace", shared_memory.SharedMemory]:
    """Write a trace's request columns into a new shared-memory segment."""
    requests = trace.requests
    services: Dict[str, int] = {}
    array = np.empty(len(requests), dtype=_TRACE_DTYPE)
    for row, request in enumerate(requests):
        index = services.setdefault(request.service, len(services))
        array[row] = (
            request.arrival_time,
            request.input_tokens,
            request.output_tokens,
            request.request_id,
            index,
            request.slo_scale,
        )
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=_TRACE_DTYPE, buffer=segment.buf)
    view[:] = array
    handle = _SharedTrace(
        shm_name=segment.name,
        count=len(requests),
        name=trace.name,
        services=tuple(services),
    )
    return handle, segment


#: Per-worker-process rehydration cache: segment name -> decoded Trace.
#: Grid members sharing a trace decode it once per worker instead of
#: unpickling a request list per job.  Jobs never run the cached
#: requests directly (see _run_job's isolation copy), so the cache stays
#: pristine across jobs.
_WORKER_TRACES: Dict[str, Trace] = {}


def _materialise_shared(shared: "_SharedTrace") -> Trace:
    """Rebuild (or fetch the cached) Trace behind a shared-memory handle."""
    cached = _WORKER_TRACES.get(shared.shm_name)
    if cached is not None:
        return cached
    segment = shared_memory.SharedMemory(name=shared.shm_name)
    try:
        view = np.ndarray((shared.count,), dtype=_TRACE_DTYPE, buffer=segment.buf)
        columns = view.copy()
    finally:
        segment.close()
    # tolist() yields Python floats/ints bit-identical to the encoded
    # values, so rehydrated requests compare equal field-for-field.
    arrivals = columns["arrival_time"].tolist()
    inputs = columns["input_tokens"].tolist()
    outputs = columns["output_tokens"].tolist()
    request_ids = columns["request_id"].tolist()
    service_indices = columns["service"].tolist()
    slo_scales = columns["slo_scale"].tolist()
    services = shared.services
    trace = Trace(
        name=shared.name,
        requests=[
            Request(
                arrival_time=arrivals[row],
                input_tokens=inputs[row],
                output_tokens=outputs[row],
                request_id=request_ids[row],
                service=services[service_indices[row]],
                slo_scale=slo_scales[row],
            )
            for row in range(shared.count)
        ],
    )
    _WORKER_TRACES[shared.shm_name] = trace
    return trace


class _SharedTraceArena:
    """Owner of the shared-memory segments backing one pool's traces.

    ``adopt`` rewrites an event-backend job to carry a
    :class:`_SharedTrace` handle instead of its request list, encoding
    each distinct trace exactly once however many jobs share it.
    ``close`` unlinks every segment — call it only after the pool has
    shut down, so no worker is still attaching.  If the platform cannot
    provide shared memory the arena degrades gracefully: jobs keep
    their picklable trace and run exactly as before.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._by_trace: Dict[int, "_SharedTrace"] = {}
        self._disabled = False

    def adopt(self, job: _Job) -> _Job:
        if self._disabled or job.trace is None:
            return job
        handle = self._by_trace.get(id(job.trace))
        if handle is None:
            try:
                handle, segment = _encode_trace(job.trace)
            except OSError:
                self._disabled = True
                return job
            self._segments.append(segment)
            self._by_trace[id(job.trace)] = handle
        return dataclasses.replace(job, trace=None, shared_trace=handle)

    def close(self) -> None:
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._by_trace.clear()


def run_scenario(
    scenario: Scenario,
    lean: bool = False,
    observers=None,
    trace: Optional[Trace] = None,
) -> RunSummary:
    """Run one scenario to completion and return its summary.

    ``trace`` short-circuits :meth:`TraceSpec.build` when the caller has
    already materialised (and can share) the trace.
    """
    config = scenario.resolved_config()
    if scenario.backend == "fluid":
        # An explicit ``trace`` is used as-is (FluidEngine accepts a
        # Trace, BinnedTrace or raw TraceBin sequence); only a TraceSpec
        # carried by the scenario itself needs materialising here.
        source = trace if trace is not None else scenario.trace
        if trace is None and not isinstance(source, (Trace, BinnedTrace)):
            source = scenario.build_bins()
        engine = FluidEngine(
            scenario.policy_spec(),
            source,
            config,
            observers=observers,
            lean=lean,
            # A caller-supplied trace names itself; the scenario's key
            # would mislabel it.
            trace_name=None if trace is not None else scenario.trace_key,
        )
        return engine.run()
    trace = trace if trace is not None else scenario.build_trace()
    engine = SimulationEngine(
        scenario.policy_spec(), trace, config, observers=observers, lean=lean
    )
    return engine.run()


def _prepared(scenarios: Sequence[Scenario]) -> List[_Job]:
    """Materialise shared inputs once: traces, profiles, capacity planning.

    Grid members sharing a trace reuse one built ``Trace`` (or, on the
    fluid backend, one binned trace and one set of per-bucket static
    budgets); the static server budget (trace x profile) and the
    per-pool load fractions / warm loads (trace x scheme) are each
    computed once instead of per scenario.  Doing this serially up front
    also keeps worker threads free of shared lazy caches, so parallel
    execution is deterministic and does no duplicated work.
    """
    from repro.experiments.fluid import FluidRunner
    from repro.experiments.runner import (
        load_fractions_from_trace,
        pool_loads_from_trace,
        resolve_static_servers,
    )
    from repro.workload.classification import DEFAULT_SCHEME

    traces: Dict[object, Trace] = {}
    bins_cache: Dict[object, tuple] = {}
    static_cache: Dict[object, int] = {}
    budget_cache: Dict[object, dict] = {}
    capacity_cache: Dict[object, tuple] = {}
    jobs: List[_Job] = []
    for scenario in scenarios:
        shareable = isinstance(scenario.trace, (Trace, BinnedTrace))
        key = id(scenario.trace) if shareable else scenario.trace
        config = scenario.resolved_config()
        if config.profile is None:
            config = dataclasses.replace(config, profile=config.resolved_profile())

        if scenario.backend == "fluid":
            from repro.api.scenario import BINNED_TRACE_KINDS
            from repro.workload.traces import bin_trace

            bins_key = (key, config.fluid_bin_s)
            if bins_key not in bins_cache:
                if isinstance(scenario.trace, BinnedTrace) or (
                    getattr(scenario.trace, "kind", None) in BINNED_TRACE_KINDS
                ):
                    bins = scenario.build_bins(config.fluid_bin_s)
                else:
                    # Request-level trace: share one built Trace with
                    # any event-backend members of the same grid, then
                    # bin it — mixed-backend grids build it once.
                    if key not in traces:
                        traces[key] = scenario.build_trace()
                    bins = bin_trace(traces[key], config.fluid_bin_s)
                bins_cache[bins_key] = (bins, scenario.trace_key)
            bins, trace_name = bins_cache[bins_key]
            scheme = config.scheme or DEFAULT_SCHEME
            budget_key = (bins_key, id(config.profile), scheme.name)
            if budget_key not in budget_cache:
                runner = FluidRunner(
                    model=config.model, scheme=scheme, profile=config.profile
                )
                budget_cache[budget_key] = runner.static_budgets(bins)
            jobs.append(
                _Job(
                    scenario=scenario,
                    config=config,
                    bins=bins,
                    trace_name=trace_name,
                    fine_budgets=budget_cache[budget_key],
                )
            )
            continue

        if key not in traces:
            traces[key] = scenario.build_trace()
        trace = traces[key]
        if config.static_servers is None:
            static_key = (key, id(config.profile))
            if static_key not in static_cache:
                static_cache[static_key] = resolve_static_servers(
                    config, trace, config.profile
                )
            config = dataclasses.replace(
                config, static_servers=static_cache[static_key]
            )
        scheme = scenario.policy_spec().scheme(config.scheme)
        capacity_key = (key, scheme.name)
        if capacity_key not in capacity_cache:
            capacity_cache[capacity_key] = (
                load_fractions_from_trace(trace, scheme),
                pool_loads_from_trace(trace, scheme),
            )
        fractions, warm_loads = capacity_cache[capacity_key]
        jobs.append(
            _Job(
                scenario=scenario,
                config=config,
                trace=trace,
                fractions=fractions,
                warm_loads=warm_loads,
            )
        )
    return jobs


def _run_job(job: _Job, lean: bool, isolate: bool = False) -> RunSummary:
    scenario = job.scenario
    if scenario.backend == "fluid":
        # Fluid jobs only read their (shared) bins — no isolation needed.
        engine = FluidEngine(
            scenario.policy_spec(),
            job.bins,
            job.config,
            lean=lean,
            fine_budgets=job.fine_budgets,
            trace_name=job.trace_name,
        )
        summary = engine.run()
        return summary.compact() if lean else summary
    trace = job.trace
    if trace is None and job.shared_trace is not None:
        # Process-pool job: rehydrate from shared memory (cached per
        # worker process) and isolate below — jobs in the same worker
        # share the cached Request objects exactly like thread-parallel
        # jobs share the parent's.
        trace = _materialise_shared(job.shared_trace)
        isolate = True
    if isolate:
        # Parallel runs share Request objects across engines, and the
        # cluster manager writes `request.predicted_type`; give each
        # engine private copies so concurrent scenarios cannot race.
        trace = Trace(
            name=trace.name, requests=[copy.copy(r) for r in trace.requests]
        )
    engine = SimulationEngine(
        scenario.policy_spec(),
        trace,
        job.config,
        lean=lean,
        load_fractions=job.fractions,
        warm_loads=job.warm_loads,
    )
    summary = engine.run()
    # Lean sweeps only consume summary statistics; condense the
    # per-request payloads so process pools do not spend their speedup
    # pickling outcome objects back to the parent (every derived metric
    # is unchanged — see RunSummary.compact).  Applied in serial mode
    # too, so results are identical across execution modes.
    return summary.compact() if lean else summary


def _pool_for(mode: str, workers: int):
    if mode == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    if mode == "process":
        return ProcessPoolExecutor(max_workers=workers)
    raise ValueError(f"unknown executor mode {mode!r}; use 'thread' or 'process'")


def _execute(jobs: List[_Job], workers: Optional[int], lean: bool, mode: str) -> List[RunSummary]:
    if not workers or workers <= 1:
        return [_run_job(job, lean) for job in jobs]
    arena: Optional[_SharedTraceArena] = None
    if mode == "process":
        arena = _SharedTraceArena()
        jobs = [arena.adopt(job) for job in jobs]
    try:
        with _pool_for(mode, workers) as pool:
            isolate = mode == "thread"
            futures = [pool.submit(_run_job, job, lean, isolate) for job in jobs]
            return [future.result() for future in futures]
    finally:
        # Unlink only after the pool context has joined its workers, so
        # no worker is still attaching to a segment being removed.
        if arena is not None:
            arena.close()


def _stream(
    jobs: List[_Job],
    keys: Sequence[str],
    workers: Optional[int],
    lean: bool,
    mode: str,
    sink: ResultSink,
    skipped: int = 0,
) -> SweepReport:
    """Run jobs and hand each summary to the sink as it completes.

    Summaries are never accumulated: serially they arrive in input
    order; on a pool, in completion order (every record names its
    scenario, so order carries no information).  The sink is opened
    before the first result and closed afterwards, also on error.

    A job that raises does not abort the sweep: the exception becomes a
    structured error record (``sink.write_error``) and every other job
    still runs.  Only a *sink* failure (or an interrupt) stops the
    sweep — pending pool futures are cancelled then, so the pool
    shutdown does not start queued jobs whose results nobody will
    write, and the ``with sink:`` exit closes the file after the last
    completed write.  The resulting :class:`SweepReport` is attached as
    ``sink.report`` (even on an interrupted sweep, with partial counts).
    """
    ran = failed = 0

    def _consume(key: str, run) -> None:
        nonlocal ran, failed
        try:
            summary = run()
        except BrokenExecutor:
            # A dead pool (e.g. an OOM-killed process worker) fails
            # every remaining future — that is infrastructure, not the
            # scenarios: recording it per scenario would fill the file
            # with bogus error records for work that never ran.  Abort
            # like a sink failure instead.
            raise
        except Exception as error:
            sink.write_error(key, error)
            failed += 1
        else:
            sink.write(key, summary)
            ran += 1

    with sink:
        try:
            if not workers or workers <= 1:
                for key, job in zip(keys, jobs):
                    _consume(key, lambda: _run_job(job, lean))
            else:
                arena: Optional[_SharedTraceArena] = None
                if mode == "process":
                    arena = _SharedTraceArena()
                    jobs = [arena.adopt(job) for job in jobs]
                try:
                    with _pool_for(mode, workers) as pool:
                        isolate = mode == "thread"
                        futures = {
                            pool.submit(_run_job, job, lean, isolate): key
                            for key, job in zip(keys, jobs)
                        }
                        # as_completed snapshots the future set up
                        # front, so popping entries while iterating is
                        # safe — and necessary: holding the dict until
                        # the loop ends would keep every completed
                        # summary alive, defeating the sink's memory
                        # bound.
                        try:
                            for future in as_completed(futures):
                                key = futures.pop(future)
                                _consume(key, future.result)
                        except BaseException:
                            for pending in futures:
                                pending.cancel()
                            raise
                finally:
                    # The pool context has joined its workers by the
                    # time this runs, so unlinking the segments here
                    # cannot race a worker's attach.
                    if arena is not None:
                        arena.close()
        finally:
            sink.report = SweepReport(
                total=len(jobs) + skipped, skipped=skipped, ran=ran, failed=failed
            )
    return sink.report


def runs(
    scenarios: Iterable[Scenario],
    workers: Optional[int] = None,
    lean: bool = False,
    mode: str = "thread",
    sink: Optional[ResultSink] = None,
    resume: bool = False,
) -> Union[List[RunSummary], ResultSink]:
    """Run many scenarios, returning summaries in input order.

    ``workers`` > 1 executes scenarios on a thread or process pool (see
    the module docstring for the trade-off); ``None``, 0 or 1 runs them
    serially.  Results are identical in every mode.  ``lean=True``
    additionally returns *compact* summaries (condensed latency arrays
    instead of per-request outcome objects — identical derived metrics,
    far cheaper to transfer from process pools).

    With ``sink`` set, every summary is written to the sink as it
    completes (keyed by :attr:`Scenario.key`) instead of being
    accumulated, and the sink itself is returned with ``sink.report``
    counting ran/skipped/failed scenarios.  Scenario keys must then be
    unique — they are the records' identity.  ``resume=True`` (implied
    by a sink constructed with ``resume=True``) skips scenarios the
    sink already records successfully, before their traces are built,
    so rerunning an interrupted sweep costs only the missing scenarios.
    """
    scenarios = list(scenarios)
    if sink is None:
        if resume:
            raise ValueError(
                "resume=True requires sink=; the sink's existing records "
                "define which scenarios to skip"
            )
        return _execute(_prepared(scenarios), workers, lean, mode)
    keys = [s.key for s in scenarios]
    duplicates = _duplicate_keys(keys)
    if duplicates:
        raise ValueError(
            "duplicate scenario key(s) "
            + ", ".join(repr(key) for key in duplicates)
            + ": streamed records are keyed by Scenario.key, so duplicates "
            "would collide in the sink (and make resume skip work that "
            "never ran) — disambiguate with Scenario.label"
        )
    skipped = 0
    if resume or sink.resume:
        recorded, done = sink.scan_keys()
        _check_no_stale_records(recorded, keys)
        if done:
            kept = [
                (key, scenario)
                for key, scenario in zip(keys, scenarios)
                if key not in done
            ]
            skipped = len(scenarios) - len(kept)
            keys = [key for key, _ in kept]
            scenarios = [scenario for _, scenario in kept]
    _stream(_prepared(scenarios), keys, workers, lean, mode, sink, skipped=skipped)
    return sink


def run_grid(
    grid: ScenarioGrid,
    workers: Optional[int] = None,
    lean: bool = False,
    mode: str = "thread",
    sink: Optional[ResultSink] = None,
    resume: bool = False,
) -> Union[Dict[str, RunSummary], ResultSink]:
    """Run a scenario grid; summaries are keyed by :attr:`Scenario.key`.

    Duplicate keys are rejected by :class:`ScenarioGrid` construction —
    a silent dict collapse would lose results here and make ``resume``
    skip scenarios that never ran.

    With ``sink`` set, results stream into the sink as they complete
    (nothing is accumulated) and the sink is returned; ``resume=True``
    skips scenarios the sink already records (see :func:`runs`).
    """
    if not isinstance(grid, ScenarioGrid):
        grid = ScenarioGrid(grid)
    if sink is not None or resume:
        return runs(
            grid, workers=workers, lean=lean, mode=mode, sink=sink, resume=resume
        )
    summaries = runs(grid, workers=workers, lean=lean, mode=mode)
    return {scenario.key: summary for scenario, summary in zip(grid, summaries)}


def run_policies(
    trace: Union[Trace, BinnedTrace],
    specs: Iterable[PolicySpec],
    config=None,
    workers: Optional[int] = None,
    lean: bool = False,
    mode: str = "thread",
    backend: str = "event",
    sink: Optional[ResultSink] = None,
    resume: bool = False,
) -> Union[Dict[str, RunSummary], ResultSink]:
    """Run several policies on one trace with a shared static budget.

    The static server budget is computed once from the trace (9-pool
    peak accounting, as the paper provisions every baseline with the
    same peak-capable cluster) and applied through a *copy* of the
    config — the caller's ``ExperimentConfig`` is never mutated.  On the
    fluid backend (``backend="fluid"``, required for pre-binned traces)
    the budget sizing happens inside the fluid runner from the binned
    peaks instead.

    Results are keyed by policy name, so duplicate
    :attr:`PolicySpec.name` entries are rejected — a silent dict
    collapse would lose results (and with ``resume``, skip work that
    never ran).

    With ``sink`` set, summaries stream into the sink keyed by policy
    name and the sink is returned with ``sink.report`` attached;
    ``resume=True`` (implied by a sink constructed with ``resume=True``)
    skips policies the sink already records successfully *for this
    trace* — the policy-name keys do not encode the trace, so the
    completed set is filtered by the records' ``trace`` column.
    """
    from repro.experiments.runner import ExperimentConfig, recommended_static_servers

    config = config or ExperimentConfig()
    specs = list(specs)
    duplicates = _duplicate_keys([spec.name for spec in specs])
    if duplicates:
        raise ValueError(
            "duplicate policy name(s) "
            + ", ".join(repr(name) for name in duplicates)
            + ": run_policies keys results by PolicySpec.name, so duplicates "
            "would silently collide"
        )
    if sink is None and resume:
        raise ValueError(
            "resume=True requires sink=; the sink's existing records "
            "define which policies to skip"
        )
    skipped = 0
    if sink is not None and (resume or sink.resume):
        # Records are keyed by bare policy name, which does not encode
        # the trace — filter the completed set to *this* trace so a
        # sink file shared across sweeps cannot skip another sweep's
        # work.  Filtering happens before the budget computation below:
        # a fully-completed resume must not pay trace profiling.
        recorded, done = sink.scan_keys(trace=trace.name)
        _check_no_stale_records(
            recorded,
            [spec.name for spec in specs],
            context="policy sweep (records filtered to this trace)",
        )
        if done:
            kept = [spec for spec in specs if spec.name not in done]
            skipped = len(specs) - len(kept)
            specs = kept
    if (
        specs
        and backend == "event"
        and config.static_servers is None
        and isinstance(trace, Trace)
    ):
        from repro.workload.classification import DEFAULT_SCHEME

        profile = config.resolved_profile()
        budget = recommended_static_servers(
            trace, profile, config.scheme or DEFAULT_SCHEME
        )
        config = dataclasses.replace(config, static_servers=budget)
    scenarios = [
        Scenario(policy=spec, trace=trace, backend=backend, base_config=config)
        for spec in specs
    ]
    if sink is None:
        summaries = runs(scenarios, workers=workers, lean=lean, mode=mode)
        return {spec.name: summary for spec, summary in zip(specs, summaries)}
    jobs = _prepared(scenarios)
    _stream(
        jobs, [spec.name for spec in specs], workers, lean, mode, sink,
        skipped=skipped,
    )
    return sink
