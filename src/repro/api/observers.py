"""Typed simulation events and the pluggable observer protocol.

Both simulation backends — the per-request
:class:`~repro.api.engine.SimulationEngine` and the binned
:class:`~repro.api.fluid_engine.FluidEngine` — emit one event object
per occurrence to every attached :class:`Observer`:

* :class:`RunStarted` — once, before the first step;
* :class:`RequestRouted` — one per request, when it is handed to the policy;
* :class:`EpochReconfigured` — after every controller epoch
  ("scale", "shard" or "frequency");
* :class:`StepCompleted` — once per simulation step, carrying the
  cluster's :class:`~repro.cluster.cluster.StepStats` and the policy;
* :class:`RunFinished` — once, after the loop exits.

On the fluid backend a "step" is one trace bin, ``StepCompleted.stats``
is a duck-typed :class:`~repro.experiments.fluid.FluidStepStats`
(``outcomes`` always empty — the fluid simulator tracks no individual
requests), no :class:`RequestRouted` events fire, and the ``policy`` /
``cluster`` payloads of :class:`RunStarted` / :class:`StepCompleted` /
:class:`RunFinished` are ``None`` — observers relying on the live
controller must tolerate that (see :class:`TimelineObserver`).  The
summary observers below consume only the shared stats fields, which is
why the default set works unmodified against both backends.

Observers are independent, composable metric collectors: the engine's
default set reproduces exactly what the legacy monolithic runner
recorded inline (energy, latency, power, server counts and the
frequency/sharding timelines), and new collectors (carbon, cost,
per-pool SLO attainment, ...) can be added without touching the engine.
Each observer finally writes its results onto the shared
:class:`~repro.metrics.summary.RunSummary` in :meth:`Observer.contribute`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.carbon import CarbonAccount, CarbonIntensityTrace
from repro.metrics.cost import CostAccount, CostModel
from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import LatencyStats
from repro.metrics.power import PowerTimeSeries
from repro.metrics.summary import RunSummary
from repro.workload.classification import classify_request
from repro.workload.request import Request
from repro.workload.slo import SLO, SLOPolicy, DEFAULT_SLO_POLICY


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunStarted:
    """Emitted once before the first simulation step."""

    time: float
    policy_name: str
    trace_name: str
    policy: Any  # the live DynamoLLM controller (None on the fluid backend)
    config: Any  # the resolved ExperimentConfig


@dataclass(frozen=True)
class RequestRouted:
    """Emitted when one trace request is handed to the policy's router."""

    time: float
    request: Request


@dataclass(frozen=True)
class EpochReconfigured:
    """Emitted after a controller epoch ran (scale / shard / frequency)."""

    time: float
    kind: str


@dataclass(frozen=True)
class StepCompleted:
    """Emitted after each simulation step with the cluster's step stats."""

    time: float
    dt: float
    stats: Any  # cluster StepStats (FluidStepStats on the fluid backend)
    policy: Any  # the live DynamoLLM controller (None on the fluid backend)


@dataclass(frozen=True)
class RunFinished:
    """Emitted once after the simulation loop exits."""

    time: float
    cluster: Any  # the GPUCluster, for end-of-run totals (None on fluid)


# ----------------------------------------------------------------------
# Observer protocol
# ----------------------------------------------------------------------
class Observer:
    """Base class for pluggable metric collectors.

    Subclasses override the ``on_*`` hooks they care about and
    :meth:`contribute`, which writes the collected results onto the
    :class:`~repro.metrics.summary.RunSummary` under construction.
    """

    #: Observers with ``summary_only = True`` are kept in ``lean`` runs;
    #: the rest (timeline collectors etc.) are dropped to speed up sweeps.
    summary_only: bool = False

    #: Whether this observer's ``on_step_completed`` reads timeline fields
    #: of the step stats (``gpus_by_tp``, ``pool_*``, ``active_gpus``,
    #: ``average_frequency_mhz``).  When every attached step listener sets
    #: this to ``False`` the engine asks the cluster for lean step stats,
    #: which skip the per-pool/per-TP breakdown bookkeeping entirely.
    #: ``True`` is the conservative default for third-party observers.
    requires_full_step_stats: bool = True

    def on_run_started(self, event: RunStarted) -> None:  # pragma: no cover - hook
        pass

    def on_request_routed(self, event: RequestRouted) -> None:  # pragma: no cover - hook
        pass

    def on_epoch_reconfigured(self, event: EpochReconfigured) -> None:  # pragma: no cover - hook
        pass

    def on_step_completed(self, event: StepCompleted) -> None:  # pragma: no cover - hook
        pass

    def on_run_finished(self, event: RunFinished) -> None:  # pragma: no cover - hook
        pass

    def contribute(self, summary: RunSummary) -> None:  # pragma: no cover - hook
        """Write this observer's results onto the run summary."""


class ObserverDispatch:
    """Shared event-dispatch machinery for the simulation engines.

    Both engines attach observers and emit events through this mixin.
    Events are only constructed and dispatched for hooks somebody
    actually overrides (:meth:`_listeners` filters on overridden
    methods), so per-request and per-epoch events cost nothing when — as
    in lean sweeps — no observer consumes them.
    """

    observers: List["Observer"]

    def add_observer(self, observer: "Observer"):
        """Attach one more observer (before the run starts)."""
        self.observers.append(observer)
        return self

    def _listeners(self, hook: str):
        """Observers that actually override ``hook``."""
        base = getattr(Observer, hook)
        return [
            observer
            for observer in self.observers
            if getattr(type(observer), hook, base) is not base
        ]

    def _emit(self, listeners, hook: str, event) -> None:
        for observer in listeners:
            getattr(observer, hook)(event)


# ----------------------------------------------------------------------
# Built-in observers (the legacy runner's inline accounting, split up)
# ----------------------------------------------------------------------
class EnergyObserver(Observer):
    """Accumulates the cluster's per-step energy into an EnergyAccount."""

    summary_only = True
    requires_full_step_stats = False

    def __init__(self) -> None:
        self.account = EnergyAccount()

    def on_step_completed(self, event: StepCompleted) -> None:
        self.account.add_step(event.time, event.stats.energy_wh, event.stats.energy_by_type_wh)

    def contribute(self, summary: RunSummary) -> None:
        summary.energy = self.account


class LatencyObserver(Observer):
    """Collects per-request outcomes into TTFT/TBT statistics."""

    summary_only = True
    requires_full_step_stats = False

    def __init__(self, slo_policy: SLOPolicy = DEFAULT_SLO_POLICY) -> None:
        self.stats = LatencyStats(slo_policy=slo_policy)

    def on_step_completed(self, event: StepCompleted) -> None:
        self.stats.extend(event.stats.outcomes)

    def contribute(self, summary: RunSummary) -> None:
        summary.latency = self.stats


class PowerObserver(Observer):
    """Samples cluster power and online-GPU counts every step."""

    summary_only = True
    requires_full_step_stats = False

    def __init__(self) -> None:
        self.series = PowerTimeSeries()

    def on_step_completed(self, event: StepCompleted) -> None:
        self.series.add_step(event.time, event.stats.power_watts, event.stats.online_gpus)

    def contribute(self, summary: RunSummary) -> None:
        summary.power = self.series


class ServerCountObserver(Observer):
    """Tracks the online-server count to report the run average."""

    summary_only = True
    requires_full_step_stats = False

    def __init__(self) -> None:
        self.samples: List[int] = []

    def on_step_completed(self, event: StepCompleted) -> None:
        self.samples.append(event.stats.online_servers)

    def contribute(self, summary: RunSummary) -> None:
        summary.average_servers = (
            sum(self.samples) / len(self.samples) if self.samples else 0.0
        )


class TimelineObserver(Observer):
    """Records the frequency / sharding / pool-load timelines (Figures 9-10).

    This is the most expensive built-in observer; ``lean=True`` runs drop
    it, which measurably speeds up large sweeps that only need summary
    metrics.
    """

    def __init__(self) -> None:
        self.frequency_timeline: List[Tuple[float, float]] = []
        self.pool_frequency_timeline: Dict[str, List[Tuple[float, float]]] = {}
        self.gpus_by_tp_timeline: List[Tuple[float, Dict[int, int]]] = []
        self.pool_gpus_by_tp_timeline: Dict[str, List[Tuple[float, Dict[int, int]]]] = {}
        self.pool_load_timeline: Dict[str, List[Tuple[float, float]]] = {}

    def on_step_completed(self, event: StepCompleted) -> None:
        now, stats = event.time, event.stats
        self.frequency_timeline.append((now, stats.average_frequency_mhz))
        self.gpus_by_tp_timeline.append((now, dict(stats.gpus_by_tp)))
        for pool, freq in stats.pool_frequency_mhz.items():
            self.pool_frequency_timeline.setdefault(pool, []).append((now, freq))
        for pool, tp_map in stats.pool_gpus_by_tp.items():
            self.pool_gpus_by_tp_timeline.setdefault(pool, []).append((now, dict(tp_map)))
        if event.policy is None:  # fluid backend: no live controller
            return
        for pool, state in event.policy.cluster_manager.pools.items():
            self.pool_load_timeline.setdefault(pool, []).append((now, state.load_ema_tps))

    def contribute(self, summary: RunSummary) -> None:
        summary.frequency_timeline = self.frequency_timeline
        summary.pool_frequency_timeline = self.pool_frequency_timeline
        summary.gpus_by_tp_timeline = self.gpus_by_tp_timeline
        summary.pool_gpus_by_tp_timeline = self.pool_gpus_by_tp_timeline
        summary.pool_load_timeline = self.pool_load_timeline


class CarbonObserver(Observer):
    """Streams per-step emissions through a time-varying carbon intensity.

    Replaces the post-hoc ``RunSummary.carbon_kg()`` pass over the
    retained energy timeline: the same per-step terms are accumulated in
    the same order while the simulation runs, so the totals agree exactly
    and remain available even when the energy timeline is compacted away
    for lean sweeps.
    """

    summary_only = True
    requires_full_step_stats = False

    def __init__(self, intensity: Optional[CarbonIntensityTrace] = None) -> None:
        self.account = CarbonAccount(intensity=intensity or CarbonIntensityTrace())

    def on_step_completed(self, event: StepCompleted) -> None:
        self.account.add_step(event.time, event.stats.energy_wh)

    def contribute(self, summary: RunSummary) -> None:
        summary.carbon = self.account


class CostObserver(Observer):
    """Streams GPU-hour and energy cost per step (Section V-F accounting).

    Accumulates ``online_gpus * dt`` and per-step energy exactly as the
    cluster's own counters do, so the resulting totals match the
    post-hoc ``RunSummary.cost_usd()`` computation.
    """

    summary_only = True
    requires_full_step_stats = False

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.account = CostAccount(cost_model=cost_model or CostModel())

    def on_step_completed(self, event: StepCompleted) -> None:
        self.account.add_step(event.dt, event.stats.online_gpus, event.stats.energy_wh)

    def contribute(self, summary: RunSummary) -> None:
        summary.cost = self.account


class SLOAttainmentObserver(Observer):
    """Per-pool SLO attainment, streamed from completed-request outcomes.

    Every outcome is judged against its request type's scaled SLO (the
    same rule :meth:`~repro.metrics.latency.LatencyStats.slo_attainment`
    applies post-hoc) and attributed to the pool that served it, so the
    count-weighted average of the per-pool rates equals the global rate.
    """

    summary_only = True
    requires_full_step_stats = False

    def __init__(self, slo_policy: SLOPolicy = DEFAULT_SLO_POLICY) -> None:
        self.slo_policy = slo_policy
        self.total_by_pool: Dict[str, int] = {}
        self.met_by_pool: Dict[str, int] = {}
        # Scaled SLOs memoised per (type name, slo_scale) — SLO
        # construction is pure, so the cached thresholds are the exact
        # floats the per-outcome construction produced.
        self._scaled_slos: Dict[Tuple[str, float], SLO] = {}

    def on_step_completed(self, event: StepCompleted) -> None:
        scaled_slos = self._scaled_slos
        for outcome in event.stats.outcomes:
            pool = outcome.pool
            self.total_by_pool[pool] = self.total_by_pool.get(pool, 0) + 1
            if outcome.squashed:
                continue
            request_type = classify_request(outcome.request)
            key = (request_type.name, outcome.request.slo_scale)
            slo = scaled_slos.get(key)
            if slo is None:
                slo = self.slo_policy.slo_for(request_type).scaled(
                    max(1.0, outcome.request.slo_scale)
                )
                scaled_slos[key] = slo
            if outcome.meets(slo.ttft_s, slo.tbt_s):
                self.met_by_pool[pool] = self.met_by_pool.get(pool, 0) + 1

    # ------------------------------------------------------------------
    def attainment_by_pool(self) -> Dict[str, float]:
        """SLO attainment per pool (pools that served nothing report 1.0)."""
        return {
            pool: (self.met_by_pool.get(pool, 0) / total) if total else 1.0
            for pool, total in sorted(self.total_by_pool.items())
        }

    def global_attainment(self) -> float:
        """Overall attainment; the count-weighted mean of the pool rates."""
        total = sum(self.total_by_pool.values())
        if total == 0:
            return 1.0
        return sum(self.met_by_pool.values()) / total

    def contribute(self, summary: RunSummary) -> None:
        summary.pool_slo_attainment = self.attainment_by_pool()
        summary.pool_request_counts = dict(sorted(self.total_by_pool.items()))


class ReconfigurationObserver(Observer):
    """Counts controller epochs by kind — a cheap example of a custom hook."""

    summary_only = True
    requires_full_step_stats = False

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.log: List[Tuple[float, str]] = []

    def on_epoch_reconfigured(self, event: EpochReconfigured) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        self.log.append((event.time, event.kind))

    def contribute(self, summary: RunSummary) -> None:
        # RunSummary has no dedicated field; expose via attribute for callers.
        summary.reconfiguration_counts = dict(self.counts)  # type: ignore[attr-defined]


def default_observers(
    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY,
    lean: bool = False,
    carbon_intensity: Optional[CarbonIntensityTrace] = None,
    cost_model: Optional[CostModel] = None,
) -> List[Observer]:
    """The engine's default observer set.

    The full set reproduces every field the legacy monolithic runner
    populated, plus the streaming carbon / cost / per-pool SLO
    collectors; ``lean=True`` keeps only the summary observers (the
    streaming collectors are summary observers — they replace the
    timeline-dependent post-hoc passes in lean sweeps).
    """
    observers: List[Observer] = [
        EnergyObserver(),
        LatencyObserver(slo_policy=slo_policy),
        PowerObserver(),
        ServerCountObserver(),
        CarbonObserver(intensity=carbon_intensity),
        CostObserver(cost_model=cost_model),
        SLOAttainmentObserver(slo_policy=slo_policy),
    ]
    if not lean:
        observers.append(TimelineObserver())
    return observers
