"""``python -m repro`` — command-line front end for the reproduction.

Subcommands:

* ``run``   — simulate one policy on one trace and print the headline
  metrics (energy, latency percentiles, SLO attainment).  ``--backend
  fluid`` runs the binned fluid simulator (week-scale traces in
  milliseconds; no latency percentiles).
* ``sweep`` — expand a scenario grid over policies x trace x SLO scales
  x predictor accuracies x pool counts and run it, optionally in
  parallel (``--workers``).  ``--out results.jsonl`` (or ``.csv``)
  streams one record per completed scenario to disk instead of
  accumulating summaries in memory; a scenario that raises becomes an
  error record instead of aborting the sweep.  ``--resume`` reruns an
  interrupted sweep: scenarios already recorded in ``--out`` are
  skipped, the rest append, and a skipped/ran/failed report is printed.
* ``campaign`` — manifest-driven sensitivity campaigns:
  ``campaign run <manifest>`` expands a JSON/TOML manifest into a
  (possibly 1000+-scenario) grid and streams it through resumable file
  sinks, ``--shard i/n`` runs one deterministic shard for multi-host
  campaigns, ``campaign status`` rolls up per-shard completion,
  ``campaign report`` pivots the results into the manifest's
  sensitivity table and ``campaign validate`` / ``campaign list`` check
  manifests and list the bundled ones (``smoke``, ``fig11_accuracy``,
  ``sensitivity_grid``, ...).
* ``lint`` — domain-aware static analysis (determinism / unit-suffix /
  concurrency / immutability rules, see :mod:`repro.lint`): ``lint src
  tests`` exits non-zero on findings; ``--select/--ignore`` filter rule
  families, ``--format json`` emits a machine-readable report and
  ``--list-rules`` prints the catalog.
* ``list-experiments`` — list the registered paper artefacts.
* ``bench`` — run registered experiments by id and report wall-clock
  times (defaults to the light, analytic artefacts).

Installed as the ``repro`` console script by ``pip install -e .``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence


def _floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _trace_spec(args, path: Optional[str] = None):
    from repro.api import TraceSpec

    path = path or getattr(args, "trace_file", None)
    if path or args.trace in ("csv", "azure"):
        if not path:
            raise ValueError(f"--trace {args.trace} requires --trace-file PATH")
        kind = args.trace if args.trace in ("csv", "azure") else "csv"
        return TraceSpec(
            kind=kind,
            path=path,
            service=args.service,
            duration_s=args.duration,
            resample=args.resample,
        )
    if args.trace in ("one_hour", "week"):
        return TraceSpec(
            kind=args.trace,
            service=args.service,
            rate_scale=args.rate_scale,
            duration_s=args.duration,
            seed=args.seed,
        )
    return TraceSpec(
        kind="poisson",
        level=args.level,
        load_multiplier=args.load_multiplier,
        duration_s=args.duration or 1800.0,
        seed=args.seed,
    )


def _headline_row(key: str, summary) -> dict:
    # One flattening for the CLI table, --json output and the file
    # sinks: anything added to summary_record shows up everywhere.
    from repro.api import summary_record

    return summary_record(key, summary)


def _print_rows(rows: Sequence[dict]) -> None:
    header = (
        f"{'scenario':48s} {'kWh':>9s} {'srv':>6s} {'P50 TTFT':>9s} "
        f"{'P99 TTFT':>9s} {'P99 TBT':>8s} {'SLO':>6s} {'reqs':>7s} "
        f"{'kgCO2':>8s} {'USD':>9s}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['scenario']:48s} {row['energy_kwh']:9.3f} {row['average_servers']:6.1f} "
            f"{row['p50_ttft_s']:9.3f} {row['p99_ttft_s']:9.3f} {row['p99_tbt_s']:8.3f} "
            f"{row['slo_attainment']:6.3f} {row['requests']:7d} "
            f"{row['carbon_kg']:8.3f} {row['cost_usd']:9.2f}"
        )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_run(args) -> int:
    from repro.api import Scenario, run_scenario

    scenario = Scenario(
        policy=args.policy,
        trace=_trace_spec(args),
        slo_scale=args.slo_scale,
        predictor_accuracy=args.accuracy,
        pool_count=args.pools,
        static_servers=args.static_servers,
        max_servers=args.max_servers,
        model=args.model,
        backend=args.backend,
        fluid_bin_s=args.fluid_bin,
    )
    started = time.perf_counter()
    summary = run_scenario(scenario, lean=args.lean)
    elapsed = time.perf_counter() - started
    row = _headline_row(scenario.key, summary)
    if args.json:
        print(json.dumps({**row, "wall_s": elapsed}, indent=2))
    else:
        _print_rows([row])
        print(f"\nsimulated {summary.duration_s:.0f}s in {elapsed:.1f}s wall-clock")
    return 0


def cmd_sweep(args) -> int:
    from repro.api import run_grid, sink_for_path, sweep

    policies = _names(args.policies)
    if not policies:
        raise ValueError("--policies must name at least one policy")
    if args.traces:
        traces = tuple(_trace_spec(args, path=path) for path in _names(args.traces))
    else:
        traces = (_trace_spec(args),)
    grid = sweep(
        policies=policies,
        traces=traces,
        slo_scales=_floats(args.slo_scales) if args.slo_scales else (None,),
        accuracies=_floats(args.accuracies) if args.accuracies else (None,),
        pool_counts=_ints(args.pool_counts) if args.pool_counts else (None,),
        models=tuple(_names(args.models)) if args.models else (None,),
        backends=(args.backend,),
    )
    if args.fluid_bin is not None:
        grid = grid.with_(fluid_bin_s=args.fluid_bin)
    if args.out and args.json:
        raise ValueError(
            "--json and --out are mutually exclusive: with --out the "
            "streamed file is the machine-readable output"
        )
    if args.resume and not args.out:
        raise ValueError(
            "--resume requires --out PATH: the results file defines which "
            "scenarios are already done"
        )
    if (
        args.out
        and not args.resume
        and os.path.exists(args.out)
        and os.path.getsize(args.out) > 0
    ):
        raise ValueError(
            f"{args.out} already holds results; pass --resume to skip the "
            "scenarios it records and append the rest, or remove the file "
            "for a fresh sweep (it is never truncated)"
        )
    print(f"running {len(grid)} scenarios (workers={args.workers}) ...", file=sys.stderr)
    started = time.perf_counter()
    if args.out:
        # Streamed mode: one record is flushed to the file per completed
        # scenario; nothing is accumulated in memory.
        sink = run_grid(
            grid,
            workers=args.workers,
            lean=not args.timelines,
            mode=args.mode,
            sink=sink_for_path(args.out, resume=args.resume),
        )
        elapsed = time.perf_counter() - started
        report = sink.report
        print(
            f"{args.out}: {report.ran} ran, {report.skipped} skipped, "
            f"{report.failed} failed ({sink.count} records on disk) "
            f"in {elapsed:.1f}s wall-clock",
            file=sys.stderr,
        )
        # Failed scenarios are recorded as error records and retried by
        # a --resume rerun; surface them in the exit status.
        return 1 if report.failed else 0
    summaries = run_grid(
        grid, workers=args.workers, lean=not args.timelines, mode=args.mode
    )
    elapsed = time.perf_counter() - started
    rows = [_headline_row(key, summary) for key, summary in summaries.items()]
    if args.json:
        print(json.dumps({"wall_s": elapsed, "results": rows}, indent=2))
    else:
        _print_rows(rows)
        print(f"\n{len(rows)} scenarios in {elapsed:.1f}s wall-clock")
    return 0


def _parse_shard(text: Optional[str]):
    if text is None:
        return None
    match = text.split("/")
    if len(match) != 2:
        raise ValueError(
            f"--shard must look like I/N (e.g. 0/4), got {text!r}"
        )
    try:
        index, count = int(match[0]), int(match[1])
    except ValueError:
        raise ValueError(
            f"--shard must look like I/N (e.g. 0/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"--shard {text}: the index must lie in 0..N-1 (shards are "
            "0-based)"
        )
    return index, count


def _campaign_runner(args):
    from repro.api.campaign import CampaignRunner, load_manifest
    from repro.experiments.manifests import resolve_manifest

    manifest = load_manifest(resolve_manifest(args.manifest))
    return CampaignRunner(manifest, out=getattr(args, "out", None))


def cmd_campaign(args) -> int:
    if args.action == "list":
        from repro.api.campaign import load_manifest
        from repro.experiments.manifests import list_manifests, manifest_path

        entries = {
            name: load_manifest(manifest_path(name)) for name in list_manifests()
        }
        if args.json:
            print(
                json.dumps(
                    {
                        name: {
                            "description": manifest.description,
                            "output": manifest.output,
                            "shards": manifest.shards,
                        }
                        for name, manifest in entries.items()
                    },
                    indent=2,
                )
            )
            return 0
        for name, manifest in entries.items():
            print(f"{name:20s} {manifest.description.split('. ')[0]}")
        return 0

    runner = _campaign_runner(args)
    if args.action == "validate":
        grid = runner.validate()
        shards = args.shards or runner.manifest.shards
        if args.json:
            print(
                json.dumps(
                    {
                        "name": runner.manifest.name,
                        "scenarios": len(grid),
                        "shards": shards,
                        "output": runner.out,
                        "keys": list(grid.keys()[:10]),
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"{runner.manifest.name}: {len(grid)} scenarios, "
                f"{shards} shard(s), output {runner.out}"
            )
        return 0

    if args.action == "run":
        shard = _parse_shard(args.shard)
        started = time.perf_counter()
        shard_runs = runner.run(
            shard=shard,
            workers=args.workers,
            mode=args.mode,
            resume=not args.no_resume,
        )
        elapsed = time.perf_counter() - started
        failed = 0
        for shard_run in shard_runs:
            report = shard_run.report
            failed += report.failed
            print(
                f"{shard_run.path}: {report.ran} ran, {report.skipped} "
                f"skipped, {report.failed} failed",
                file=sys.stderr,
            )
        print(
            f"campaign {runner.manifest.name}: {len(shard_runs)} shard run(s) "
            f"in {elapsed:.1f}s wall-clock",
            file=sys.stderr,
        )
        return 1 if failed else 0

    if args.action == "status":
        status = runner.status()
        if args.json:
            print(json.dumps(status.to_dict(), indent=2))
        else:
            print(
                f"{status.name}: {status.completed}/{status.total} completed, "
                f"{status.failed} failed, {status.pending} pending"
                + (" — done" if status.done else "")
            )
            for shard in status.shards:
                label = (
                    f"shard {shard.index}/{shard.count}"
                    if shard.index is not None
                    else "(unsharded)"
                )
                print(
                    f"  {label:12s} {shard.completed}/{shard.expected} "
                    f"completed, {shard.failed} failed  {shard.path}"
                )
            if not status.shards:
                print("  no results files found yet — run the campaign first")
        return 1 if status.failed else 0

    # action == "report"
    table = runner.report()
    if args.json:
        print(json.dumps(table.to_dict(), indent=2))
    else:
        print(table.format())
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import run

    return run(args)


def cmd_list_experiments(args) -> int:
    from repro.experiments.registry import EXPERIMENTS, list_experiments

    identifiers = list_experiments(include_heavy=not args.light)
    if args.json:
        print(
            json.dumps(
                {
                    identifier: {
                        "description": EXPERIMENTS[identifier].description,
                        "heavy": EXPERIMENTS[identifier].heavy,
                    }
                    for identifier in identifiers
                },
                indent=2,
            )
        )
        return 0
    for identifier in identifiers:
        experiment = EXPERIMENTS[identifier]
        marker = " [heavy]" if experiment.heavy else ""
        print(f"{identifier:12s} {experiment.description}{marker}")
    return 0


def cmd_bench(args) -> int:
    from repro.experiments.registry import get_experiment, list_experiments

    identifiers = args.ids or list_experiments(include_heavy=args.heavy)
    timings = {}
    for identifier in identifiers:
        experiment = get_experiment(identifier)
        started = time.perf_counter()
        experiment.driver()
        timings[identifier] = time.perf_counter() - started
        if not args.json:
            print(f"{identifier:12s} {timings[identifier]:8.2f}s  {experiment.description}")
    if args.json:
        print(json.dumps(timings, indent=2))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default="one_hour",
        choices=("one_hour", "poisson", "csv", "azure", "week"),
        help="trace family: synthetic (one_hour/poisson), file replay "
             "(csv/azure), or the week-long binned trace (fluid backend only)",
    )
    parser.add_argument(
        "--backend", default="event", choices=("event", "fluid"),
        help="simulator: per-request event engine (default) or the binned "
             "fluid simulator the paper's large-scale figures use",
    )
    parser.add_argument(
        "--fluid-bin", type=float, default=None, metavar="SECONDS",
        help="bin width when the fluid backend bins a request-level trace "
             "(default 300s)",
    )
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="trace file to replay (implies --trace csv unless azure)")
    parser.add_argument("--resample", type=float, default=1.0,
                        help="burst-preserving rate factor for replayed traces")
    parser.add_argument("--service", default="conversation", choices=("conversation", "coding"))
    parser.add_argument("--duration", type=float, default=None, help="trace length in seconds")
    parser.add_argument("--rate-scale", type=float, default=10.0, help="load scale factor")
    parser.add_argument("--seed", type=int, default=7, help="trace RNG seed")
    parser.add_argument("--level", default="medium", choices=("low", "medium", "high"),
                        help="Poisson load level (with --trace poisson)")
    parser.add_argument("--load-multiplier", type=float, default=6.0,
                        help="Poisson level scale-up (with --trace poisson)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DynamoLLM reproduction: run scenarios, sweeps and paper artefacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="simulate one policy on one trace")
    run_parser.add_argument("--policy", default="DynamoLLM", help="policy name (see repro.policies)")
    _add_trace_arguments(run_parser)
    run_parser.add_argument("--slo-scale", type=float, default=None)
    run_parser.add_argument("--accuracy", type=float, default=None,
                            help="output-length predictor accuracy")
    run_parser.add_argument("--pools", type=int, default=None, help="pool-count override")
    run_parser.add_argument("--static-servers", type=int, default=None)
    run_parser.add_argument("--max-servers", type=int, default=None)
    run_parser.add_argument("--model", default=None,
                            help="model name from the catalog (see repro.llm)")
    run_parser.add_argument("--lean", action="store_true", help="skip timeline observers")
    run_parser.add_argument("--json", action="store_true")
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = subparsers.add_parser("sweep", help="run a scenario grid")
    sweep_parser.add_argument(
        "--policies", default="SinglePool,DynamoLLM",
        help="comma-separated policy names",
    )
    _add_trace_arguments(sweep_parser)
    sweep_parser.add_argument("--traces", default=None, metavar="PATHS",
                              help="comma-separated trace files to replay (one grid "
                                   "dimension; --trace picks csv vs azure parsing)")
    sweep_parser.add_argument("--models", default=None,
                              help="comma-separated catalog model names (grid dimension)")
    sweep_parser.add_argument("--slo-scales", default=None, help="comma-separated, e.g. 1,2,4")
    sweep_parser.add_argument("--accuracies", default=None, help="comma-separated, e.g. 1.0,0.8")
    sweep_parser.add_argument("--pool-counts", default=None, help="comma-separated, e.g. 2,4,9")
    sweep_parser.add_argument("--workers", type=int, default=None, help="parallel scenario runs")
    sweep_parser.add_argument(
        "--mode", default="thread", choices=("thread", "process"),
        help="worker pool kind (process = true multi-core parallelism)",
    )
    sweep_parser.add_argument("--timelines", action="store_true",
                              help="record full timelines (slower)")
    sweep_parser.add_argument("--out", default=None, metavar="PATH",
                              help="stream results to PATH (.jsonl/.ndjson or "
                                   ".csv; .json is rejected — the stream is "
                                   "JSON Lines, not a JSON document), one "
                                   "record per completed scenario, instead of "
                                   "holding every summary in memory; existing "
                                   "files are appended to, never truncated")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="skip scenarios already recorded in --out "
                                   "and run only the missing ones (rerun an "
                                   "interrupted sweep; failed scenarios are "
                                   "retried)")
    sweep_parser.add_argument("--json", action="store_true")
    sweep_parser.set_defaults(func=cmd_sweep)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="manifest-driven sensitivity campaigns (run/status/report)",
    )
    campaign_actions = campaign_parser.add_subparsers(dest="action", required=True)

    def _campaign_common(sub, with_out=True):
        sub.add_argument(
            "manifest",
            help="manifest path (.json/.toml) or bundled name (see "
                 "'campaign list')",
        )
        if with_out:
            sub.add_argument(
                "--out", default=None, metavar="PATH",
                help="override the manifest's output path (shard files "
                     "derive from it)",
            )
        sub.set_defaults(func=cmd_campaign)

    campaign_run = campaign_actions.add_parser(
        "run", help="run the campaign (or one shard) with resume"
    )
    _campaign_common(campaign_run)
    campaign_run.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only shard I of N (deterministic round-robin split; "
             "each shard streams into its own results file)",
    )
    campaign_run.add_argument("--workers", type=int, default=None,
                              help="parallel scenario runs (overrides manifest)")
    campaign_run.add_argument(
        "--mode", default=None, choices=("thread", "process"),
        help="worker pool kind (overrides manifest)",
    )
    campaign_run.add_argument(
        "--no-resume", action="store_true",
        help="refuse existing results instead of resuming into them "
             "(campaigns resume by default)",
    )

    campaign_status = campaign_actions.add_parser(
        "status", help="roll up per-shard completion of a campaign"
    )
    _campaign_common(campaign_status)
    campaign_status.add_argument("--json", action="store_true")

    campaign_report = campaign_actions.add_parser(
        "report", help="pivot campaign results into its sensitivity table"
    )
    _campaign_common(campaign_report)
    campaign_report.add_argument("--json", action="store_true")

    campaign_validate = campaign_actions.add_parser(
        "validate", help="expand and validate a manifest without running it"
    )
    _campaign_common(campaign_validate, with_out=False)
    campaign_validate.add_argument("--shards", type=int, default=None,
                                   help="report this shard count instead of the manifest's")
    campaign_validate.add_argument("--json", action="store_true")

    campaign_list = campaign_actions.add_parser(
        "list", help="list the bundled campaign manifests"
    )
    campaign_list.add_argument("--json", action="store_true")
    campaign_list.set_defaults(func=cmd_campaign, manifest=None)

    lint_parser = subparsers.add_parser(
        "lint",
        help="domain-aware static analysis (determinism/unit/concurrency/"
             "immutability rules)",
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=cmd_lint)

    list_parser = subparsers.add_parser("list-experiments", help="list paper artefacts")
    list_parser.add_argument("--light", action="store_true", help="hide heavy experiments")
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(func=cmd_list_experiments)

    bench_parser = subparsers.add_parser("bench", help="time registered experiments")
    bench_parser.add_argument("ids", nargs="*", help="experiment ids (default: all light)")
    bench_parser.add_argument("--heavy", action="store_true",
                              help="include heavy experiments when no ids given")
    bench_parser.add_argument("--json", action="store_true")
    bench_parser.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `repro ... | head` closes stdout early: die quietly like a
        # well-behaved filter.  Redirect stdout to devnull so the
        # interpreter's shutdown flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (KeyError, ValueError) as error:
        # Unknown policy / experiment / trace kind: the registries raise
        # KeyError with the known names listed — show it without a traceback.
        message = error.args[0] if error.args else str(error)
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
