"""The inference request abstraction.

A request carries its arrival time and true input/output token counts
(as in the Azure traces the paper uses, which record timestamp, input
tokens and output tokens).  The *true* output length is only used by the
simulator; controllers see a predicted length class instead, mirroring
the paper's output-length proxy predictor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional


_REQUEST_COUNTER = itertools.count()


@dataclass
class Request:
    """A single LLM inference request.

    Attributes
    ----------
    arrival_time:
        Seconds since the start of the trace.
    input_tokens / output_tokens:
        True prompt length and true generated length.
    request_id:
        Unique id assigned at construction.
    service:
        Name of the originating service (e.g. ``"conversation"``).
    slo_scale:
        Multiplier on the baseline SLO (5x of isolated latency); some
        services run with relaxed 10x or 20x SLOs (Section III-A).
    predicted_type:
        Filled in by the cluster manager after consulting the
        output-length predictor.
    """

    arrival_time: float
    input_tokens: int
    output_tokens: int
    request_id: int = field(default_factory=lambda: next(_REQUEST_COUNTER))
    service: str = "default"
    slo_scale: float = 1.0
    predicted_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.input_tokens <= 0:
            raise ValueError(f"input_tokens must be positive, got {self.input_tokens}")
        if self.output_tokens <= 0:
            raise ValueError(f"output_tokens must be positive, got {self.output_tokens}")
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be non-negative, got {self.arrival_time}")

    @property
    def total_tokens(self) -> int:
        """Total tokens processed for this request (prompt + generation)."""
        return self.input_tokens + self.output_tokens


@dataclass
class RequestOutcome:
    """What happened to a request once it ran through the cluster.

    All times are in seconds of simulated time.  ``ttft`` is the
    time-to-first-token (queueing plus prefill) and ``tbt`` the average
    time-between-tokens over the decode phase, matching the paper's
    performance metrics (Section II).
    """

    request: Request
    pool: str
    instance_id: str
    start_time: float
    first_token_time: float
    completion_time: float
    squashed: bool = False

    @property
    def ttft(self) -> float:
        """Time to first token in seconds."""
        return self.first_token_time - self.request.arrival_time

    @property
    def tbt(self) -> float:
        """Average time between output tokens in seconds."""
        decode_tokens = max(1, self.request.output_tokens - 1)
        return (self.completion_time - self.first_token_time) / decode_tokens

    @property
    def latency(self) -> float:
        """End-to-end latency in seconds."""
        return self.completion_time - self.request.arrival_time

    def meets(self, ttft_slo: float, tbt_slo: float) -> bool:
        """Whether this outcome satisfies the given SLOs (seconds)."""
        if self.squashed:
            return False
        return self.ttft <= ttft_slo and self.tbt <= tbt_slo
