"""Service level objectives (paper Table IV).

The paper sets per-bucket TTFT SLOs driven by the input length (250 ms
for short, 400 ms for medium, 2000 ms for long inputs) and a uniform
100 ms TBT SLO, defined as 5x the latency of an isolated request on an
unloaded system.  Some services run with relaxed SLOs (10x or 20x); the
``scale`` parameter expresses that relaxation relative to the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workload.classification import LengthClass, RequestType


@dataclass(frozen=True)
class SLO:
    """TTFT / TBT latency targets in seconds."""

    ttft_s: float
    tbt_s: float

    def scaled(self, factor: float) -> "SLO":
        """Return a relaxed (factor > 1) or tightened (factor < 1) SLO."""
        if factor <= 0:
            raise ValueError(f"SLO scale factor must be positive, got {factor}")
        return SLO(ttft_s=self.ttft_s * factor, tbt_s=self.tbt_s * factor)

    def is_met_by(self, ttft_s: float, tbt_s: float) -> bool:
        return ttft_s <= self.ttft_s and tbt_s <= self.tbt_s


# Table IV: TTFT SLO per input-length class; TBT SLO is uniform.
_TTFT_SLO_BY_INPUT: Dict[LengthClass, float] = {
    LengthClass.SHORT: 0.250,
    LengthClass.MEDIUM: 0.400,
    LengthClass.LONG: 2.000,
}
_TBT_SLO_S = 0.100

#: The paper's default SLO corresponds to 5x isolated latency.
SLO_SCALE_STRICT = 1.0
SLO_SCALE_RELAXED = 2.0   # the "10x" services
SLO_SCALE_LOOSE = 4.0     # the "20x" services


@dataclass(frozen=True)
class SLOPolicy:
    """Maps request types to their SLOs, with an optional global scale."""

    scale: float = SLO_SCALE_STRICT

    def slo_for(self, request_type: RequestType) -> SLO:
        """The SLO applicable to a request of the given type."""
        base = SLO(
            ttft_s=_TTFT_SLO_BY_INPUT[request_type.input_class],
            tbt_s=_TBT_SLO_S,
        )
        return base.scaled(self.scale)

    def ttft_slo(self, request_type: RequestType) -> float:
        return self.slo_for(request_type).ttft_s

    def tbt_slo(self, request_type: RequestType) -> float:
        return self.slo_for(request_type).tbt_s

    def table(self) -> Dict[str, SLO]:
        """SLOs for all nine request types (used by the Table IV driver)."""
        from repro.workload.classification import REQUEST_TYPES

        return {t.name: self.slo_for(t) for t in REQUEST_TYPES}


DEFAULT_SLO_POLICY = SLOPolicy()
