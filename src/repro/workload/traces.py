"""Trace containers and utilities.

A trace is an ordered collection of :class:`~repro.workload.request.Request`
objects, matching the structure of the Azure invocation traces the paper
uses (timestamp, input tokens, output tokens).  Traces can be binned
into fixed intervals to obtain load (tokens per second) and request-type
mix over time, which is what Figures 1 and 2 plot and what the load
predictor consumes.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.workload.classification import REQUEST_TYPE_NAMES, classify_request
from repro.workload.request import Request


@dataclass
class TraceBin:
    """Aggregated statistics of one time bin of a trace."""

    start_time: float
    duration: float
    request_count: int
    input_tokens: int
    output_tokens: int
    count_by_type: Dict[str, int] = field(default_factory=dict)
    tokens_by_type: Dict[str, int] = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def tokens_per_second(self) -> float:
        """Offered load in total tokens per second over this bin."""
        return self.total_tokens / self.duration if self.duration > 0 else 0.0

    @property
    def prompt_tokens_per_second(self) -> float:
        """Prompt (input) tokens per second, the paper's TPS load metric."""
        return self.input_tokens / self.duration if self.duration > 0 else 0.0

    @property
    def requests_per_second(self) -> float:
        return self.request_count / self.duration if self.duration > 0 else 0.0

    def type_fraction(self, type_name: str) -> float:
        """Fraction of requests in this bin belonging to ``type_name``."""
        if self.request_count == 0:
            return 0.0
        return self.count_by_type.get(type_name, 0) / self.request_count


@dataclass
class Trace:
    """An ordered sequence of requests belonging to one service."""

    name: str
    requests: List[Request]

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: r.arrival_time)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def duration(self) -> float:
        """Trace span in seconds (arrival of last request)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time

    @property
    def total_tokens(self) -> int:
        return sum(r.total_tokens for r in self.requests)

    @property
    def mean_tokens_per_second(self) -> float:
        duration = self.duration
        if duration <= 0:
            return 0.0
        return self.total_tokens / duration

    def slice(self, start: float, end: float, rebase: bool = True) -> "Trace":
        """Requests arriving in ``[start, end)``; arrival times rebased to 0."""
        selected = [r for r in self.requests if start <= r.arrival_time < end]
        if rebase:
            selected = [
                Request(
                    arrival_time=r.arrival_time - start,
                    input_tokens=r.input_tokens,
                    output_tokens=r.output_tokens,
                    service=r.service,
                    slo_scale=r.slo_scale,
                )
                for r in selected
            ]
        return Trace(name=f"{self.name}[{start:.0f}:{end:.0f}]", requests=selected)

    def scaled(self, rate_factor: float) -> "Trace":
        """Thin or densify the trace by sampling requests.

        ``rate_factor`` < 1 keeps a deterministic subsample (every k-th
        request); > 1 replicates requests with slight time offsets.  Used
        to size experiments to the simulated cluster capacity.
        """
        if rate_factor <= 0:
            raise ValueError("rate_factor must be positive")
        if rate_factor == 1.0:
            return self
        requests: List[Request] = []
        if rate_factor < 1.0:
            keep_every = int(round(1.0 / rate_factor))
            requests = [
                Request(
                    arrival_time=r.arrival_time,
                    input_tokens=r.input_tokens,
                    output_tokens=r.output_tokens,
                    service=r.service,
                    slo_scale=r.slo_scale,
                )
                for i, r in enumerate(self.requests)
                if i % keep_every == 0
            ]
        else:
            copies = int(round(rate_factor))
            for r in self.requests:
                for c in range(copies):
                    requests.append(
                        Request(
                            arrival_time=r.arrival_time + 0.001 * c,
                            input_tokens=r.input_tokens,
                            output_tokens=r.output_tokens,
                            service=r.service,
                            slo_scale=r.slo_scale,
                        )
                    )
        return Trace(name=f"{self.name}x{rate_factor:g}", requests=requests)


@dataclass
class BinnedTrace:
    """A named, binned trace — the fluid simulator's native input.

    Week-long synthetic traces are generated directly as bins (request
    level would mean millions of objects), and the fluid backend of the
    :class:`~repro.api.scenario.Scenario` API accepts this wrapper
    wherever a request-level :class:`Trace` would otherwise go.
    """

    name: str
    bins: List[TraceBin]

    def __len__(self) -> int:
        return len(self.bins)

    def __iter__(self):
        return iter(self.bins)

    @property
    def duration(self) -> float:
        """Binned span in seconds (end of the last bin)."""
        if not self.bins:
            return 0.0
        last = self.bins[-1]
        return last.start_time + last.duration

    @property
    def total_tokens(self) -> int:
        return sum(b.total_tokens for b in self.bins)


def bin_trace(trace: Trace, bin_seconds: float, horizon: Optional[float] = None) -> List[TraceBin]:
    """Aggregate a trace into fixed-duration bins.

    ``horizon`` extends (or truncates) the binned period; by default the
    bins cover the full trace duration.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    span = horizon if horizon is not None else trace.duration
    n_bins = max(1, int(span // bin_seconds) + (1 if span % bin_seconds else 0))
    bins = [
        TraceBin(
            start_time=i * bin_seconds,
            duration=bin_seconds,
            request_count=0,
            input_tokens=0,
            output_tokens=0,
            count_by_type={},
            tokens_by_type={},
        )
        for i in range(n_bins)
    ]
    for request in trace.requests:
        index = int(request.arrival_time // bin_seconds)
        if index >= n_bins:
            continue
        bucket = bins[index]
        bucket.request_count += 1
        bucket.input_tokens += request.input_tokens
        bucket.output_tokens += request.output_tokens
        type_name = classify_request(request).name
        bucket.count_by_type[type_name] = bucket.count_by_type.get(type_name, 0) + 1
        bucket.tokens_by_type[type_name] = (
            bucket.tokens_by_type.get(type_name, 0) + request.total_tokens
        )
    return bins


def type_distribution(trace: Trace) -> Dict[str, float]:
    """Fraction of requests per request type over the whole trace."""
    counts = {name: 0 for name in REQUEST_TYPE_NAMES}
    for request in trace.requests:
        counts[classify_request(request).name] += 1
    total = max(1, len(trace.requests))
    return {name: counts[name] / total for name in REQUEST_TYPE_NAMES}


def save_trace_csv(trace: Trace, path: str) -> None:
    """Write a trace as CSV with columns: arrival_time, input, output, service."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["arrival_time", "input_tokens", "output_tokens", "service"])
        for request in trace.requests:
            writer.writerow(
                [f"{request.arrival_time:.3f}", request.input_tokens, request.output_tokens, request.service]
            )


def load_trace_csv(path: str, name: Optional[str] = None) -> Trace:
    """Load a trace written by :func:`save_trace_csv` (or a real trace dump)."""
    requests: List[Request] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            requests.append(
                Request(
                    arrival_time=float(row["arrival_time"]),
                    input_tokens=int(row["input_tokens"]),
                    output_tokens=int(row["output_tokens"]),
                    service=row.get("service", "default") or "default",
                )
            )
    return Trace(name=name or path, requests=requests)


def merge_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Merge several traces into one (requests interleaved by arrival time)."""
    requests: List[Request] = []
    for trace in traces:
        requests.extend(trace.requests)
    return Trace(name=name, requests=requests)
