"""Trace-replay loaders: CSV and Azure-format invocation traces.

The paper replays Azure LLM-inference invocation traces (timestamp,
context tokens, generated tokens).  This module grounds the simulator in
the same kind of data:

* :func:`load_request_csv` — generic request CSVs with flexible column
  names (``arrival_time``/``timestamp``, ``input_tokens``/``ContextTokens``,
  ``output_tokens``/``GeneratedTokens``);
* :func:`load_azure_trace` — the Azure LLM-inference trace format
  (datetime ``TIMESTAMP`` column), rebased to seconds from the first
  arrival, with optional burst-preserving resampling and duration
  clipping;
* :func:`resample_trace` — deterministic error-diffusion resampling that
  scales the request rate while preserving the local burst structure of
  the original arrivals (uniform thinning or Poisson re-drawing would
  flatten exactly the bursts the controllers must react to);
* :func:`sample_trace_path` — bundled offline sample traces used by the
  test suite, the examples and the CLI quickstart.

Parsed rows are cached per ``(path, mtime, size)`` so that grids whose
scenarios share a trace file parse it once per process; every load still
returns fresh :class:`~repro.workload.request.Request` objects because
the simulator annotates requests in place (``predicted_type``).
"""

from __future__ import annotations

import csv
import os
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workload.request import Request
from repro.workload.traces import Trace

#: Accepted spellings (lower-cased, underscores stripped) per column role.
_TIME_COLUMNS = ("arrivaltime", "timestamp", "time", "arrival")
_INPUT_COLUMNS = ("inputtokens", "contexttokens", "input", "prompttokens")
_OUTPUT_COLUMNS = ("outputtokens", "generatedtokens", "output", "completiontokens")
_SERVICE_COLUMNS = ("service", "app", "workload")

#: Parsed rows per (absolute path, mtime, size): (arrival, input, output, service).
_ROW_CACHE: Dict[Tuple[str, float, int], Tuple[Tuple[float, int, int, Optional[str]], ...]] = {}


def clear_trace_cache() -> None:
    """Drop the per-process parsed-row cache (mainly for tests)."""
    _ROW_CACHE.clear()


def _normalise(column: str) -> str:
    return column.strip().lower().replace("_", "").replace("-", "")


def _find_column(fieldnames: Sequence[str], candidates: Sequence[str]) -> Optional[str]:
    by_normalised = {_normalise(name): name for name in fieldnames if name}
    for candidate in candidates:
        if candidate in by_normalised:
            return by_normalised[candidate]
    return None


def _parse_timestamp(value: str) -> float:
    """A timestamp cell as seconds: plain float, or an ISO-ish datetime.

    Azure traces use ``2023-11-16 18:17:03.2910407``-style timestamps
    with seven fractional digits; ``datetime.fromisoformat`` only accepts
    up to six on older Pythons, so the fraction is truncated first.
    Naive datetimes are taken as UTC — interpreting them in the host's
    local timezone would make replayed arrival gaps machine-dependent
    and corrupt bursts across DST transitions (rebasing to the first
    arrival cancels any constant offset anyway).
    """
    text = value.strip()
    try:
        return float(text)
    except ValueError:
        pass
    if "." in text:
        head, _, fraction = text.rpartition(".")
        digits = "".join(ch for ch in fraction if ch.isdigit())
        if digits and digits == fraction[: len(digits)]:
            text = f"{head}.{digits[:6]}{fraction[len(digits):]}"
    parsed = datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.timestamp()


def _read_rows(path: str) -> Tuple[Tuple[float, int, int, Optional[str]], ...]:
    """Parse (and cache) the usable rows of a trace CSV.

    Rows with non-positive token counts (failed or cache-hit invocations
    in real traces) are skipped rather than crashing request validation;
    an entirely unusable file raises ``ValueError``.
    """
    resolved = os.path.abspath(path)
    stat = os.stat(resolved)
    cache_key = (resolved, stat.st_mtime, stat.st_size)
    if cache_key in _ROW_CACHE:
        return _ROW_CACHE[cache_key]

    rows: List[Tuple[float, int, int, Optional[str]]] = []
    with open(resolved, newline="") as handle:
        reader = csv.DictReader(handle)
        fieldnames = reader.fieldnames or []
        time_col = _find_column(fieldnames, _TIME_COLUMNS)
        input_col = _find_column(fieldnames, _INPUT_COLUMNS)
        output_col = _find_column(fieldnames, _OUTPUT_COLUMNS)
        service_col = _find_column(fieldnames, _SERVICE_COLUMNS)
        if time_col is None or input_col is None or output_col is None:
            raise ValueError(
                f"{path}: could not locate timestamp/input/output columns in "
                f"header {fieldnames!r}"
            )
        for row in reader:
            try:
                arrival = _parse_timestamp(row[time_col])
                n_in = int(float(row[input_col]))
                n_out = int(float(row[output_col]))
            except (TypeError, ValueError, KeyError):
                continue  # malformed row
            if n_in <= 0 or n_out <= 0:
                continue  # zero-token invocations carry no simulatable work
            service = (row.get(service_col) or "").strip() if service_col else ""
            rows.append((arrival, n_in, n_out, service or None))
    if not rows:
        raise ValueError(f"{path}: no usable trace rows (positive-token requests)")
    _ROW_CACHE[cache_key] = tuple(rows)
    return _ROW_CACHE[cache_key]


def _requests_from_rows(
    rows: Sequence[Tuple[float, int, int, Optional[str]]],
    service: str,
    rebase: bool,
    slo_scale: float,
) -> List[Request]:
    origin = min(row[0] for row in rows) if rebase else 0.0
    return [
        Request(
            arrival_time=arrival - origin,
            input_tokens=n_in,
            output_tokens=n_out,
            service=row_service or service,
            slo_scale=slo_scale,
        )
        for arrival, n_in, n_out, row_service in rows
    ]


# ----------------------------------------------------------------------
# Loaders
# ----------------------------------------------------------------------
def load_request_csv(
    path: str,
    name: Optional[str] = None,
    service: str = "default",
    slo_scale: float = 1.0,
    rebase: bool = False,
) -> Trace:
    """Load a generic request CSV (timestamp / input / output rows).

    Column names are matched case-insensitively against the common
    spellings, so both :func:`repro.workload.traces.save_trace_csv`
    output and third-party dumps load without editing.  Numeric
    timestamps are taken as seconds from trace start and preserved
    exactly; absolute timestamps (datetimes, or offsets beyond a year)
    are rebased to seconds from the first arrival.
    """
    rows = _read_rows(path)
    rebase = rebase or min(row[0] for row in rows) > 366.0 * 86400.0
    requests = _requests_from_rows(rows, service, rebase, slo_scale)
    return Trace(name=name or os.path.basename(path), requests=requests)


def load_azure_trace(
    path: str,
    name: Optional[str] = None,
    service: str = "azure",
    slo_scale: float = 1.0,
    resample: float = 1.0,
    duration_s: Optional[float] = None,
) -> Trace:
    """Load an Azure LLM-inference trace (TIMESTAMP/ContextTokens/GeneratedTokens).

    Arrival times are rebased to seconds from the first invocation.
    ``resample`` applies burst-preserving rate scaling (see
    :func:`resample_trace`) and ``duration_s`` clips the replayed window,
    which is how week-long production traces are sized down to tractable
    simulations without flattening their bursts.
    """
    rows = _read_rows(path)
    requests = _requests_from_rows(rows, service, rebase=True, slo_scale=slo_scale)
    trace = Trace(name=name or os.path.basename(path), requests=requests)
    if resample != 1.0:
        trace = resample_trace(trace, resample)
    if duration_s is not None and duration_s < trace.duration:
        trace = trace.slice(0.0, duration_s)
    return trace


# ----------------------------------------------------------------------
# Burst-preserving resampling
# ----------------------------------------------------------------------
def resample_trace(trace: Trace, rate_factor: float, jitter_s: float = 0.001) -> Trace:
    """Scale a trace's request rate while preserving its burst structure.

    Deterministic error diffusion: every request contributes
    ``rate_factor`` copies on average, with the fractional remainder
    carried to the next request.  Local arrival density is multiplied
    uniformly, so bursts stay bursts at any factor — unlike uniform
    stride thinning (which can alias periodic bursts away) or Poisson
    re-drawing (which erases them entirely).  Replicated requests are
    offset by ``jitter_s`` to keep arrival times distinct.
    """
    if rate_factor <= 0:
        raise ValueError("rate_factor must be positive")
    if rate_factor == 1.0:
        return trace
    requests: List[Request] = []
    carry = 0.0
    for request in trace.requests:
        carry += rate_factor
        copies = int(carry)
        carry -= copies
        for index in range(copies):
            requests.append(
                Request(
                    arrival_time=request.arrival_time + jitter_s * index,
                    input_tokens=request.input_tokens,
                    output_tokens=request.output_tokens,
                    service=request.service,
                    slo_scale=request.slo_scale,
                )
            )
    return Trace(name=f"{trace.name}@x{rate_factor:g}", requests=requests)


# ----------------------------------------------------------------------
# Bundled sample traces (offline fixtures)
# ----------------------------------------------------------------------
_DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

SAMPLE_TRACES: Dict[str, str] = {
    "csv": "sample_conversation.csv",
    "azure": "sample_azure.csv",
}


def sample_trace_path(kind: str = "csv") -> str:
    """Path of a bundled sample trace (``"csv"`` or ``"azure"``).

    The samples are small deterministic extracts committed with the
    package so the examples, the CLI quickstart and the test suite work
    fully offline.
    """
    try:
        filename = SAMPLE_TRACES[kind]
    except KeyError:
        known = ", ".join(sorted(SAMPLE_TRACES))
        raise KeyError(f"unknown sample trace kind {kind!r}; known kinds: {known}") from None
    return os.path.join(_DATA_DIR, filename)
