"""Synthetic production-like traces.

The paper uses private week-long invocation traces of two Azure
services, *Coding* and *Conversation*, plus a public 1-hour trace.
Those traces are not available, so this module generates synthetic
equivalents that preserve the two signals the controllers react to:

* the request-type mix over time (Figure 1): Conversation skews towards
  short inputs / long outputs, Coding towards long inputs / short
  outputs, and both contain every bucket with time-varying popularity;
* the load shape over time (Figure 2): both services are diurnal;
  Coding has pronounced peaks during working hours, deep valleys at
  night and much lower weekend load (peak/valley about 35x), while
  Conversation is milder (peak/valley about 3x).

Lengths are drawn from log-normal distributions per service, which is
the standard empirical fit for LLM prompt/generation lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.rng import RngStream
from repro.workload.classification import classify_length
from repro.workload.request import Request
from repro.workload.traces import Trace, TraceBin

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


@dataclass(frozen=True)
class ServiceProfile:
    """Statistical description of one LLM service's workload.

    Attributes
    ----------
    name:
        Service name (``"coding"`` or ``"conversation"``).
    input_median / input_sigma:
        Median and log-space sigma of the prompt-length log-normal.
    output_median / output_sigma:
        Median and log-space sigma of the generation-length log-normal.
    peak_requests_per_second:
        Arrival rate at the weekly peak.
    night_factor:
        Load multiplier at the deepest point of the night valley.
    weekend_factor:
        Additional multiplier applied on Saturday and Sunday.
    diurnal_sharpness:
        Controls how peaky the working-hours bump is (higher = sharper).
    burstiness:
        Multiplicative noise on the per-bin arrival rate.
    max_input_tokens / max_output_tokens:
        Hard caps (the model context window and generation limit).
    """

    name: str
    input_median: float
    input_sigma: float
    output_median: float
    output_sigma: float
    peak_requests_per_second: float = 2.0
    night_factor: float = 0.3
    weekend_factor: float = 0.8
    diurnal_sharpness: float = 2.0
    burstiness: float = 0.15
    max_input_tokens: int = 8192
    max_output_tokens: int = 2048

    def load_shape(self, time_s: float) -> float:
        """Relative load (0..1] at ``time_s`` seconds from Monday 00:00."""
        day = int(time_s // SECONDS_PER_DAY) % 7
        hour = (time_s % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        # Working-hours bump centred at 14:00 local time.
        bump = math.exp(-((hour - 14.0) ** 2) / (2.0 * (4.5 / self.diurnal_sharpness) ** 2))
        shape = self.night_factor + (1.0 - self.night_factor) * bump
        if day >= 5:  # Saturday / Sunday
            shape *= self.weekend_factor
        return max(1e-3, min(1.0, shape))

    def arrival_rate(self, time_s: float) -> float:
        """Expected arrivals per second at ``time_s``."""
        return self.peak_requests_per_second * self.load_shape(time_s)


#: Conversation: shortish prompts, long generations, mild diurnality.
CONVERSATION_PROFILE = ServiceProfile(
    name="conversation",
    input_median=330.0,
    input_sigma=1.15,
    output_median=260.0,
    output_sigma=0.95,
    peak_requests_per_second=2.0,
    night_factor=0.42,
    weekend_factor=0.90,
    diurnal_sharpness=1.4,
    burstiness=0.08,
)

#: Coding: long prompts (files / diffs), short generations, deep valleys.
CODING_PROFILE = ServiceProfile(
    name="coding",
    input_median=900.0,
    input_sigma=1.05,
    output_median=110.0,
    output_sigma=1.00,
    peak_requests_per_second=2.0,
    night_factor=0.08,
    weekend_factor=0.30,
    diurnal_sharpness=2.4,
    burstiness=0.12,
)

SERVICE_PROFILES: Dict[str, ServiceProfile] = {
    CONVERSATION_PROFILE.name: CONVERSATION_PROFILE,
    CODING_PROFILE.name: CODING_PROFILE,
}


def get_service_profile(name: str) -> ServiceProfile:
    try:
        return SERVICE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(SERVICE_PROFILES))
        raise KeyError(f"unknown service {name!r}; known services: {known}") from None


@dataclass
class SyntheticTraceGenerator:
    """Generates request-level or binned traces for a service profile."""

    profile: ServiceProfile
    seed: int = 7
    rate_scale: float = 1.0
    _rng: RngStream = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = RngStream(self.seed, f"trace/{self.profile.name}")

    # ------------------------------------------------------------------
    # Length sampling
    # ------------------------------------------------------------------
    def _sample_lengths(self, count: int, time_s: float) -> List[tuple]:
        """Sample (input, output) token pairs.

        The length mix drifts slowly over the day so the request-type
        distribution changes over time (as in Figure 1): afternoons see
        slightly longer interactions than early mornings.
        """
        if count <= 0:
            return []
        hour = (time_s % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        drift = 1.0 + 0.25 * math.sin(2.0 * math.pi * (hour - 6.0) / 24.0)
        rng = self._rng.generator
        inputs = rng.lognormal(
            mean=math.log(self.profile.input_median * drift),
            sigma=self.profile.input_sigma,
            size=count,
        )
        outputs = rng.lognormal(
            mean=math.log(self.profile.output_median * drift),
            sigma=self.profile.output_sigma,
            size=count,
        )
        pairs = []
        for raw_in, raw_out in zip(inputs, outputs):
            n_in = int(min(self.profile.max_input_tokens, max(4, round(raw_in))))
            n_out = int(min(self.profile.max_output_tokens, max(2, round(raw_out))))
            pairs.append((n_in, n_out))
        return pairs

    def _bin_rate(self, start: float, bin_seconds: float) -> float:
        """Expected arrivals in a bin starting at ``start``."""
        mid = start + bin_seconds / 2.0
        rate = self.profile.arrival_rate(mid) * self.rate_scale
        noise = 1.0 + self.profile.burstiness * float(self._rng.generator.standard_normal())
        return max(0.0, rate * noise) * bin_seconds

    # ------------------------------------------------------------------
    # Request-level traces (used for the 1-hour and 1-day experiments)
    # ------------------------------------------------------------------
    def generate_requests(
        self,
        duration_s: float,
        start_offset_s: float = 0.0,
        bin_seconds: float = 10.0,
        slo_scale: float = 1.0,
    ) -> Trace:
        """Generate a request-level trace covering ``duration_s`` seconds.

        ``start_offset_s`` positions the window inside the week (e.g. a
        Tuesday afternoon peak hour), which sets the load level and mix.
        """
        requests: List[Request] = []
        rng = self._rng.generator
        n_bins = int(math.ceil(duration_s / bin_seconds))
        for index in range(n_bins):
            bin_start = index * bin_seconds
            expected = self._bin_rate(start_offset_s + bin_start, bin_seconds)
            count = int(rng.poisson(expected))
            if count == 0:
                continue
            arrival_offsets = sorted(rng.uniform(0.0, bin_seconds, size=count))
            for offset, (n_in, n_out) in zip(
                arrival_offsets, self._sample_lengths(count, start_offset_s + bin_start)
            ):
                requests.append(
                    Request(
                        arrival_time=bin_start + float(offset),
                        input_tokens=n_in,
                        output_tokens=n_out,
                        service=self.profile.name,
                        slo_scale=slo_scale,
                    )
                )
        return Trace(name=f"{self.profile.name}-{duration_s / 3600.0:.0f}h", requests=requests)

    # ------------------------------------------------------------------
    # Binned traces (used for the week-long fluid simulations)
    # ------------------------------------------------------------------
    def generate_bins(
        self,
        duration_s: float,
        bin_seconds: float = 300.0,
        start_offset_s: float = 0.0,
        samples_per_bin: int = 64,
    ) -> List[TraceBin]:
        """Generate aggregate per-bin load without materialising requests.

        Each bin records the expected request count and the token volume
        per request type, estimated from ``samples_per_bin`` sampled
        length pairs.  This is the input to the coarse (fluid) simulator
        used for the day/week experiments, mirroring the paper's
        discrete-time simulator for large-scale results (Section V-E).
        """
        bins: List[TraceBin] = []
        n_bins = int(math.ceil(duration_s / bin_seconds))
        for index in range(n_bins):
            bin_start = index * bin_seconds
            expected = self._bin_rate(start_offset_s + bin_start, bin_seconds)
            count = max(0, int(round(expected)))
            count_by_type: Dict[str, int] = {}
            tokens_by_type: Dict[str, int] = {}
            input_tokens = 0
            output_tokens = 0
            if count > 0:
                sample_count = min(samples_per_bin, max(8, count))
                samples = self._sample_lengths(sample_count, start_offset_s + bin_start)
                per_sample_weight = count / len(samples)
                for n_in, n_out in samples:
                    type_name = classify_length(n_in, n_out).name
                    count_by_type[type_name] = count_by_type.get(type_name, 0) + 1
                    tokens_by_type[type_name] = (
                        tokens_by_type.get(type_name, 0) + n_in + n_out
                    )
                    input_tokens += n_in
                    output_tokens += n_out
                # Scale sampled statistics up to the expected bin volume.
                count_by_type = {
                    k: int(round(v * per_sample_weight)) for k, v in count_by_type.items()
                }
                tokens_by_type = {
                    k: int(round(v * per_sample_weight)) for k, v in tokens_by_type.items()
                }
                input_tokens = int(round(input_tokens * per_sample_weight))
                output_tokens = int(round(output_tokens * per_sample_weight))
            bins.append(
                TraceBin(
                    start_time=bin_start,
                    duration=bin_seconds,
                    request_count=count,
                    input_tokens=input_tokens,
                    output_tokens=output_tokens,
                    count_by_type=count_by_type,
                    tokens_by_type=tokens_by_type,
                )
            )
        return bins


# ----------------------------------------------------------------------
# Convenience constructors used throughout the experiments
# ----------------------------------------------------------------------
def make_one_hour_trace(
    service: str = "conversation",
    seed: int = 7,
    rate_scale: float = 1.0,
    slo_scale: float = 1.0,
) -> Trace:
    """A 1-hour request-level trace (stand-in for the open-source trace).

    The window is placed on Tuesday early afternoon, near the weekly
    peak, so that the hour contains both a ramp and a local dip.
    """
    generator = SyntheticTraceGenerator(get_service_profile(service), seed=seed, rate_scale=rate_scale)
    start = SECONDS_PER_DAY + 12.5 * SECONDS_PER_HOUR  # Tuesday 12:30
    return generator.generate_requests(
        duration_s=SECONDS_PER_HOUR, start_offset_s=start, slo_scale=slo_scale
    )


def make_day_trace(
    service: str = "conversation",
    seed: int = 7,
    rate_scale: float = 1.0,
    slo_scale: float = 1.0,
) -> Trace:
    """A 24-hour request-level trace starting Tuesday 00:00."""
    generator = SyntheticTraceGenerator(get_service_profile(service), seed=seed, rate_scale=rate_scale)
    return generator.generate_requests(
        duration_s=SECONDS_PER_DAY,
        start_offset_s=SECONDS_PER_DAY,
        bin_seconds=30.0,
        slo_scale=slo_scale,
    )


def make_week_trace(
    service: str = "conversation",
    seed: int = 7,
    rate_scale: float = 1.0,
    bin_seconds: float = 300.0,
) -> List[TraceBin]:
    """A week-long binned trace starting Monday 00:00 (for fluid runs)."""
    generator = SyntheticTraceGenerator(get_service_profile(service), seed=seed, rate_scale=rate_scale)
    return generator.generate_bins(duration_s=SECONDS_PER_WEEK, bin_seconds=bin_seconds)
