"""Output-length prediction (Section IV-D).

The real system uses a BERT-based proxy model that classifies the
expected output length of a request as short, medium or long.  The
prediction is what steers a request to an instance pool; the true
length only becomes known as the request executes.

For the reproduction we model the predictor as an *accuracy-
parameterised oracle*: with probability ``accuracy`` it returns the true
output class, otherwise it returns a neighbouring class (bounded error,
exactly the error model of the Figure 11 sensitivity study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.rng import RngStream
from repro.workload.classification import (
    LengthClass,
    RequestType,
    classify_length,
)
from repro.workload.request import Request

_CLASS_ORDER = (LengthClass.SHORT, LengthClass.MEDIUM, LengthClass.LONG)


@dataclass
class OutputLengthPredictor:
    """Predicts the request type (input class is known, output is guessed).

    Parameters
    ----------
    accuracy:
        Probability that the output-length class is predicted correctly.
        The remaining probability mass is split between the adjacent
        classes (bounded misclassification).
    seed:
        RNG seed for the error injection.
    """

    accuracy: float = 1.0
    seed: int = 23
    _rng: RngStream = field(init=False, repr=False)
    _stats: Dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {self.accuracy}")
        self._rng = RngStream(self.seed, "output-length-predictor")
        self._stats = {"total": 0, "correct": 0, "over": 0, "under": 0}

    def predict(self, request: Request) -> RequestType:
        """Predict the request type; input length is always exact."""
        true_type = classify_length(request.input_tokens, request.output_tokens)
        self._stats["total"] += 1
        if self.accuracy >= 1.0 or self._rng.random() < self.accuracy:
            self._stats["correct"] += 1
            return true_type
        predicted_output = self._perturb(true_type.output_class)
        if _CLASS_ORDER.index(predicted_output) > _CLASS_ORDER.index(true_type.output_class):
            self._stats["over"] += 1
        else:
            self._stats["under"] += 1
        return RequestType(true_type.input_class, predicted_output)

    def _perturb(self, true_class: LengthClass) -> LengthClass:
        """Return a neighbouring (incorrect) output class."""
        index = _CLASS_ORDER.index(true_class)
        candidates = []
        if index > 0:
            candidates.append(_CLASS_ORDER[index - 1])
        if index < len(_CLASS_ORDER) - 1:
            candidates.append(_CLASS_ORDER[index + 1])
        if len(candidates) == 1:
            return candidates[0]
        return candidates[int(self._rng.integers(0, len(candidates)))]

    @property
    def observed_accuracy(self) -> float:
        """Fraction of predictions that were correct so far."""
        if self._stats["total"] == 0:
            return 1.0
        return self._stats["correct"] / self._stats["total"]

    @property
    def stats(self) -> Dict[str, int]:
        return dict(self._stats)
