"""Open-loop Poisson arrival generation (Figure 12 sensitivity study).

The paper generates Low, Medium and High load levels with Poisson
inter-arrival times.  The load levels correspond to the prompt-token
throughputs the characterisation uses: roughly 650, 2000 and 4000
prompt tokens per second (Tables I and II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.rng import RngStream
from repro.workload.classification import REQUEST_TYPE_NAMES, representative_lengths, RequestType
from repro.workload.request import Request
from repro.workload.synthetic import ServiceProfile, CONVERSATION_PROFILE
from repro.workload.traces import Trace


@dataclass(frozen=True)
class LoadLevel:
    """A named load level expressed in prompt tokens per second."""

    name: str
    prompt_tokens_per_second: float


#: Load levels used by the characterisation (Table II) and Figure 12.
LOAD_LEVELS: Dict[str, LoadLevel] = {
    "low": LoadLevel("low", 650.0),
    "medium": LoadLevel("medium", 2000.0),
    "high": LoadLevel("high", 4000.0),
}


def get_load_level(name: str) -> LoadLevel:
    try:
        return LOAD_LEVELS[name]
    except KeyError:
        known = ", ".join(sorted(LOAD_LEVELS))
        raise KeyError(f"unknown load level {name!r}; known levels: {known}") from None


@dataclass
class PoissonArrivalGenerator:
    """Generates constant-rate Poisson traces at a target token load.

    Parameters
    ----------
    profile:
        Service profile supplying the length distributions; defaults to
        Conversation (the service the characterisation is based on).
    seed:
        RNG seed.
    """

    profile: ServiceProfile = CONVERSATION_PROFILE
    seed: int = 11

    def __post_init__(self) -> None:
        self._rng = RngStream(self.seed, f"poisson/{self.profile.name}")

    def _mean_prompt_tokens(self, request_type: Optional[str]) -> float:
        if request_type is not None:
            return float(representative_lengths(RequestType.from_name(request_type))[0])
        # Mean of the service's log-normal prompt distribution.
        import math

        return self.profile.input_median * math.exp(self.profile.input_sigma ** 2 / 2.0)

    def generate(
        self,
        load: LoadLevel,
        duration_s: float,
        request_type: Optional[str] = None,
        slo_scale: float = 1.0,
    ) -> Trace:
        """Create a trace whose prompt-token rate matches ``load``.

        If ``request_type`` is given, every request uses that bucket's
        representative lengths (this is how the per-bucket heat-map rows
        of Table I are exercised); otherwise lengths follow the service
        profile.
        """
        mean_prompt = self._mean_prompt_tokens(request_type)
        arrival_rate = load.prompt_tokens_per_second / mean_prompt
        rng = self._rng.generator
        requests: List[Request] = []
        time = 0.0
        while True:
            time += float(rng.exponential(1.0 / arrival_rate))
            if time >= duration_s:
                break
            n_in, n_out = self._sample_lengths(request_type, rng)
            requests.append(
                Request(
                    arrival_time=time,
                    input_tokens=n_in,
                    output_tokens=n_out,
                    service=self.profile.name,
                    slo_scale=slo_scale,
                )
            )
        name = f"poisson-{load.name}" + (f"-{request_type}" if request_type else "")
        return Trace(name=name, requests=requests)

    def _sample_lengths(self, request_type: Optional[str], rng) -> Tuple[int, int]:
        import math

        if request_type is not None:
            base_in, base_out = representative_lengths(RequestType.from_name(request_type))
            # Small jitter keeps the bucket while avoiding identical requests.
            n_in = max(4, int(round(base_in * rng.uniform(0.85, 1.15))))
            n_out = max(2, int(round(base_out * rng.uniform(0.85, 1.15))))
            return n_in, n_out
        n_in = int(
            max(4, min(self.profile.max_input_tokens, rng.lognormal(math.log(self.profile.input_median), self.profile.input_sigma)))
        )
        n_out = int(
            max(2, min(self.profile.max_output_tokens, rng.lognormal(math.log(self.profile.output_median), self.profile.output_sigma)))
        )
        return n_in, n_out
