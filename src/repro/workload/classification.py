"""Request classification into the 9 SS...LL buckets (paper Table IV).

Requests are bucketed by input and output token counts into Short /
Medium / Long on each axis, producing nine request types: SS, SM, SL,
MS, MM, ML, LS, LM, LL.  The thresholds follow Table IV (33rd / 66th /
100th percentile of the Conversation trace): Short < 256 input or < 100
output tokens, Medium < 1024 input or < 350 output tokens, Long up to
8192 input or >= 350 output tokens.

The number of buckets is itself a design parameter DynamoLLM studies
(Figure 13), so the module also supports coarser and finer schemes via
:class:`ClassificationScheme`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.workload.request import Request


class LengthClass(str, Enum):
    """One axis of the classification (input or output length)."""

    SHORT = "S"
    MEDIUM = "M"
    LONG = "L"


# Default thresholds from Table IV.  A length ``x`` belongs to the first
# bucket whose upper bound is strictly greater than ``x``.
DEFAULT_INPUT_THRESHOLDS: Tuple[int, ...] = (256, 1024, 8192)
DEFAULT_OUTPUT_THRESHOLDS: Tuple[int, ...] = (100, 350, 100_000)


@dataclass(frozen=True)
class RequestType:
    """A (input class, output class) bucket such as ``MM`` or ``SL``."""

    input_class: LengthClass
    output_class: LengthClass

    @property
    def name(self) -> str:
        # Request classification sits on the per-token simulation hot
        # path; the f-string (and the enum ``.value`` descriptor walks it
        # implies) shows up in profiles, so canonical pairs resolve
        # through a precomputed table instead.
        cached = _NAME_TABLE.get((self.input_class, self.output_class))
        if cached is not None:
            return cached
        return f"{self.input_class.value}{self.output_class.value}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @classmethod
    def from_name(cls, name: str) -> "RequestType":
        if len(name) != 2:
            raise ValueError(f"request type name must have two letters, got {name!r}")
        return cls(LengthClass(name[0]), LengthClass(name[1]))

    @property
    def size_rank(self) -> int:
        """Ordering used for 'spill to the next larger pool' decisions.

        Larger rank means the bucket holds larger (more demanding)
        requests.  The output length dominates (decode work dominates
        energy; see Figure 6), input length breaks ties.
        """
        order = {LengthClass.SHORT: 0, LengthClass.MEDIUM: 1, LengthClass.LONG: 2}
        return order[self.output_class] * 3 + order[self.input_class]


_CLASS_ORDER = (LengthClass.SHORT, LengthClass.MEDIUM, LengthClass.LONG)

#: The canonical nine request types in row-major (input, output) order.
REQUEST_TYPES: Tuple[RequestType, ...] = tuple(
    RequestType(i, o) for i in _CLASS_ORDER for o in _CLASS_ORDER
)

#: Precomputed names for the canonical class pairs (hot-path lookup).
_NAME_TABLE: Dict[Tuple[LengthClass, LengthClass], str] = {
    (i, o): f"{i.value}{o.value}" for i in _CLASS_ORDER for o in _CLASS_ORDER
}

REQUEST_TYPE_NAMES: Tuple[str, ...] = tuple(t.name for t in REQUEST_TYPES)

#: Canonical RequestType instances indexed by (input bucket, output
#: bucket) position — classification on the default thresholds returns
#: these shared objects instead of constructing a fresh dataclass per
#: request per step.
_CANONICAL_TYPES: Tuple[Tuple[RequestType, ...], ...] = tuple(
    tuple(RequestType(i, o) for o in _CLASS_ORDER) for i in _CLASS_ORDER
)


def _bucket(length: int, thresholds: Sequence[int]) -> LengthClass:
    """Map a token count onto Short / Medium / Long using thresholds."""
    if length < thresholds[0]:
        return LengthClass.SHORT
    if length < thresholds[1]:
        return LengthClass.MEDIUM
    return LengthClass.LONG


def classify_length(
    input_tokens: int,
    output_tokens: int,
    input_thresholds: Sequence[int] = DEFAULT_INPUT_THRESHOLDS,
    output_thresholds: Sequence[int] = DEFAULT_OUTPUT_THRESHOLDS,
) -> RequestType:
    """Classify raw token counts into one of the nine request types."""
    if (
        input_thresholds is DEFAULT_INPUT_THRESHOLDS
        and output_thresholds is DEFAULT_OUTPUT_THRESHOLDS
    ):
        in_lo, in_mid, _ = DEFAULT_INPUT_THRESHOLDS
        out_lo, out_mid, _ = DEFAULT_OUTPUT_THRESHOLDS
        i = 0 if input_tokens < in_lo else (1 if input_tokens < in_mid else 2)
        o = 0 if output_tokens < out_lo else (1 if output_tokens < out_mid else 2)
        return _CANONICAL_TYPES[i][o]
    return RequestType(
        _bucket(input_tokens, input_thresholds),
        _bucket(output_tokens, output_thresholds),
    )


def classify_request(request: Request) -> RequestType:
    """Classify a request by its *true* lengths (oracle classification)."""
    return classify_length(request.input_tokens, request.output_tokens)


# Representative token counts used when a profile or an experiment needs a
# concrete workload for a bucket (e.g. the Table I characterisation).
REPRESENTATIVE_LENGTHS = {
    "SS": (128, 60),
    "SM": (128, 220),
    "SL": (128, 800),
    "MS": (600, 60),
    "MM": (600, 220),
    "ML": (600, 800),
    "LS": (3000, 60),
    "LM": (3000, 220),
    "LL": (3000, 800),
}


def representative_lengths(request_type: RequestType) -> Tuple[int, int]:
    """Typical (input, output) token counts for a bucket."""
    return REPRESENTATIVE_LENGTHS[request_type.name]


#: Near-worst-case prompt length per input class (roughly the P99 inside the
#: bucket).  Used to check TTFT feasibility conservatively: the SLO must hold
#: for the heavy tail of a bucket, not just for its typical request.
WORST_CASE_INPUT_TOKENS = {
    LengthClass.SHORT: 255,
    LengthClass.MEDIUM: 1023,
    LengthClass.LONG: 6000,
}


def worst_case_input_tokens(request_type: RequestType) -> int:
    """Near-worst-case prompt length for a bucket."""
    return WORST_CASE_INPUT_TOKENS[request_type.input_class]


def ttft_safety_factor(request_type: RequestType) -> float:
    """How much tighter the TTFT SLO must be checked for this bucket.

    Prefill latency is proportional to the prompt length, so requiring
    the *representative* request to finish within ``SLO / factor`` is
    equivalent to requiring the near-worst-case request to finish within
    the SLO itself.
    """
    representative_input, _ = REPRESENTATIVE_LENGTHS[request_type.name]
    return worst_case_input_tokens(request_type) / representative_input


@lru_cache(maxsize=None)
def type_intensity(type_name: str) -> float:
    """Total tokens processed per prompt token for a bucket.

    Short-input long-output buckets have a much higher intensity than
    long-input short-output ones: each of their prompt tokens drags far
    more decode work behind it.  The intensity is used to convert loads
    between buckets so that pools serving mixed traffic are sized
    correctly.
    """
    n_in, n_out = REPRESENTATIVE_LENGTHS[type_name]
    return (n_in + n_out) / n_in


@lru_cache(maxsize=1 << 16)
def equivalent_prompt_tokens(
    input_tokens: int, actual_type: str, governing_type: str
) -> float:
    """Convert a request's prompt tokens into a pool's load units.

    A pool's profile and capacity are expressed in prompt tokens of its
    *governing* bucket; requests of other buckets served by the pool
    (spill-over, merged pools) are converted so that one unit of load
    always represents the same amount of work.
    """
    if actual_type == governing_type:
        return float(input_tokens)
    return input_tokens * type_intensity(actual_type) / type_intensity(governing_type)


@dataclass(frozen=True)
class ClassificationScheme:
    """A pooling scheme mapping the nine base buckets onto N pools.

    DynamoLLM's default uses all nine buckets as separate pools; the
    pool-count sensitivity study (Figure 13) merges or splits them.  A
    scheme is described by groups of base bucket names; every base
    bucket must appear in exactly one group.
    """

    name: str
    groups: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        seen: List[str] = []
        for group in self.groups:
            if not group:
                raise ValueError("classification groups must be non-empty")
            seen.extend(group)
        if sorted(seen) != sorted(REQUEST_TYPE_NAMES):
            raise ValueError(
                f"scheme {self.name!r} must cover each of the 9 base buckets exactly "
                f"once; got {sorted(seen)}"
            )

    @property
    def num_pools(self) -> int:
        return len(self.groups)

    def pool_name(self, group: Tuple[str, ...]) -> str:
        return "+".join(group)

    def pool_names(self) -> List[str]:
        return [self.pool_name(group) for group in self.groups]

    def pool_of(self, request_type: RequestType) -> str:
        """Name of the pool that serves the given base bucket."""
        return _pool_of(self, request_type.name)

    def members(self, pool_name: str) -> Tuple[str, ...]:
        for group in self.groups:
            if self.pool_name(group) == pool_name:
                return group
        raise KeyError(f"unknown pool {pool_name!r} in scheme {self.name}")

    def heaviest_member(self, pool_name: str) -> RequestType:
        """The largest base bucket in the pool (sets the pool's SLO needs)."""
        members = [RequestType.from_name(name) for name in self.members(pool_name)]
        return max(members, key=lambda t: t.size_rank)

    def pools_by_size(self) -> List[str]:
        """Pool names ordered from smallest to largest request sizes."""
        return sorted(
            self.pool_names(), key=lambda p: self.heaviest_member(p).size_rank
        )

    def next_larger_pool(self, pool_name: str) -> str:
        """The pool serving the next *dominating* request type (spill target).

        Spilled requests must land in a pool whose governing bucket is at
        least as large in **both** dimensions, so that the receiving
        pool's profile never underestimates them: the input class is
        grown first, then the output class.  The largest pool (LL) spills
        onto itself — it is the only pool allowed to be over-provisioned
        (Section IV-B).
        """
        return _next_larger_pool(self, pool_name)

    def _next_larger_pool_uncached(self, pool_name: str) -> str:
        governing = self.heaviest_member(pool_name)
        order = list(_CLASS_ORDER)
        input_index = order.index(governing.input_class)
        output_index = order.index(governing.output_class)
        candidates = []
        if input_index + 1 < len(order):
            candidates.append(RequestType(order[input_index + 1], governing.output_class))
        if output_index + 1 < len(order):
            candidates.append(RequestType(governing.input_class, order[output_index + 1]))
        candidates.append(RequestType(LengthClass.LONG, LengthClass.LONG))
        for candidate in candidates:
            target = self.pool_of(candidate)
            if target != pool_name:
                return target
        return pool_name


@lru_cache(maxsize=None)
def _pool_of(scheme: ClassificationScheme, type_name: str) -> str:
    """Cached pool lookup — schemes are frozen, so the mapping is stable."""
    for group in scheme.groups:
        if type_name in group:
            return scheme.pool_name(group)
    raise KeyError(f"request type {type_name} not covered by scheme {scheme.name}")


@lru_cache(maxsize=None)
def _next_larger_pool(scheme: ClassificationScheme, pool_name: str) -> str:
    """Cached spill-target lookup (pure function of the frozen scheme)."""
    return scheme._next_larger_pool_uncached(pool_name)


def _scheme_from_groups(name: str, groups: Sequence[Sequence[str]]) -> ClassificationScheme:
    return ClassificationScheme(name=name, groups=tuple(tuple(g) for g in groups))


#: The paper's default: one pool per base bucket (9 pools).
DEFAULT_SCHEME = _scheme_from_groups("9pool", [[n] for n in REQUEST_TYPE_NAMES])

#: Coarser / finer schemes used by the Figure 13 sensitivity study.  A
#: "16 pool" scheme cannot create more than 9 distinct behaviours with 9
#: base buckets, so it is approximated by splitting the largest buckets
#: into artificial sub-pools (which is exactly the fragmentation the
#: paper observes: more pools than distinct behaviours wastes energy).
POOL_SCHEMES = {
    2: _scheme_from_groups(
        "2pool",
        [["SS", "SM", "MS", "MM", "LS"], ["SL", "ML", "LM", "LL"]],
    ),
    4: _scheme_from_groups(
        "4pool",
        [["SS", "MS", "LS"], ["SM", "MM"], ["SL", "ML"], ["LM", "LL"]],
    ),
    6: _scheme_from_groups(
        "6pool",
        [["SS"], ["MS", "LS"], ["SM", "MM"], ["LM"], ["SL", "ML"], ["LL"]],
    ),
    9: DEFAULT_SCHEME,
}


def scheme_for_pool_count(num_pools: int) -> ClassificationScheme:
    """Return the pooling scheme used for the Figure 13 sweep."""
    if num_pools in POOL_SCHEMES:
        return POOL_SCHEMES[num_pools]
    if num_pools > 9:
        # More pools than base buckets: keep the 9-bucket scheme; the
        # extra pools exist but never receive load (pure fragmentation),
        # which the experiment driver models as extra idle instances.
        return DEFAULT_SCHEME
    raise ValueError(f"no pooling scheme defined for {num_pools} pools")
