"""Workload modelling: requests, classification, traces and predictors.

This package covers everything the controllers know about the incoming
work: the request abstraction, the 9-bucket length classification and
per-bucket SLOs (paper Table IV), synthetic production-like traces for
the Coding and Conversation services (paper Figures 1 and 2), Poisson
open-loop arrival generation (Figure 12), the output-length predictor
(Section IV-D, Figure 11) and the template-based load predictor.
"""

from repro.workload.request import Request, RequestOutcome
from repro.workload.classification import (
    LengthClass,
    RequestType,
    REQUEST_TYPES,
    ClassificationScheme,
    DEFAULT_SCHEME,
    classify_length,
    classify_request,
)
from repro.workload.slo import SLO, SLOPolicy, DEFAULT_SLO_POLICY, SLO_SCALE_STRICT
from repro.workload.traces import Trace, TraceBin, bin_trace, load_trace_csv, save_trace_csv
from repro.workload.synthetic import (
    ServiceProfile,
    CODING_PROFILE,
    CONVERSATION_PROFILE,
    SyntheticTraceGenerator,
    make_week_trace,
    make_day_trace,
    make_one_hour_trace,
)
from repro.workload.arrival import PoissonArrivalGenerator, LoadLevel, LOAD_LEVELS
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.load_predictor import TemplateLoadPredictor
from repro.workload.loaders import (
    load_azure_trace,
    load_request_csv,
    resample_trace,
    sample_trace_path,
)

__all__ = [
    "Request",
    "RequestOutcome",
    "LengthClass",
    "RequestType",
    "REQUEST_TYPES",
    "ClassificationScheme",
    "DEFAULT_SCHEME",
    "classify_length",
    "classify_request",
    "SLO",
    "SLOPolicy",
    "DEFAULT_SLO_POLICY",
    "SLO_SCALE_STRICT",
    "Trace",
    "TraceBin",
    "bin_trace",
    "load_trace_csv",
    "save_trace_csv",
    "ServiceProfile",
    "CODING_PROFILE",
    "CONVERSATION_PROFILE",
    "SyntheticTraceGenerator",
    "make_week_trace",
    "make_day_trace",
    "make_one_hour_trace",
    "PoissonArrivalGenerator",
    "LoadLevel",
    "LOAD_LEVELS",
    "OutputLengthPredictor",
    "TemplateLoadPredictor",
    "load_azure_trace",
    "load_request_csv",
    "resample_trace",
    "sample_trace_path",
]
