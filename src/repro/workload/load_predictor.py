"""Template-based load prediction.

DynamoLLM's cluster manager forecasts the per-request-type load for the
next scheduling epoch using lightweight load templates built from
historical data (Section IV-B, following SmartOClock).  The template
stores, for each (weekday-hour or weekend-hour, request type) slot, the
typical load observed in previous weeks; the forecast for the next epoch
is the template value for the corresponding slot, blended with the most
recent observation to track drift.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


@dataclass
class TemplateLoadPredictor:
    """Per-request-type load forecaster.

    Parameters
    ----------
    blend:
        Weight of the historical template vs. the latest observation.
        1.0 means pure template, 0.0 means last-value prediction.
    headroom:
        Multiplicative safety margin applied to forecasts so that the
        cluster manager provisions for the predicted *peak* rather than
        the mean (the paper provisions per-epoch peak load).
    """

    blend: float = 0.5
    headroom: float = 1.15
    _template: Dict[Tuple[int, str], float] = field(default_factory=dict, init=False)
    _counts: Dict[Tuple[int, str], int] = field(default_factory=lambda: defaultdict(int), init=False)
    _last_observation: Dict[str, float] = field(default_factory=dict, init=False)

    @staticmethod
    def _slot(time_s: float) -> int:
        """Template slot: hour-of-week folded into weekday/weekend hours."""
        day = int(time_s // SECONDS_PER_DAY) % 7
        hour = int((time_s % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        is_weekend = 1 if day >= 5 else 0
        return is_weekend * 24 + hour

    def observe(self, time_s: float, request_type: str, load: float) -> None:
        """Record the observed load (tokens/s) of a request type.

        Non-finite or negative samples (degenerate replay bins) are
        dropped entirely, and a zero-load sample never *seeds* a slot:
        replayed traces with empty bins would otherwise anchor first-week
        templates at 0.0 and drag the running mean down for the rest of
        the run.  Zero loads still update the last observation, and are
        averaged into slots that already have real history.
        """
        if not math.isfinite(load) or load < 0.0:
            return
        self._last_observation[request_type] = load
        slot = self._slot(time_s)
        key = (slot, request_type)
        count = self._counts[key]
        if load == 0.0 and count == 0:
            return
        previous = self._template.get(key, load)
        # Running mean per slot.
        self._template[key] = (previous * count + load) / (count + 1)
        self._counts[key] = count + 1

    def predict(self, time_s: float, request_type: str) -> float:
        """Forecast the load (tokens/s) for the epoch starting at ``time_s``.

        Slots without history (the whole first week of a cold start)
        fall back to the latest observation of the request type rather
        than forecasting 0.0, which would de-provision a pool that is
        actively serving load.
        """
        slot = self._slot(time_s)
        template_value: Optional[float] = self._template.get((slot, request_type))
        last_value = self._last_observation.get(request_type)
        if template_value is None and last_value is None:
            return 0.0
        if template_value is None:
            forecast = last_value
        elif last_value is None:
            forecast = template_value
        else:
            forecast = self.blend * template_value + (1.0 - self.blend) * last_value
        return float(forecast) * self.headroom

    def predict_all(self, time_s: float, request_types) -> Dict[str, float]:
        """Forecasts for every request type in ``request_types``."""
        return {name: self.predict(time_s, name) for name in request_types}
