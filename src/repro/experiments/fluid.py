"""Fluid (binned) simulator for day- and week-long traces.

The paper's large-scale results (Figures 14-16, the cost analysis) come
from a discrete-time simulator driven by production traces rather than
from the live cluster.  The fluid runner plays that role here: it walks
a binned trace (e.g. 5-minute bins over a week), applies each policy's
decision rules per bin using the energy-performance profile, and
integrates power into energy, GPU-hours and carbon — without tracking
individual requests.

The per-bin loop lives in :meth:`FluidRunner.steps`, which yields one
:class:`FluidStepStats` per bin; :meth:`FluidRunner.run` integrates it
into a :class:`FluidResult`, and the
:class:`~repro.api.fluid_engine.FluidEngine` adapter replays the same
generator behind the Scenario API's stepped/observed interface
(``Scenario(backend="fluid")``) with byte-identical accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.optimizer import plan_sharding
from repro.llm.catalog import ModelSpec, LLAMA2_70B
from repro.llm.gpu import ServerSpec, DGX_H100
from repro.metrics.carbon import CarbonIntensityTrace, carbon_emissions_kg
from repro.perf.profile import EnergyPerformanceProfile
from repro.perf.profiler import get_default_profile
from repro.perf.power_model import PowerModel
from repro.policies.base import PolicySpec
from repro.workload.classification import ClassificationScheme, DEFAULT_SCHEME, RequestType
from repro.workload.traces import TraceBin


@dataclass(frozen=True)
class FluidStepStats:
    """One bin's outcome, shaped like the cluster's per-step ``StepStats``.

    The fields observers consume (``energy_wh``, ``power_watts``,
    ``online_gpus``, ``online_servers``, ``outcomes``, ...) carry the
    same meaning as on :class:`repro.cluster.cluster.StepStats`, so the
    streaming observers work identically against both simulators.  The
    fluid simulator tracks no individual requests, hence ``outcomes`` is
    always empty, and it reports no frequency/TP telemetry.
    """

    time: float  # bin start
    dt: float  # bin duration
    power_watts: float
    energy_wh: float
    online_gpus: int
    online_servers: float
    pool_gpus: Dict[str, int] = field(default_factory=dict)
    #: Pools whose GPU allocation changed versus the previous bin.
    reconfigured_pools: Tuple[str, ...] = ()
    # Observer-compatibility fields (empty for the fluid simulator).
    energy_by_type_wh: Dict[str, float] = field(default_factory=dict)
    outcomes: Tuple = ()
    average_frequency_mhz: float = 0.0
    gpus_by_tp: Dict[int, int] = field(default_factory=dict)
    pool_frequency_mhz: Dict[str, float] = field(default_factory=dict)
    pool_gpus_by_tp: Dict[str, Dict[int, int]] = field(default_factory=dict)


@dataclass
class FluidResult:
    """Aggregate outcome of a fluid run of one policy over a binned trace."""

    policy: str
    duration_s: float
    energy_wh: float
    gpu_hours: float
    energy_timeline_wh: List[Tuple[float, float]] = field(default_factory=list)
    servers_timeline: List[Tuple[float, float]] = field(default_factory=list)
    reconfigurations: int = 0

    @property
    def energy_kwh(self) -> float:
        return self.energy_wh / 1000.0

    @property
    def average_servers(self) -> float:
        """Time-weighted mean server count over the run.

        Each timeline sample holds until the next sample's start time
        (the last one until ``duration_s``), so bins of unequal length —
        clipped trace tails, variable-rate bins — are weighted by how
        long they actually lasted rather than counted once each.
        """
        timeline = self.servers_timeline
        if not timeline:
            return 0.0
        weighted = 0.0
        total = 0.0
        for index, (start, value) in enumerate(timeline):
            if index + 1 < len(timeline):
                end = timeline[index + 1][0]
            else:
                end = max(self.duration_s, start)
            span = max(0.0, end - start)
            weighted += value * span
            total += span
        if total <= 0.0:
            # Degenerate timelines (all zero-length bins): plain mean.
            return sum(value for _, value in timeline) / len(timeline)
        return weighted / total

    def carbon_kg(self, intensity: Optional[CarbonIntensityTrace] = None) -> float:
        intensity = intensity or CarbonIntensityTrace()
        return carbon_emissions_kg(self.energy_timeline_wh, intensity)


class FluidRunner:
    """Applies a policy's decision rules to a binned trace."""

    def __init__(
        self,
        model: ModelSpec = LLAMA2_70B,
        scheme: ClassificationScheme = DEFAULT_SCHEME,
        profile: Optional[EnergyPerformanceProfile] = None,
        server: ServerSpec = DGX_H100,
    ) -> None:
        self.model = model
        self.scheme = scheme
        self.profile = profile or get_default_profile(model)
        self.server = server
        self.power_model = PowerModel(server)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _pool_loads(self, trace_bin: TraceBin) -> Dict[str, float]:
        """Per-pool prompt-token load of one bin."""
        loads: Dict[str, float] = {}
        if trace_bin.duration <= 0:
            # Degenerate bins (clipped trace tails) carry no sustained load.
            return loads
        prompt_share = (
            trace_bin.input_tokens / trace_bin.total_tokens
            if trace_bin.total_tokens > 0
            else 0.0
        )
        for type_name, tokens in trace_bin.tokens_by_type.items():
            pool = self.scheme.pool_of(RequestType.from_name(type_name))
            loads[pool] = loads.get(pool, 0.0) + tokens * prompt_share / trace_bin.duration
        return loads

    def _governing(self, pool: str) -> str:
        return self.scheme.heaviest_member(pool).name

    def _node_capacity(self, pool: str) -> float:
        governing = self._governing(pool)
        frequencies = self.profile.frequencies(governing, 8)
        if not frequencies:
            return 1.0
        return max(1.0, self.profile.max_load(governing, 8, max(frequencies)))

    def static_budgets(self, bins: Sequence[TraceBin]) -> Dict[str, int]:
        """Per-pool peak-sized server budgets (the static baselines)."""
        peaks: Dict[str, float] = {}
        for trace_bin in bins:
            for pool, load in self._pool_loads(trace_bin).items():
                peaks[pool] = max(peaks.get(pool, 0.0), load)
        budgets: Dict[str, int] = {}
        for pool, peak in peaks.items():
            budgets[pool] = max(1, math.ceil(peak / self._node_capacity(pool)))
        return budgets

    # ------------------------------------------------------------------
    # Per-bin power of one pool under one policy
    # ------------------------------------------------------------------
    def _pool_power(
        self,
        spec: PolicySpec,
        pool: str,
        load_tps: float,
        static_servers: int,
    ) -> Tuple[float, int]:
        """Returns (power_watts, gpus_used) for one pool in one bin."""
        governing = self._governing(pool)
        gpus_per_server = self.server.gpus_per_server
        max_frequency = max(self.profile.frequencies(governing, 8))

        if spec.scale_instances:
            servers = max(0, math.ceil(load_tps / self._node_capacity(pool)))
            if load_tps > 0:
                servers = max(1, servers)
        else:
            servers = static_servers
        gpu_budget = servers * gpus_per_server
        if gpu_budget == 0:
            return 0.0, 0

        if spec.scale_sharding:
            plan = plan_sharding(self.profile, governing, gpu_budget, load_tps)
            if plan.feasible:
                power = 0.0
                for allocation in plan.allocations:
                    frequency = allocation.frequency_mhz
                    if spec.scale_frequency:
                        best = self.profile.best_frequency(
                            governing,
                            allocation.tensor_parallelism,
                            allocation.per_instance_load,
                        )
                        frequency = best if best is not None else frequency
                    power += allocation.count * self.profile.power(
                        governing,
                        allocation.tensor_parallelism,
                        frequency,
                        allocation.per_instance_load,
                    )
                # Unused GPUs in the budget stay idle only for static policies;
                # scaling policies release them.
                idle_gpus = gpu_budget - plan.total_gpus
                if not spec.scale_instances and idle_gpus > 0:
                    power += idle_gpus * self.power_model.idle_gpu_slot_power()
                    used_gpus = gpu_budget
                else:
                    used_gpus = plan.total_gpus if spec.scale_instances else gpu_budget
                return power, used_gpus

        # Fixed TP8 sharding filling the budget.
        instances = gpu_budget // 8
        if instances == 0:
            return 0.0, 0
        per_instance_load = load_tps / instances
        frequency = max_frequency
        if spec.scale_frequency:
            best = self.profile.best_frequency(governing, 8, per_instance_load)
            frequency = best if best is not None else max_frequency
        power = instances * self.profile.power(governing, 8, frequency, per_instance_load)
        return power, gpu_budget

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------
    def _resolve(
        self,
        spec: PolicySpec,
        bins: Sequence[TraceBin],
        static_budgets: Optional[Dict[str, int]] = None,
        fine_budgets: Optional[Dict[str, int]] = None,
    ) -> Tuple["FluidRunner", Dict[str, int]]:
        """The (scheme-matched runner, per-pool static budgets) of one run."""
        scheme = spec.scheme(self.scheme)
        # The runner's scheme must match the spec (SinglePool collapses pools).
        runner = self if scheme is self.scheme else FluidRunner(
            model=self.model, scheme=scheme, profile=self.profile, server=self.server
        )
        if static_budgets is None:
            # Static baselines are provisioned from per-bucket peaks (the
            # 9-pool accounting), exactly like the paper gives every baseline
            # the same peak-capable cluster; coarser schemes aggregate the
            # budgets of their member buckets.  ``fine_budgets`` lets sweep
            # executors precompute the per-bucket peaks once per trace.
            if fine_budgets is None:
                fine_budgets = self.static_budgets(bins)
            static_budgets = {}
            for fine_pool, budget in fine_budgets.items():
                bucket = self.scheme.heaviest_member(fine_pool)
                coarse_pool = scheme.pool_of(bucket)
                static_budgets[coarse_pool] = static_budgets.get(coarse_pool, 0) + budget
        return runner, static_budgets

    def steps(
        self,
        spec: PolicySpec,
        bins: Sequence[TraceBin],
        static_budgets: Optional[Dict[str, int]] = None,
        fine_budgets: Optional[Dict[str, int]] = None,
    ) -> Iterator[FluidStepStats]:
        """Yield one :class:`FluidStepStats` per trace bin.

        This is the single per-bin decision/integration loop: both
        :meth:`run` and the stepped
        :class:`~repro.api.fluid_engine.FluidEngine` adapter consume it,
        so their energy / GPU-hour / reconfiguration accounting is
        byte-for-byte identical (same arithmetic, same order).
        """
        runner, static_budgets = self._resolve(spec, bins, static_budgets, fine_budgets)
        previous_gpus: Dict[str, int] = {}
        for trace_bin in bins:
            loads = runner._pool_loads(trace_bin)
            pools = set(loads) | set(static_budgets)
            bin_power = 0.0
            bin_gpus = 0
            pool_gpus: Dict[str, int] = {}
            reconfigured: List[str] = []
            for pool in pools:
                load = loads.get(pool, 0.0)
                static = static_budgets.get(pool, 0)
                power, gpus = runner._pool_power(spec, pool, load, static)
                bin_power += power
                bin_gpus += gpus
                pool_gpus[pool] = gpus
                if previous_gpus.get(pool) is not None and previous_gpus[pool] != gpus:
                    reconfigured.append(pool)
                previous_gpus[pool] = gpus
            bin_energy_wh = bin_power * trace_bin.duration / 3600.0
            yield FluidStepStats(
                time=trace_bin.start_time,
                dt=trace_bin.duration,
                power_watts=bin_power,
                energy_wh=bin_energy_wh,
                online_gpus=bin_gpus,
                online_servers=bin_gpus / self.server.gpus_per_server,
                pool_gpus=pool_gpus,
                reconfigured_pools=tuple(reconfigured),
            )

    def run(
        self,
        spec: PolicySpec,
        bins: Sequence[TraceBin],
        static_budgets: Optional[Dict[str, int]] = None,
        fine_budgets: Optional[Dict[str, int]] = None,
    ) -> FluidResult:
        """Run one policy over the binned trace."""
        energy_wh = 0.0
        gpu_seconds = 0.0
        energy_timeline: List[Tuple[float, float]] = []
        servers_timeline: List[Tuple[float, float]] = []
        reconfigurations = 0

        for stats in self.steps(spec, bins, static_budgets, fine_budgets):
            energy_wh += stats.energy_wh
            gpu_seconds += stats.online_gpus * stats.dt
            energy_timeline.append((stats.time, stats.energy_wh))
            servers_timeline.append((stats.time, stats.online_servers))
            reconfigurations += len(stats.reconfigured_pools)

        duration = bins[-1].start_time + bins[-1].duration if bins else 0.0
        return FluidResult(
            policy=spec.name,
            duration_s=duration,
            energy_wh=energy_wh,
            gpu_hours=gpu_seconds / 3600.0,
            energy_timeline_wh=energy_timeline,
            servers_timeline=servers_timeline,
            reconfigurations=reconfigurations,
        )

    def run_all(
        self, specs: Sequence[PolicySpec], bins: Sequence[TraceBin]
    ) -> Dict[str, FluidResult]:
        """Run several policies over the same binned trace."""
        results: Dict[str, FluidResult] = {}
        for spec in specs:
            results[spec.name] = self.run(spec, bins)
        return results
