"""Trace-characterisation experiments: Figures 1 and 2 (Section III-B)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workload.classification import REQUEST_TYPE_NAMES
from repro.workload.synthetic import make_week_trace
from repro.workload.traces import TraceBin

SECONDS_PER_DAY = 86400.0
DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def figure1_request_mix(
    services: Tuple[str, ...] = ("coding", "conversation"),
    seed: int = 7,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 1: daily request-type distribution per service over a week.

    Returns ``{service: {day: {request_type: fraction}}}``.
    """
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for service in services:
        bins = make_week_trace(service, seed=seed, bin_seconds=3600.0)
        per_day: Dict[str, Dict[str, float]] = {}
        for day_index, day_name in enumerate(DAY_NAMES):
            day_bins = [
                b
                for b in bins
                if day_index * SECONDS_PER_DAY <= b.start_time < (day_index + 1) * SECONDS_PER_DAY
            ]
            counts = {name: 0.0 for name in REQUEST_TYPE_NAMES}
            total = 0.0
            for trace_bin in day_bins:
                for name, count in trace_bin.count_by_type.items():
                    counts[name] += count
                    total += count
            per_day[day_name] = {
                name: (counts[name] / total if total > 0 else 0.0)
                for name in REQUEST_TYPE_NAMES
            }
        result[service] = per_day
    return result


def figure2_weekly_load(
    services: Tuple[str, ...] = ("coding", "conversation"),
    seed: int = 7,
    bin_seconds: float = 3600.0,
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 2: normalised load (tokens/s) over a week per service."""
    result: Dict[str, List[Tuple[float, float]]] = {}
    for service in services:
        bins: List[TraceBin] = make_week_trace(service, seed=seed, bin_seconds=bin_seconds)
        loads = [(b.start_time, b.tokens_per_second) for b in bins]
        peak = max((value for _, value in loads), default=1.0) or 1.0
        result[service] = [(time, value / peak) for time, value in loads]
    return result


def weekly_load_statistics(
    services: Tuple[str, ...] = ("coding", "conversation"), seed: int = 7
) -> Dict[str, Dict[str, float]]:
    """Peak/average and peak/valley ratios quoted in Section III-B."""
    stats: Dict[str, Dict[str, float]] = {}
    for service, series in figure2_weekly_load(services, seed=seed).items():
        values = [value for _, value in series if value > 0]
        peak = max(values)
        average = sum(values) / len(values)
        valley = min(values)
        stats[service] = {
            "peak_over_average": peak / average if average > 0 else 0.0,
            "peak_over_valley": peak / valley if valley > 0 else float("inf"),
        }
    return stats


def sample_replay(kind: str = "csv", policy: str = "DynamoLLM") -> Dict[str, float]:
    """Replay the bundled sample trace end-to-end on the engine.

    The request-level counterpart of Figures 1-2's characterisation:
    loads the committed sample through the CSV (or Azure) replay backend,
    serves it with ``policy`` and reports the streaming headline metrics.
    Everything is offline — the sample ships with the package.
    """
    from repro.api import Scenario, TraceSpec, run_scenario
    from repro.workload.loaders import sample_trace_path

    scenario = Scenario(
        policy=policy, trace=TraceSpec(kind=kind, path=sample_trace_path(kind))
    )
    summary = run_scenario(scenario, lean=True)
    return {
        "requests": float(summary.latency.count),
        "energy_kwh": summary.energy_kwh,
        "carbon_kg": summary.carbon.total_kg if summary.carbon else summary.carbon_kg(),
        "cost_usd": summary.cost.total_usd if summary.cost else summary.cost_usd(),
        "slo_attainment": summary.slo_attainment(),
    }
