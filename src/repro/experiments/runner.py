"""Detailed (request-level) experiment runner.

Runs one policy over one request-level trace on the discrete-time
cluster simulator and returns a :class:`~repro.metrics.summary.RunSummary`.
This is the engine behind the cluster-level evaluation (Figures 6-10)
and the sensitivity studies (Figures 11-13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cluster.cluster import GPUCluster
from repro.core.framework import ControllerEpochs
from repro.llm.catalog import ModelSpec, LLAMA2_70B
from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import LatencyStats
from repro.metrics.power import PowerTimeSeries
from repro.metrics.summary import RunSummary
from repro.perf.profile import EnergyPerformanceProfile
from repro.perf.profiler import get_default_profile
from repro.policies.base import PolicySpec, build_policy
from repro.workload.classification import (
    ClassificationScheme,
    RequestType,
    classify_request,
)
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY
from repro.workload.traces import Trace, bin_trace


@dataclass
class ExperimentConfig:
    """Configuration of a detailed simulation run."""

    model: ModelSpec = LLAMA2_70B
    time_step_s: float = 1.0
    static_servers: Optional[int] = None
    max_servers: int = 64
    predictor_accuracy: float = 1.0
    predictor_seed: int = 23
    slo_policy: SLOPolicy = field(default_factory=lambda: DEFAULT_SLO_POLICY)
    scheme: Optional[ClassificationScheme] = None
    epochs: ControllerEpochs = field(default_factory=ControllerEpochs)
    drain_timeout_s: float = 300.0
    profile: Optional[EnergyPerformanceProfile] = None

    def resolved_profile(self) -> EnergyPerformanceProfile:
        if self.profile is not None:
            return self.profile
        return get_default_profile(self.model)


# ----------------------------------------------------------------------
# Capacity planning helpers
# ----------------------------------------------------------------------
def pool_loads_from_trace(
    trace: Trace,
    scheme: ClassificationScheme,
    bin_seconds: float = 300.0,
) -> Dict[str, float]:
    """Per-pool peak prompt-token loads observed in the trace."""
    bins = bin_trace(trace, bin_seconds)
    peaks: Dict[str, float] = {}
    for trace_bin in bins:
        per_pool: Dict[str, float] = {}
        for type_name, count in trace_bin.count_by_type.items():
            pool = scheme.pool_of(RequestType.from_name(type_name))
            tokens = trace_bin.tokens_by_type.get(type_name, 0)
            # Approximate the prompt share of the bucket's tokens.
            prompt_share = trace_bin.input_tokens / max(1, trace_bin.total_tokens)
            per_pool[pool] = per_pool.get(pool, 0.0) + tokens * prompt_share / bin_seconds
        for pool, load in per_pool.items():
            peaks[pool] = max(peaks.get(pool, 0.0), load)
    return peaks


def load_fractions_from_trace(
    trace: Trace, scheme: ClassificationScheme
) -> Dict[str, float]:
    """Fraction of prompt tokens per pool over the whole trace."""
    totals: Dict[str, float] = {}
    for request in trace:
        pool = scheme.pool_of(classify_request(request))
        totals[pool] = totals.get(pool, 0.0) + request.input_tokens
    grand_total = sum(totals.values()) or 1.0
    return {pool: value / grand_total for pool, value in totals.items()}


def recommended_static_servers(
    trace: Trace,
    profile: EnergyPerformanceProfile,
    scheme: ClassificationScheme,
    gpus_per_server: int = 8,
) -> int:
    """Servers needed to carry the trace's peak at TP8 / max frequency.

    This mirrors how the paper provisions the static baselines (12
    servers for the 1-hour trace): each pool gets enough highest-
    performance nodes for its own peak.
    """
    peaks = pool_loads_from_trace(trace, scheme)
    total = 0
    for pool, peak in peaks.items():
        governing = scheme.heaviest_member(pool).name
        frequencies = profile.frequencies(governing, 8)
        capacity = profile.max_load(governing, 8, max(frequencies)) if frequencies else 0.0
        if capacity <= 0:
            continue
        total += max(1, math.ceil(peak / capacity))
    return max(1, total)


# ----------------------------------------------------------------------
# Main runner
# ----------------------------------------------------------------------
def run_policy_on_trace(
    spec: PolicySpec,
    trace: Trace,
    config: Optional[ExperimentConfig] = None,
) -> RunSummary:
    """Simulate ``spec`` serving ``trace`` and return the run summary."""
    config = config or ExperimentConfig()
    profile = config.resolved_profile()
    scheme = spec.scheme(config.scheme)

    static_servers = config.static_servers
    if static_servers is None:
        # Size the static budget from per-bucket peaks (9-pool accounting)
        # regardless of the policy's own pooling, exactly as the paper gives
        # every baseline the same peak-capable cluster.
        from repro.workload.classification import DEFAULT_SCHEME

        static_servers = recommended_static_servers(trace, profile, DEFAULT_SCHEME)
    max_servers = max(config.max_servers, static_servers)

    cluster = GPUCluster(
        model=config.model,
        initial_servers=0,
        max_servers=max_servers,
        proactive_provisioning=spec.proactive_provisioning,
        optimized_frequency_switching=spec.optimized_frequency_switching,
    )
    predictor = OutputLengthPredictor(
        accuracy=config.predictor_accuracy, seed=config.predictor_seed
    )
    fractions = load_fractions_from_trace(trace, scheme)
    policy = build_policy(
        spec,
        model=config.model,
        cluster=cluster,
        profile=profile,
        static_servers=static_servers,
        expected_load_fractions=fractions,
        slo_policy=config.slo_policy,
        predictor=predictor,
        scheme=config.scheme,
        epochs=config.epochs,
    )
    warm_loads = pool_loads_from_trace(trace, scheme)
    policy.setup(0.0, warm_loads=warm_loads)

    energy = EnergyAccount()
    latency = LatencyStats(slo_policy=config.slo_policy)
    power = PowerTimeSeries()
    frequency_timeline: List = []
    pool_frequency_timeline: Dict[str, List] = {}
    gpus_by_tp_timeline: List = []
    pool_gpus_by_tp_timeline: Dict[str, List] = {}
    pool_load_timeline: Dict[str, List] = {}
    server_samples: List[int] = []

    requests = list(trace.requests)
    request_index = 0
    dt = config.time_step_s
    horizon = trace.duration + dt
    now = 0.0
    drain_deadline = horizon + config.drain_timeout_s

    while now < drain_deadline:
        # Deliver arrivals for this step.
        while (
            request_index < len(requests)
            and requests[request_index].arrival_time < now + dt
        ):
            policy.route(requests[request_index], now)
            request_index += 1

        policy.on_step(now, dt)
        stats = cluster.step(now, dt)

        energy.add_step(now, stats.energy_wh, stats.energy_by_type_wh)
        power.add_step(now, stats.power_watts, stats.online_gpus)
        latency.extend(stats.outcomes)
        frequency_timeline.append((now, stats.average_frequency_mhz))
        gpus_by_tp_timeline.append((now, dict(stats.gpus_by_tp)))
        for pool, freq in stats.pool_frequency_mhz.items():
            pool_frequency_timeline.setdefault(pool, []).append((now, freq))
        for pool, tp_map in stats.pool_gpus_by_tp.items():
            pool_gpus_by_tp_timeline.setdefault(pool, []).append((now, dict(tp_map)))
        for pool, state in policy.cluster_manager.pools.items():
            pool_load_timeline.setdefault(pool, []).append((now, state.load_ema_tps))
        server_samples.append(stats.online_servers)

        now += dt
        if now >= horizon and request_index >= len(requests):
            in_flight = sum(i.active_requests for i in cluster.instances.values())
            if in_flight == 0:
                break

    average_servers = sum(server_samples) / len(server_samples) if server_samples else 0.0
    return RunSummary(
        policy=spec.name,
        trace=trace.name,
        duration_s=now,
        energy=energy,
        latency=latency,
        power=power,
        gpu_hours=cluster.gpu_hours,
        average_servers=average_servers,
        frequency_timeline=frequency_timeline,
        pool_frequency_timeline=pool_frequency_timeline,
        gpus_by_tp_timeline=gpus_by_tp_timeline,
        pool_gpus_by_tp_timeline=pool_gpus_by_tp_timeline,
        pool_load_timeline=pool_load_timeline,
        squashed_requests=policy.total_squashed(),
        routed_requests=policy.routed_requests,
    )


def run_all_policies(
    trace: Trace,
    specs: Iterable[PolicySpec],
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, RunSummary]:
    """Run several policies on the same trace with a shared configuration.

    The static server budget is computed once (from the MultiPool-style
    per-pool peaks) and reused for every policy, matching the paper's
    setup where all baselines get the same peak-sized cluster.
    """
    config = config or ExperimentConfig()
    if config.static_servers is None:
        profile = config.resolved_profile()
        from repro.workload.classification import DEFAULT_SCHEME

        config.static_servers = recommended_static_servers(
            trace, profile, config.scheme or DEFAULT_SCHEME
        )
    summaries: Dict[str, RunSummary] = {}
    for spec in specs:
        summaries[spec.name] = run_policy_on_trace(spec, trace, config)
    return summaries
