"""Experiment configuration, capacity planning and legacy runner shims.

The request-level simulation loop that used to live here is now the
:class:`repro.api.engine.SimulationEngine`; this module keeps

* :class:`ExperimentConfig` — the configuration of one detailed run,
* the capacity-planning helpers (static-budget sizing from a trace),
* thin deprecation shims (:func:`run_policy_on_trace`,
  :func:`run_all_policies`) that forward to the new engine so existing
  drivers keep working unchanged.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.core.framework import ControllerEpochs
from repro.llm.catalog import ModelSpec, LLAMA2_70B
from repro.metrics.summary import RunSummary
from repro.perf.profile import EnergyPerformanceProfile
from repro.perf.profiler import get_default_profile
from repro.policies.base import PolicySpec
from repro.workload.classification import (
    ClassificationScheme,
    RequestType,
    classify_request,
)
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY
from repro.workload.traces import Trace, bin_trace


@dataclass
class ExperimentConfig:
    """Configuration of a detailed simulation run."""

    model: ModelSpec = LLAMA2_70B
    time_step_s: float = 1.0
    static_servers: Optional[int] = None
    max_servers: int = 64
    predictor_accuracy: float = 1.0
    predictor_seed: int = 23
    slo_policy: SLOPolicy = field(default_factory=lambda: DEFAULT_SLO_POLICY)
    scheme: Optional[ClassificationScheme] = None
    epochs: ControllerEpochs = field(default_factory=ControllerEpochs)
    drain_timeout_s: float = 300.0
    profile: Optional[EnergyPerformanceProfile] = None
    #: Bin width used when the fluid backend must bin a request-level
    #: trace itself (pre-binned traces keep their own bin widths).
    fluid_bin_s: float = 300.0

    def resolved_profile(self) -> EnergyPerformanceProfile:
        if self.profile is not None:
            return self.profile
        return get_default_profile(self.model)


# ----------------------------------------------------------------------
# Capacity planning helpers
# ----------------------------------------------------------------------
def pool_loads_from_trace(
    trace: Trace,
    scheme: ClassificationScheme,
    bin_seconds: float = 300.0,
) -> Dict[str, float]:
    """Per-pool peak prompt-token loads observed in the trace."""
    bins = bin_trace(trace, bin_seconds)
    peaks: Dict[str, float] = {}
    for trace_bin in bins:
        per_pool: Dict[str, float] = {}
        for type_name, count in trace_bin.count_by_type.items():
            pool = scheme.pool_of(RequestType.from_name(type_name))
            tokens = trace_bin.tokens_by_type.get(type_name, 0)
            # Approximate the prompt share of the bucket's tokens.
            prompt_share = trace_bin.input_tokens / max(1, trace_bin.total_tokens)
            per_pool[pool] = per_pool.get(pool, 0.0) + tokens * prompt_share / bin_seconds
        for pool, load in per_pool.items():
            peaks[pool] = max(peaks.get(pool, 0.0), load)
    return peaks


def load_fractions_from_trace(
    trace: Trace, scheme: ClassificationScheme
) -> Dict[str, float]:
    """Fraction of prompt tokens per pool over the whole trace."""
    totals: Dict[str, float] = {}
    for request in trace:
        pool = scheme.pool_of(classify_request(request))
        totals[pool] = totals.get(pool, 0.0) + request.input_tokens
    grand_total = sum(totals.values()) or 1.0
    return {pool: value / grand_total for pool, value in totals.items()}


def recommended_static_servers(
    trace: Trace,
    profile: EnergyPerformanceProfile,
    scheme: ClassificationScheme,
    gpus_per_server: int = 8,
) -> int:
    """Servers needed to carry the trace's peak at TP8 / max frequency.

    This mirrors how the paper provisions the static baselines (12
    servers for the 1-hour trace): each pool gets enough highest-
    performance nodes for its own peak.
    """
    peaks = pool_loads_from_trace(trace, scheme)
    total = 0
    for pool, peak in peaks.items():
        governing = scheme.heaviest_member(pool).name
        frequencies = profile.frequencies(governing, 8)
        capacity = profile.max_load(governing, 8, max(frequencies)) if frequencies else 0.0
        if capacity <= 0:
            continue
        total += max(1, math.ceil(peak / capacity))
    return max(1, total)


def resolve_static_servers(
    config: ExperimentConfig, trace: Trace, profile: EnergyPerformanceProfile
) -> int:
    """The static server budget for one run, without mutating the config.

    When the config does not pin a budget, size it from per-bucket peaks
    (9-pool accounting) regardless of the policy's own pooling, exactly
    as the paper gives every baseline the same peak-capable cluster.
    """
    if config.static_servers is not None:
        return config.static_servers
    from repro.workload.classification import DEFAULT_SCHEME

    return recommended_static_servers(trace, profile, DEFAULT_SCHEME)


# ----------------------------------------------------------------------
# Legacy runner shims (deprecated: use repro.api instead)
# ----------------------------------------------------------------------
#: Shims that already warned this process (one DeprecationWarning each —
#: a driver looping over a 1000-scenario sweep should not emit 1000).
_DEPRECATIONS_WARNED: set = set()


def _warn_deprecated_once(key: str, message: str) -> None:
    if key in _DEPRECATIONS_WARNED:
        return
    _DEPRECATIONS_WARNED.add(key)
    # stacklevel 3: attribute the warning to the shim's caller.
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_deprecation_warnings() -> None:
    """Re-arm the once-per-process shim warnings (for tests)."""
    _DEPRECATIONS_WARNED.clear()


def run_policy_on_trace(
    spec: PolicySpec,
    trace: Trace,
    config: Optional[ExperimentConfig] = None,
) -> RunSummary:
    """Simulate ``spec`` serving ``trace`` and return the run summary.

    .. deprecated::
        Use :class:`repro.api.SimulationEngine` (or
        :func:`repro.api.run_scenario`) instead.  This shim constructs
        the engine with the default observer set, which reproduces the
        legacy monolithic loop field-for-field.
    """
    _warn_deprecated_once(
        "run_policy_on_trace",
        "run_policy_on_trace is deprecated; use repro.api.SimulationEngine "
        "or repro.api.run_scenario",
    )
    from repro.api.engine import SimulationEngine

    return SimulationEngine(spec, trace, config).run()


def run_all_policies(
    trace: Trace,
    specs: Iterable[PolicySpec],
    config: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
) -> Dict[str, RunSummary]:
    """Run several policies on the same trace with a shared configuration.

    .. deprecated::
        Use :func:`repro.api.run_policies` instead (same semantics plus
        parallel execution).  Unlike the original implementation, the
        shared static budget is resolved into a *copy* of the config —
        the caller's ``ExperimentConfig`` is no longer mutated.
    """
    _warn_deprecated_once(
        "run_all_policies",
        "run_all_policies is deprecated; use repro.api.run_policies",
    )
    from repro.api.executor import run_policies

    return run_policies(trace, specs, config, workers=workers)
