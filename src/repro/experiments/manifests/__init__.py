"""Bundled campaign manifests: the paper's grids as declarative data.

Every ``.json``/``.toml`` file in this package is a campaign manifest
:func:`repro.api.campaign.load_manifest` understands; the ``python -m
repro campaign`` subcommands accept the bare stem (``smoke``,
``fig11_accuracy``) anywhere a manifest path is expected.

Bundled campaigns:

* ``fig11_accuracy`` — Figure 11's predictor-accuracy sensitivity grid
  (SinglePool baseline + DynamoLLM across accuracies) on the event
  backend, scaled to a test-tractable trace; the report pivots energy
  savings per accuracy.
* ``fig15_daily`` — Figure 15's one-day SinglePool-vs-DynamoLLM energy
  comparison on the fluid backend.
* ``fig16_carbon`` — Figure 16's week-long carbon comparison (fluid
  backend; the report pivots ``carbon_kg`` savings).
* ``accuracy_slo_wide`` — a wider-than-paper accuracy x SLO-scale grid
  (11 accuracies x 6 SLO scales + baselines, event backend) for the
  sensitivity tables the paper only samples.
* ``sensitivity_grid`` — the 1008-scenario fluid sensitivity campaign
  (6 systems x 4 pool schemes x 3 load scales x 14 seeds), sharded
  4-ways by default; the scale-proof for manifest-driven grids.
* ``smoke`` — a 12-scenario fluid campaign that finishes in seconds;
  used by CI's kill-and-resume smoke leg and as a quick local demo.

Outputs are written relative to the *working* directory (this package
directory is read-only once installed); override with ``--out``.
"""

from __future__ import annotations

import os
from typing import List, Optional

MANIFEST_DIR = os.path.dirname(os.path.abspath(__file__))

_EXTENSIONS = (".json", ".toml")


def list_manifests() -> List[str]:
    """Stems of the bundled manifests, sorted."""
    return sorted(
        os.path.splitext(entry)[0]
        for entry in os.listdir(MANIFEST_DIR)
        if entry.endswith(_EXTENSIONS)
    )


def manifest_path(name: str) -> str:
    """Absolute path of a bundled manifest by stem or filename."""
    for candidate in (name,) + tuple(name + ext for ext in _EXTENSIONS):
        path = os.path.join(MANIFEST_DIR, candidate)
        if os.path.basename(candidate) == candidate and os.path.exists(path):
            return path
    known = ", ".join(list_manifests())
    raise KeyError(f"unknown bundled manifest {name!r}; bundled: {known}")


def resolve_manifest(spec: str) -> str:
    """A manifest path from a filesystem path or a bundled stem.

    Filesystem paths win (an existing local ``smoke.json`` beats the
    bundled ``smoke``); anything that is not an existing file is looked
    up as a bundled manifest name.
    """
    if os.path.exists(spec):
        return spec
    try:
        return manifest_path(spec)
    except KeyError:
        known = ", ".join(list_manifests())
        raise KeyError(
            f"manifest {spec!r} is neither an existing file nor a bundled "
            f"manifest name; bundled: {known}"
        ) from None


def run_bundled_campaign(
    name: str,
    out: Optional[str] = None,
    shard: Optional[tuple] = None,
    workers: Optional[int] = None,
    resume: bool = True,
):
    """Run a bundled campaign and return its report (or shard status).

    The registry-facing driver: with ``out=None`` the campaign streams
    into a temporary directory (the records only feed the returned
    :class:`~repro.api.campaign.ReportTable`, nothing is left in the
    working directory); pass ``out`` to keep resumable results files.
    With ``shard=(i, n)`` only that shard runs and the per-shard
    :class:`~repro.api.campaign.CampaignStatus` is returned instead —
    a report needs every shard's records, so ``shard`` requires ``out``
    (a temporary directory would discard the shard's work on return).
    """
    import tempfile

    from repro.api.campaign import CampaignRunner, load_manifest

    manifest = load_manifest(manifest_path(name))
    if shard is not None and out is None:
        # A lone shard's records are the whole point of running it; a
        # temporary directory would delete them on return and no series
        # of shard runs could ever complete the campaign.
        raise ValueError(
            "shard= requires out=: each shard streams into a results file "
            "derived from it, and the other shards (and status/report) "
            "need those files to survive this call"
        )
    if out is None:
        with tempfile.TemporaryDirectory() as scratch:
            runner = CampaignRunner(
                manifest, out=os.path.join(scratch, os.path.basename(manifest.output))
            )
            runner.run(workers=workers, resume=resume)
            return runner.report()
    runner = CampaignRunner(manifest, out=out)
    runner.run(shard=shard, workers=workers, resume=resume)
    return runner.status() if shard is not None else runner.report()
