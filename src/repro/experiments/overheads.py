"""Reconfiguration-overhead experiments: Table V, Table VI and Figure 3."""

from __future__ import annotations

from typing import Dict, List

from repro.core.hw import (
    COLD_BOOT_BREAKDOWN_S,
    DEFAULT_SWITCH_OVERHEAD_S,
    OPTIMIZED_SWITCH_OVERHEAD_S,
    WARM_BOOT_BREAKDOWN_S,
    cold_boot_time_s,
)
from repro.core.resharding import overhead_matrix, shard_transfer_unit_s
from repro.llm.catalog import ModelSpec, LLAMA2_70B
from repro.perf.config import InstanceConfig
from repro.perf.latency_model import LatencyModel
from repro.workload.classification import REQUEST_TYPE_NAMES, RequestType, representative_lengths


def table5_instance_creation() -> Dict[str, Dict[str, float]]:
    """Table V: overheads of creating a new 8xH100 inference server.

    Returns both the naive breakdown the paper measures and the
    optimised path DynamoLLM uses (cached weights + snapshot boot).
    """
    return {
        "cold_boot": {**COLD_BOOT_BREAKDOWN_S, "total": cold_boot_time_s()},
        "warm_boot": {
            **WARM_BOOT_BREAKDOWN_S,
            "total": sum(WARM_BOOT_BREAKDOWN_S.values()),
        },
    }


def table6_resharding_matrix(model: ModelSpec = LLAMA2_70B) -> Dict[str, Dict[str, float]]:
    """Table VI: re-sharding transfer time between server layouts.

    Returned in units of T and, for convenience, the concrete value of T
    for the given model is included under the ``"_unit_T_s"`` key.
    """
    matrix_units = overhead_matrix()
    result: Dict[str, Dict[str, float]] = {
        source: {destination: float(units) for destination, units in row.items()}
        for source, row in matrix_units.items()
    }
    result["_unit_T_s"] = {"T": shard_transfer_unit_s(model)}
    return result


def figure3_frequency_switch_throughput(
    model: ModelSpec = LLAMA2_70B,
    frequency_mhz: int = 1980,
) -> Dict[str, Dict[str, float]]:
    """Figure 3: request throughput with and without per-iteration re-setting.

    Re-setting the frequency on every decode iteration through the
    standard ``nvidia-smi`` path adds 50-80 ms to a 20-30 ms iteration,
    roughly halving the throughput; DynamoLLM's resident privileged path
    makes the overhead negligible.
    """
    latency = LatencyModel(model)
    config = InstanceConfig(8, frequency_mhz)
    results: Dict[str, Dict[str, float]] = {}
    for type_name in REQUEST_TYPE_NAMES:
        request_type = RequestType.from_name(type_name)
        n_in, n_out = representative_lengths(request_type)
        iteration = latency.iteration_time(config, batch_size=16.0, context=n_in + n_out / 2)
        prefill = latency.prefill_time(config, n_in)
        base_time = prefill + n_out * iteration
        switching_time = prefill + n_out * (iteration + DEFAULT_SWITCH_OVERHEAD_S)
        optimized_time = prefill + n_out * (iteration + OPTIMIZED_SWITCH_OVERHEAD_S)
        # Throughput of a batch of 16 concurrent requests, in requests/s.
        results[type_name] = {
            "const_freq_rps": 16.0 / base_time,
            "switch_freq_rps": 16.0 / switching_time,
            "optimized_switch_rps": 16.0 / optimized_time,
        }
    return results


def format_matrix(matrix: Dict[str, Dict[str, float]]) -> List[str]:
    """Render a square overhead matrix as text lines."""
    layouts = [name for name in matrix if not name.startswith("_")]
    header = f"{'src/dst':>10s}" + "".join(f"{name:>10s}" for name in layouts)
    lines = [header]
    for source in layouts:
        row = "".join(f"{matrix[source][destination]:>10.0f}" for destination in layouts)
        lines.append(f"{source:>10s}{row}")
    return lines
