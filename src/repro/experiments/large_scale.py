"""Large-scale experiments: Figures 14-16 and the cost analysis (Section V-D/E/F).

These use the fluid (binned) simulator — the reproduction's counterpart
of the paper's discrete-time simulator — over synthetic day- and
week-long traces for the Conversation and Coding services.  The classic
figure drivers call :class:`~repro.experiments.fluid.FluidRunner`
directly; :func:`weekly_policy_summaries` runs the same week through
the unified :mod:`repro.api` layer (``Scenario(backend="fluid")``),
which adds observer-based carbon/cost accounting, grid parallelism and
streamed :class:`~repro.api.sinks.ResultSink` output on top of the
byte-identical fluid accounting.  ``figure14_weekly_energy`` accepts
``workers`` to evaluate the services concurrently (one independent
runner per service, results identical to a serial run).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.experiments.fluid import FluidResult, FluidRunner
from repro.llm.catalog import ModelSpec, LLAMA2_70B
from repro.metrics.carbon import CarbonIntensityTrace, carbon_timeline_kg_per_h
from repro.metrics.cost import CostModel
from repro.policies import ALL_POLICIES, DYNAMO_LLM, SINGLE_POOL
from repro.workload.synthetic import SECONDS_PER_DAY, make_week_trace
from repro.workload.traces import BinnedTrace, TraceBin

#: Rate scale applied to the week traces so the cluster spans tens of servers.
DEFAULT_WEEK_RATE_SCALE = 40.0


def week_bins(
    service: str,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    bin_seconds: float = 300.0,
    seed: int = 7,
) -> List[TraceBin]:
    """A week-long binned trace for one service."""
    return make_week_trace(service, seed=seed, rate_scale=rate_scale, bin_seconds=bin_seconds)


def figure14_weekly_energy(
    services: Tuple[str, ...] = ("conversation", "coding"),
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    policies=ALL_POLICIES,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 14: normalised weekly energy of the six systems per service."""

    def evaluate(service: str) -> Dict[str, float]:
        runner = FluidRunner(model=model)
        bins = week_bins(service, rate_scale=rate_scale)
        runs = runner.run_all(policies, bins)
        baseline = runs["SinglePool"].energy_wh or 1.0
        return {name: run.energy_wh / baseline for name, run in runs.items()}

    if workers and workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {service: pool.submit(evaluate, service) for service in services}
            return {service: future.result() for service, future in futures.items()}
    return {service: evaluate(service) for service in services}


def weekly_policy_summaries(
    service: str = "conversation",
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    policies=ALL_POLICIES,
    workers: Optional[int] = None,
    sink=None,
    bin_seconds: float = 300.0,
):
    """Figure 14's week, run through the Scenario API's fluid backend.

    Returns full :class:`~repro.metrics.summary.RunSummary` objects per
    policy (streaming carbon / cost / GPU-hours included) whose energy
    accounting is byte-for-byte the classic ``FluidRunner`` result.
    With ``sink`` set, summaries stream into it as they complete and the
    sink is returned instead — the memory-bounded path for wide grids.
    """
    from repro.api.executor import run_policies

    trace = BinnedTrace(
        name=f"{service}-week",
        bins=week_bins(service, rate_scale=rate_scale, bin_seconds=bin_seconds),
    )
    return run_policies(
        trace, policies, workers=workers, backend="fluid", sink=sink
    )


def figure15_daily_energy(
    service: str = "conversation",
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    bin_seconds: float = 300.0,
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 15: energy per 5-minute interval over one day, both systems."""
    runner = FluidRunner(model=model)
    bins = week_bins(service, rate_scale=rate_scale, bin_seconds=bin_seconds)
    day_bins = [
        b for b in bins if SECONDS_PER_DAY <= b.start_time < 2 * SECONDS_PER_DAY
    ]
    baseline = runner.run(SINGLE_POOL, day_bins)
    dynamo = runner.run(DYNAMO_LLM, day_bins)
    return {
        "SinglePool": [(t, wh / 1000.0) for t, wh in baseline.energy_timeline_wh],
        "DynamoLLM": [(t, wh / 1000.0) for t, wh in dynamo.energy_timeline_wh],
    }


def figure16_carbon(
    service: str = "conversation",
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    intensity: Optional[CarbonIntensityTrace] = None,
) -> Dict[str, object]:
    """Figure 16: CO2 emission rate over the week, plus weekly totals (tonnes)."""
    intensity = intensity or CarbonIntensityTrace()
    runner = FluidRunner(model=model)
    bins = week_bins(service, rate_scale=rate_scale)
    baseline = runner.run(SINGLE_POOL, bins)
    dynamo = runner.run(DYNAMO_LLM, bins)
    return {
        "timeline_kg_per_h": {
            "SinglePool": carbon_timeline_kg_per_h(baseline.energy_timeline_wh, intensity),
            "DynamoLLM": carbon_timeline_kg_per_h(dynamo.energy_timeline_wh, intensity),
        },
        "weekly_tonnes": {
            "SinglePool": baseline.carbon_kg(intensity) / 1000.0,
            "DynamoLLM": dynamo.carbon_kg(intensity) / 1000.0,
        },
        "saving_fraction": 1.0
        - (dynamo.carbon_kg(intensity) / baseline.carbon_kg(intensity) if baseline.carbon_kg(intensity) > 0 else 1.0),
    }


def cost_summary(
    service: str = "conversation",
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, float]:
    """Section V-F: GPU-hour and energy cost savings over a week."""
    cost_model = cost_model or CostModel()
    runner = FluidRunner(model=model)
    bins = week_bins(service, rate_scale=rate_scale)
    baseline: FluidResult = runner.run(SINGLE_POOL, bins)
    dynamo: FluidResult = runner.run(DYNAMO_LLM, bins)
    savings = cost_model.savings(
        baseline_gpu_hours=baseline.gpu_hours,
        baseline_energy_kwh=baseline.energy_kwh,
        optimized_gpu_hours=dynamo.gpu_hours,
        optimized_energy_kwh=dynamo.energy_kwh,
    )
    hours = baseline.duration_s / 3600.0 or 1.0
    savings.update(
        {
            "baseline_avg_servers": baseline.average_servers,
            "dynamo_avg_servers": dynamo.average_servers,
            "gpu_saving_usd_per_hour": savings["gpu_saving_usd"] / hours,
            "energy_saving_usd_per_hour": savings["energy_saving_usd"] / hours,
            "energy_saving_fraction": 1.0
            - (dynamo.energy_kwh / baseline.energy_kwh if baseline.energy_kwh > 0 else 1.0),
        }
    )
    return savings


def headline_claims(
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
) -> Dict[str, float]:
    """The abstract's service-level claims: energy, carbon and cost savings."""
    weekly = figure14_weekly_energy(rate_scale=rate_scale, policies=(SINGLE_POOL, DYNAMO_LLM))
    carbon = figure16_carbon(rate_scale=rate_scale)
    cost = cost_summary(rate_scale=rate_scale)
    energy_saving = 1.0 - sum(weekly[s]["DynamoLLM"] for s in weekly) / len(weekly)
    return {
        "energy_saving_fraction": energy_saving,
        "carbon_saving_fraction": carbon["saving_fraction"],
        "cost_saving_fraction": cost["saving_fraction"],
    }
