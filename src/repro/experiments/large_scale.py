"""Large-scale experiments: Figures 14-16 and the cost analysis (Section V-D/E/F).

These use the fluid (binned) simulator — the reproduction's counterpart
of the paper's discrete-time simulator — over synthetic day- and
week-long traces for the Conversation and Coding services.

:func:`weekly_policy_summaries`, :func:`figure15_daily_energy` and
:func:`figure16_carbon` run through the unified :mod:`repro.api` layer
(``Scenario(backend="fluid")`` via
:func:`~repro.api.executor.run_policies`), which adds observer-based
carbon/cost accounting, parallelism (``workers=``) and streamed
:class:`~repro.api.sinks.ResultSink` output on top of accounting that
is byte-identical to a direct :class:`~repro.experiments.fluid.FluidRunner`
run (pinned by ``tests/test_backends.py``).  Passing ``sink=`` streams
one record per policy as it completes and returns the sink —
``resume=True`` then skips policies the sink already records, so an
interrupted week-scale replay reruns only the missing systems.

``figure14_weekly_energy`` keeps the classic direct-runner path (its
``workers`` evaluates the services concurrently, one independent runner
per service, results identical to a serial run); ``cost_summary``
likewise — their registry twins are the API-backed drivers above.

:func:`figure15_campaign` / :func:`figure16_campaign` are the
manifest-driven counterparts: the bundled ``fig15_daily`` /
``fig16_carbon`` campaigns run the same comparisons through
``python -m repro campaign`` (declarative grid, sharding, resume,
pivoted savings report).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.experiments.fluid import FluidResult, FluidRunner
from repro.llm.catalog import ModelSpec, LLAMA2_70B
from repro.metrics.carbon import CarbonIntensityTrace, carbon_timeline_kg_per_h
from repro.metrics.cost import CostModel
from repro.policies import ALL_POLICIES, DYNAMO_LLM, SINGLE_POOL
from repro.workload.synthetic import SECONDS_PER_DAY, make_week_trace
from repro.workload.traces import BinnedTrace, TraceBin

#: Rate scale applied to the week traces so the cluster spans tens of servers.
DEFAULT_WEEK_RATE_SCALE = 40.0


def week_bins(
    service: str,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    bin_seconds: float = 300.0,
    seed: int = 7,
) -> List[TraceBin]:
    """A week-long binned trace for one service."""
    return make_week_trace(service, seed=seed, rate_scale=rate_scale, bin_seconds=bin_seconds)


def figure14_weekly_energy(
    services: Tuple[str, ...] = ("conversation", "coding"),
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    policies=ALL_POLICIES,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 14: normalised weekly energy of the six systems per service."""

    def evaluate(service: str) -> Dict[str, float]:
        runner = FluidRunner(model=model)
        bins = week_bins(service, rate_scale=rate_scale)
        runs = runner.run_all(policies, bins)
        baseline = runs["SinglePool"].energy_wh or 1.0
        return {name: run.energy_wh / baseline for name, run in runs.items()}

    if workers and workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {service: pool.submit(evaluate, service) for service in services}
            return {service: future.result() for service, future in futures.items()}
    return {service: evaluate(service) for service in services}


def weekly_policy_summaries(
    service: str = "conversation",
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    policies=ALL_POLICIES,
    workers: Optional[int] = None,
    sink=None,
    resume: bool = False,
    bin_seconds: float = 300.0,
):
    """Figure 14's week, run through the Scenario API's fluid backend.

    Returns full :class:`~repro.metrics.summary.RunSummary` objects per
    policy (streaming carbon / cost / GPU-hours included) whose energy
    accounting is byte-for-byte the classic ``FluidRunner`` result.
    With ``sink`` set, summaries stream into it as they complete and the
    sink is returned instead — the memory-bounded path for wide grids;
    ``resume=True`` additionally skips policies the sink already
    records, making interrupted week-scale sweeps restartable.
    """
    from repro.api.executor import run_policies

    trace = BinnedTrace(
        name=_week_trace_name(f"{service}-week", rate_scale, bin_seconds),
        bins=week_bins(service, rate_scale=rate_scale, bin_seconds=bin_seconds),
    )
    return run_policies(
        trace, policies, workers=workers, backend="fluid", sink=sink, resume=resume
    )


def _week_trace_name(
    stem: str, rate_scale: float, bin_seconds: float = 300.0, model: Optional[ModelSpec] = None
) -> str:
    """Trace name encoding the sweep parameters it was built with.

    The name is the resume identity for records keyed by bare policy
    name (``run_policies``), so every parameter that changes the
    numbers must appear in it — otherwise rerunning a driver with,
    say, a different ``rate_scale`` against the same sink file would
    silently skip and present the stale records as this sweep's.
    """
    name = f"{stem}-x{rate_scale:g}"
    if bin_seconds != 300.0:
        name += f"-b{bin_seconds:g}"
    if model is not None and model.name != LLAMA2_70B.name:
        name += f"-{model.name}"
    return name


def _api_policy_summaries(
    trace: BinnedTrace,
    model: ModelSpec,
    policies,
    workers: Optional[int],
    sink,
    resume: bool,
):
    """Run ``policies`` over one binned trace via the Scenario API.

    The shared plumbing of the figure-15/16 drivers: one
    :func:`~repro.api.executor.run_policies` call on the fluid backend,
    whose per-bin energy accounting is byte-identical to a direct
    ``FluidRunner.run`` (the equivalence suite pins it).  With ``sink``
    set the sink is returned (records stream as policies complete, and
    ``resume`` skips the ones already recorded).
    """
    from repro.api.executor import run_policies
    from repro.experiments.runner import ExperimentConfig

    return run_policies(
        trace,
        policies,
        config=ExperimentConfig(model=model),
        workers=workers,
        backend="fluid",
        sink=sink,
        resume=resume,
    )


def figure15_daily_energy(
    service: str = "conversation",
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    bin_seconds: float = 300.0,
    workers: Optional[int] = None,
    sink=None,
    resume: bool = False,
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 15: energy per 5-minute interval over one day, both systems.

    Runs through the sink-backed fluid Scenario API: with ``sink`` set
    the per-policy records stream to it and the sink is returned
    (``resume=True`` skips recorded policies — the restartable path for
    week-scale replays); without one, the figure payload is built from
    the in-memory summaries' per-bin energy timelines, numerically
    identical to the classic direct ``FluidRunner`` driver.
    """
    bins = week_bins(service, rate_scale=rate_scale, bin_seconds=bin_seconds)
    day_bins = [
        b for b in bins if SECONDS_PER_DAY <= b.start_time < 2 * SECONDS_PER_DAY
    ]
    trace = BinnedTrace(
        name=_week_trace_name(f"{service}-day2", rate_scale, bin_seconds, model),
        bins=day_bins,
    )
    result = _api_policy_summaries(
        trace, model, (SINGLE_POOL, DYNAMO_LLM), workers, sink, resume
    )
    if sink is not None:
        return result
    return {
        name: [(t, wh / 1000.0) for t, wh in summary.energy.timeline]
        for name, summary in result.items()
    }


def figure16_carbon(
    service: str = "conversation",
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    intensity: Optional[CarbonIntensityTrace] = None,
    workers: Optional[int] = None,
    sink=None,
    resume: bool = False,
) -> Dict[str, object]:
    """Figure 16: CO2 emission rate over the week, plus weekly totals (tonnes).

    Like :func:`figure15_daily_energy`, runs both systems through the
    sink-backed fluid Scenario API; with ``sink`` set the sink is
    returned (resumable streamed records), otherwise the carbon figure
    is derived from the summaries' energy timelines — the same
    computation (and numbers) as the classic ``FluidRunner`` driver.
    A custom ``intensity`` only applies to the in-memory path: streamed
    records carry the default-grid carbon accounting of the standard
    observers, so combining it with ``sink`` is rejected rather than
    silently writing wrong numbers.
    """
    if sink is not None and intensity is not None:
        raise ValueError(
            "a custom carbon intensity cannot be applied to streamed "
            "records (sink rows carry the default-grid accounting); drop "
            "sink= and build the figure from the in-memory summaries"
        )
    intensity = intensity or CarbonIntensityTrace()
    trace = BinnedTrace(
        # "fig16" keeps this distinct from weekly_policy_summaries'
        # week, whose records would otherwise satisfy this driver's
        # resume despite the different model/config.
        name=_week_trace_name(f"{service}-week-fig16", rate_scale, model=model),
        bins=week_bins(service, rate_scale=rate_scale),
    )
    result = _api_policy_summaries(
        trace, model, (SINGLE_POOL, DYNAMO_LLM), workers, sink, resume
    )
    if sink is not None:
        return result
    baseline, dynamo = result["SinglePool"], result["DynamoLLM"]
    baseline_kg = baseline.carbon_kg(intensity)
    dynamo_kg = dynamo.carbon_kg(intensity)
    return {
        "timeline_kg_per_h": {
            "SinglePool": carbon_timeline_kg_per_h(baseline.energy.timeline, intensity),
            "DynamoLLM": carbon_timeline_kg_per_h(dynamo.energy.timeline, intensity),
        },
        "weekly_tonnes": {
            "SinglePool": baseline_kg / 1000.0,
            "DynamoLLM": dynamo_kg / 1000.0,
        },
        "saving_fraction": 1.0
        - (dynamo_kg / baseline_kg if baseline_kg > 0 else 1.0),
    }


def figure15_campaign(
    out: Optional[str] = None, workers: Optional[int] = None, resume: bool = True
):
    """Figure 15 as a bundled campaign: run ``fig15_daily``, return its report.

    The declarative twin of :func:`figure15_daily_energy` — one day of
    the Conversation trace, SinglePool vs DynamoLLM on the fluid
    backend, pivoted into an energy-savings
    :class:`~repro.api.campaign.ReportTable`.  ``out`` keeps resumable
    results files (default: a discarded temporary directory).
    """
    from repro.experiments.manifests import run_bundled_campaign

    return run_bundled_campaign("fig15_daily", out=out, workers=workers, resume=resume)


def figure16_campaign(
    out: Optional[str] = None, workers: Optional[int] = None, resume: bool = True
):
    """Figure 16 as a bundled campaign: run ``fig16_carbon``, return its report.

    The declarative twin of :func:`figure16_carbon`, pivoting weekly
    ``carbon_kg`` savings vs SinglePool from the streamed records.
    """
    from repro.experiments.manifests import run_bundled_campaign

    return run_bundled_campaign("fig16_carbon", out=out, workers=workers, resume=resume)


def cost_summary(
    service: str = "conversation",
    model: ModelSpec = LLAMA2_70B,
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, float]:
    """Section V-F: GPU-hour and energy cost savings over a week."""
    cost_model = cost_model or CostModel()
    runner = FluidRunner(model=model)
    bins = week_bins(service, rate_scale=rate_scale)
    baseline: FluidResult = runner.run(SINGLE_POOL, bins)
    dynamo: FluidResult = runner.run(DYNAMO_LLM, bins)
    savings = cost_model.savings(
        baseline_gpu_hours=baseline.gpu_hours,
        baseline_energy_kwh=baseline.energy_kwh,
        optimized_gpu_hours=dynamo.gpu_hours,
        optimized_energy_kwh=dynamo.energy_kwh,
    )
    hours = baseline.duration_s / 3600.0 or 1.0
    savings.update(
        {
            "baseline_avg_servers": baseline.average_servers,
            "dynamo_avg_servers": dynamo.average_servers,
            "gpu_saving_usd_per_hour": savings["gpu_saving_usd"] / hours,
            "energy_saving_usd_per_hour": savings["energy_saving_usd"] / hours,
            "energy_saving_fraction": 1.0
            - (dynamo.energy_kwh / baseline.energy_kwh if baseline.energy_kwh > 0 else 1.0),
        }
    )
    return savings


def headline_claims(
    rate_scale: float = DEFAULT_WEEK_RATE_SCALE,
) -> Dict[str, float]:
    """The abstract's service-level claims: energy, carbon and cost savings."""
    weekly = figure14_weekly_energy(rate_scale=rate_scale, policies=(SINGLE_POOL, DYNAMO_LLM))
    carbon = figure16_carbon(rate_scale=rate_scale)
    cost = cost_summary(rate_scale=rate_scale)
    energy_saving = 1.0 - sum(weekly[s]["DynamoLLM"] for s in weekly) / len(weekly)
    return {
        "energy_saving_fraction": energy_saving,
        "carbon_saving_fraction": carbon["saving_fraction"],
        "cost_saving_fraction": cost["saving_fraction"],
    }
