"""Cluster-level evaluation: Figures 6-10 (Section V-B).

All five figures come from the same experiment: the six systems serving
the 1-hour trace on a peak-provisioned cluster.  ``run_cluster_evaluation``
runs it once — via :func:`repro.api.run_policies`, optionally in
parallel across the six systems — and the per-figure extractors shape
the results.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from repro.api.executor import run_policies
from repro.experiments.runner import ExperimentConfig
from repro.llm.catalog import ModelSpec, get_model
from repro.metrics.summary import RunSummary, compare_energy
from repro.policies import ALL_POLICIES
from repro.workload.synthetic import make_one_hour_trace
from repro.workload.traces import Trace

#: Scale factor applied to the synthetic 1-hour trace so that the peak
#: needs a multi-server cluster (the paper's trace needed 12 servers).
DEFAULT_RATE_SCALE = 25.0


def one_hour_trace(
    service: str = "conversation",
    rate_scale: float = DEFAULT_RATE_SCALE,
    seed: int = 7,
) -> Trace:
    """The 1-hour trace used throughout Section V-B."""
    return make_one_hour_trace(service, seed=seed, rate_scale=rate_scale)


def run_cluster_evaluation(
    trace: Optional[Trace] = None,
    config: Optional[ExperimentConfig] = None,
    policies=ALL_POLICIES,
    workers: Optional[int] = None,
    model: Optional[Union[str, ModelSpec]] = None,
) -> Dict[str, RunSummary]:
    """Run the six systems over the 1-hour trace (Figures 6-10).

    ``workers`` > 1 runs the systems concurrently; every system still
    gets the same peak-sized static budget and produces summaries
    identical to a serial run.  ``model`` re-runs the whole evaluation
    for another catalog model (name or :class:`ModelSpec`); its
    energy-performance profile is derived automatically.
    """
    trace = trace if trace is not None else one_hour_trace()
    config = config or ExperimentConfig()
    if model is not None:
        spec = get_model(model) if isinstance(model, str) else model
        config = dataclasses.replace(config, model=spec, profile=None)
    return run_policies(trace, policies, config, workers=workers)


# ----------------------------------------------------------------------
# Per-figure extractors
# ----------------------------------------------------------------------
def figure6_energy_by_system(
    summaries: Dict[str, RunSummary],
) -> Dict[str, Dict[str, float]]:
    """Figure 6: total energy per system, broken down by request type (kWh)."""
    result: Dict[str, Dict[str, float]] = {}
    for name, summary in summaries.items():
        breakdown = summary.energy.type_breakdown_kwh()
        breakdown["total"] = summary.energy_kwh
        result[name] = breakdown
    return result


def figure7_latency_percentiles(
    summaries: Dict[str, RunSummary],
    percentiles=(50, 90, 99),
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Figure 7: TTFT and TBT percentiles per system."""
    return {
        name: summary.latency.percentile_table(percentiles)
        for name, summary in summaries.items()
    }


def figure8_power_percentiles(
    summaries: Dict[str, RunSummary],
    percentiles=(50, 90, 99),
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Figure 8: cluster and per-GPU power percentiles per system."""
    return {
        name: summary.power.percentile_table(percentiles)
        for name, summary in summaries.items()
    }


def figure9_frequency_timeline(
    summaries: Dict[str, RunSummary],
    policy: str = "DynamoLLM",
    pools: Tuple[str, ...] = ("SL", "LL"),
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 9: average GPU frequency over time (total and per pool)."""
    summary = summaries[policy]
    series: Dict[str, List[Tuple[float, float]]] = {"total": summary.frequency_timeline}
    for pool in pools:
        series[pool] = summary.pool_frequency_timeline.get(pool, [])
    return series


def figure10_sharding_timeline(
    summaries: Dict[str, RunSummary],
    policy: str = "DynamoLLM",
    pools: Tuple[str, ...] = ("SL", "ML", "LL"),
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Figure 10: GPUs per TP degree over time, total and for selected pools.

    Returns ``{scope: {"TP2"|"TP4"|"TP8"|"load": [(time, value), ...]}}``.
    """
    summary = summaries[policy]

    def split_series(
        timeline: List[Tuple[float, Dict[int, int]]]
    ) -> Dict[str, List[Tuple[float, float]]]:
        series: Dict[str, List[Tuple[float, float]]] = {"TP2": [], "TP4": [], "TP8": []}
        for time, tp_map in timeline:
            for tp in (2, 4, 8):
                series[f"TP{tp}"].append((time, float(tp_map.get(tp, 0))))
        return series

    result: Dict[str, Dict[str, List[Tuple[float, float]]]] = {
        "total": split_series(summary.gpus_by_tp_timeline)
    }
    for pool in pools:
        result[pool] = split_series(summary.pool_gpus_by_tp_timeline.get(pool, []))
        result[pool]["load"] = summary.pool_load_timeline.get(pool, [])
    return result


def normalized_energy(summaries: Dict[str, RunSummary]) -> Dict[str, float]:
    """Energy of each system normalised to SinglePool (headline comparison)."""
    return compare_energy(summaries, baseline="SinglePool")
