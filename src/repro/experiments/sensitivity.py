"""Sensitivity studies: Figures 11, 12 and 13 (Section V-C).

All three figures are scenario sweeps on the unified :mod:`repro.api`
layer: one dimension varies (predictor accuracy, Poisson load level,
pool count), everything else is inherited from a shared base config.
Each driver accepts ``workers`` to run its sweep in parallel; results
are identical to a serial run.

The single-dimension figures (11 and 13) run through the campaign layer
(:meth:`repro.api.campaign.CampaignRunner.from_grid`), so they share
its validation and execution path with the manifest-driven grids; the
declarative counterparts — including the wider-than-paper accuracy x
SLO-scale campaign :func:`wide_accuracy_slo_campaign` and the
1008-scenario :mod:`~repro.experiments.manifests` ``sensitivity_grid``
— shard, resume and pivot through ``python -m repro campaign``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

from repro.api.campaign import CampaignRunner, ReportSpec
from repro.api.executor import run_policies, run_scenario, runs
from repro.api.scenario import Scenario, TraceSpec
from repro.experiments.runner import ExperimentConfig
from repro.llm.catalog import get_model
from repro.metrics.summary import RunSummary
from repro.policies import ALL_POLICIES, DYNAMO_LLM, SINGLE_POOL
from repro.workload.synthetic import make_one_hour_trace
from repro.workload.traces import Trace


def _default_trace(rate_scale: float = 15.0, duration_s: Optional[float] = 1800.0) -> Trace:
    trace = make_one_hour_trace("conversation", rate_scale=rate_scale)
    if duration_s is not None and duration_s < trace.duration:
        trace = trace.slice(0.0, duration_s)
    return trace


def _summary_of(sink, scenario: Scenario) -> RunSummary:
    """A scenario's summary from an in-memory campaign sink.

    The streamed executors convert a raising scenario into an error
    entry and keep going; a figure driver wants the *original* failure,
    not a bare ``KeyError`` on the missing summary — re-raise it.
    """
    try:
        return sink.results[scenario.key]
    except KeyError:
        error = sink.errors.get(scenario.key)
        if error is not None:
            raise error
        raise


def _headline_metrics(summary: RunSummary) -> Dict[str, float]:
    return {
        "energy_kwh": summary.energy_kwh,
        "p99_ttft_s": summary.latency.ttft_percentile(99),
        "mean_ttft_s": summary.latency.mean_ttft(),
        "slo_attainment": summary.slo_attainment(),
    }


def figure11_predictor_accuracy(
    accuracies: Sequence[float] = (1.0, 0.9, 0.8, 0.6, 0.5),
    trace: Optional[Trace] = None,
    config: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 11: energy and TTFT vs output-length predictor accuracy.

    Includes the SinglePool baseline as the reference bar, as in the
    paper's figure.  Runs through the campaign layer (in-memory sink),
    so the grid is validated like a manifest campaign and the summaries
    are identical to a plain :func:`~repro.api.executor.runs` sweep.
    """
    trace = trace if trace is not None else _default_trace()
    base_config = config or ExperimentConfig()
    scenarios = [Scenario(policy=SINGLE_POOL, trace=trace, base_config=base_config)]
    scenarios += [
        Scenario(
            policy=DYNAMO_LLM,
            trace=trace,
            predictor_accuracy=accuracy,
            base_config=base_config,
        )
        for accuracy in accuracies
    ]
    runner = CampaignRunner.from_grid(
        "figure11-accuracy",
        scenarios,
        report=ReportSpec(
            value="energy_kwh",
            rows=("policy",),
            cols=("predictor_accuracy",),
            baseline="SinglePool",
            compare="saving",
        ),
    )
    sink = runner.run_in_memory(workers=workers)
    summaries = [_summary_of(sink, scenario) for scenario in scenarios]
    results: Dict[str, Dict[str, float]] = {"SinglePool": _headline_metrics(summaries[0])}
    for accuracy, summary in zip(accuracies, summaries[1:]):
        results[f"Dyn-{int(accuracy * 100)}%"] = _headline_metrics(summary)
    return results


def figure12_load_levels(
    levels: Sequence[str] = ("low", "medium", "high"),
    duration_s: float = 1800.0,
    config: Optional[ExperimentConfig] = None,
    policies=ALL_POLICIES,
    load_multiplier: float = 6.0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 12: energy of the six systems under Poisson load levels.

    ``load_multiplier`` scales the paper's single-server load levels up
    to cluster scale so that several servers are exercised.
    """
    results: Dict[str, Dict[str, float]] = {}
    for level_name in levels:
        spec = TraceSpec(
            kind="poisson",
            level=level_name,
            load_multiplier=load_multiplier,
            duration_s=duration_s,
            seed=11,
        )
        summaries = run_policies(
            spec.build(), policies, config or ExperimentConfig(), workers=workers, lean=True
        )
        results[level_name] = {name: s.energy_kwh for name, s in summaries.items()}
    return results


def figure13_pool_count(
    pool_counts: Sequence[int] = (2, 4, 6, 9),
    trace: Optional[Trace] = None,
    config: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
) -> Dict[int, Dict[str, float]]:
    """Figure 13: energy and TTFT of DynamoLLM vs the number of pools.

    Runs through the campaign layer like :func:`figure11_predictor_accuracy`.
    """
    trace = trace if trace is not None else _default_trace()
    base_config = config or ExperimentConfig()
    scenarios = [
        Scenario(
            policy=DYNAMO_LLM, trace=trace, pool_count=count, base_config=base_config
        )
        for count in pool_counts
    ]
    runner = CampaignRunner.from_grid(
        "figure13-pools",
        scenarios,
        report=ReportSpec(value="energy_kwh", rows=("pool_count",)),
    )
    sink = runner.run_in_memory(workers=workers)
    return {
        count: _headline_metrics(_summary_of(sink, scenario))
        for count, scenario in zip(pool_counts, scenarios)
    }


#: Default model subset for the request-level catalog sweep (Table III's
#: dense/MoE spread without the 100B+ giants, which need larger clusters).
CATALOG_MODELS = ("Llama2-13B", "Mixtral-8x7B", "Llama2-70B")


def default_catalog_trace(model: str, duration_s: float = 900.0) -> TraceSpec:
    """The per-model trace recipe for the catalog sweep.

    Smaller models serve proportionally more traffic per server, so each
    model's trace is rate-scaled inversely with its active parameter
    count (anchored at 15x for Llama2-70B, the paper's primary model).
    This keeps every catalog member exercising a comparable multi-server
    cluster instead of running the small models at a trivial load.
    """
    spec = get_model(model)
    rate_scale = max(4.0, min(40.0, 15.0 * 70.0 / spec.active_params_b))
    return TraceSpec(rate_scale=rate_scale, duration_s=duration_s)


def model_catalog_energy(
    models: Sequence[str] = CATALOG_MODELS,
    policies=(SINGLE_POOL, DYNAMO_LLM),
    traces: Optional[Mapping[str, Union[TraceSpec, Trace]]] = None,
    duration_s: float = 900.0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Request-level energy/SLO of the model catalog (Table III revisited).

    The grid crosses the ``models`` dimension with a *per-model*
    :class:`TraceSpec` (``traces`` overrides the default recipe), runs
    every (model, policy) pair on the engine and reports headline
    metrics keyed ``{model: {policy: metrics}}``.
    """
    traces = dict(traces or {})
    scenarios = [
        Scenario(
            policy=policy,
            trace=traces.get(model, default_catalog_trace(model, duration_s)),
            model=model,
        )
        for model in models
        for policy in policies
    ]
    summaries = runs(scenarios, workers=workers, lean=True)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for scenario, summary in zip(scenarios, summaries):
        results.setdefault(scenario.model, {})[scenario.policy_name] = _headline_metrics(summary)
    return results


def wide_accuracy_slo_campaign(
    out: Optional[str] = None,
    shard=None,
    workers: Optional[int] = None,
    resume: bool = True,
):
    """The wider-than-paper accuracy x SLO-scale sensitivity campaign.

    Runs the bundled ``accuracy_slo_wide`` manifest (11 accuracies x 6
    SLO scales + per-SLO SinglePool baselines, event backend) and
    returns its energy-savings :class:`~repro.api.campaign.ReportTable`.
    ``out`` keeps resumable results files; ``shard=(i, n)`` runs one
    shard for multi-host execution and returns the campaign status.
    """
    from repro.experiments.manifests import run_bundled_campaign

    return run_bundled_campaign(
        "accuracy_slo_wide", out=out, shard=shard, workers=workers, resume=resume
    )


def sensitivity_grid_campaign(
    out: Optional[str] = None,
    shard=None,
    workers: Optional[int] = None,
    resume: bool = True,
):
    """The 1008-scenario fluid sensitivity campaign (bundled manifest).

    Six systems x four pool schemes x three load scales x fourteen
    seeds; the report pivots mean energy savings vs SinglePool per
    (policy, pool-count) cell.  See :mod:`repro.experiments.manifests`.
    """
    from repro.experiments.manifests import run_bundled_campaign

    return run_bundled_campaign(
        "sensitivity_grid", out=out, shard=shard, workers=workers, resume=resume
    )


def compare_levels(results: Dict[str, Dict[str, float]], baseline: str = "SinglePool") -> Dict[str, Dict[str, float]]:
    """Savings of every system vs the baseline for each load level."""
    savings: Dict[str, Dict[str, float]] = {}
    for level, energies in results.items():
        base = energies.get(baseline, 0.0)
        savings[level] = {
            name: (1.0 - value / base if base > 0 else 0.0) for name, value in energies.items()
        }
    return savings
