"""Sensitivity studies: Figures 11, 12 and 13 (Section V-C)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.runner import ExperimentConfig, run_all_policies, run_policy_on_trace
from repro.metrics.summary import RunSummary
from repro.policies import ALL_POLICIES, DYNAMO_LLM, SINGLE_POOL
from repro.workload.arrival import LOAD_LEVELS, PoissonArrivalGenerator, get_load_level
from repro.workload.classification import scheme_for_pool_count
from repro.workload.synthetic import make_one_hour_trace
from repro.workload.traces import Trace


def _default_trace(rate_scale: float = 15.0, duration_s: Optional[float] = 1800.0) -> Trace:
    trace = make_one_hour_trace("conversation", rate_scale=rate_scale)
    if duration_s is not None and duration_s < trace.duration:
        trace = trace.slice(0.0, duration_s)
    return trace


def figure11_predictor_accuracy(
    accuracies: Sequence[float] = (1.0, 0.9, 0.8, 0.6, 0.5),
    trace: Optional[Trace] = None,
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 11: energy and TTFT vs output-length predictor accuracy.

    Includes the SinglePool baseline as the reference bar, as in the
    paper's figure.
    """
    trace = trace if trace is not None else _default_trace()
    base_config = config or ExperimentConfig()
    results: Dict[str, Dict[str, float]] = {}

    baseline = run_policy_on_trace(SINGLE_POOL, trace, base_config)
    results["SinglePool"] = {
        "energy_kwh": baseline.energy_kwh,
        "p99_ttft_s": baseline.latency.ttft_percentile(99),
        "mean_ttft_s": baseline.latency.mean_ttft(),
        "slo_attainment": baseline.slo_attainment(),
    }
    for accuracy in accuracies:
        run_config = ExperimentConfig(
            model=base_config.model,
            time_step_s=base_config.time_step_s,
            static_servers=base_config.static_servers,
            max_servers=base_config.max_servers,
            predictor_accuracy=accuracy,
            slo_policy=base_config.slo_policy,
            scheme=base_config.scheme,
            epochs=base_config.epochs,
            profile=base_config.profile,
        )
        summary = run_policy_on_trace(DYNAMO_LLM, trace, run_config)
        results[f"Dyn-{int(accuracy * 100)}%"] = {
            "energy_kwh": summary.energy_kwh,
            "p99_ttft_s": summary.latency.ttft_percentile(99),
            "mean_ttft_s": summary.latency.mean_ttft(),
            "slo_attainment": summary.slo_attainment(),
        }
    return results


def figure12_load_levels(
    levels: Sequence[str] = ("low", "medium", "high"),
    duration_s: float = 1800.0,
    config: Optional[ExperimentConfig] = None,
    policies=ALL_POLICIES,
    load_multiplier: float = 6.0,
) -> Dict[str, Dict[str, float]]:
    """Figure 12: energy of the six systems under Poisson load levels.

    ``load_multiplier`` scales the paper's single-server load levels up
    to cluster scale so that several servers are exercised.
    """
    results: Dict[str, Dict[str, float]] = {}
    for level_name in levels:
        level = get_load_level(level_name)
        generator = PoissonArrivalGenerator(seed=11)
        scaled = type(level)(level.name, level.prompt_tokens_per_second * load_multiplier)
        trace = generator.generate(scaled, duration_s)
        summaries = run_all_policies(trace, policies, config or ExperimentConfig())
        results[level_name] = {name: s.energy_kwh for name, s in summaries.items()}
    return results


def figure13_pool_count(
    pool_counts: Sequence[int] = (2, 4, 6, 9),
    trace: Optional[Trace] = None,
    config: Optional[ExperimentConfig] = None,
) -> Dict[int, Dict[str, float]]:
    """Figure 13: energy and TTFT of DynamoLLM vs the number of pools."""
    trace = trace if trace is not None else _default_trace()
    base_config = config or ExperimentConfig()
    results: Dict[int, Dict[str, float]] = {}
    for count in pool_counts:
        scheme = scheme_for_pool_count(count)
        run_config = ExperimentConfig(
            model=base_config.model,
            time_step_s=base_config.time_step_s,
            static_servers=base_config.static_servers,
            max_servers=base_config.max_servers,
            predictor_accuracy=base_config.predictor_accuracy,
            slo_policy=base_config.slo_policy,
            scheme=scheme,
            epochs=base_config.epochs,
            profile=base_config.profile,
        )
        summary = run_policy_on_trace(DYNAMO_LLM, trace, run_config)
        results[count] = {
            "energy_kwh": summary.energy_kwh,
            "p99_ttft_s": summary.latency.ttft_percentile(99),
            "mean_ttft_s": summary.latency.mean_ttft(),
            "slo_attainment": summary.slo_attainment(),
        }
    return results


def compare_levels(results: Dict[str, Dict[str, float]], baseline: str = "SinglePool") -> Dict[str, Dict[str, float]]:
    """Savings of every system vs the baseline for each load level."""
    savings: Dict[str, Dict[str, float]] = {}
    for level, energies in results.items():
        base = energies.get(baseline, 0.0)
        savings[level] = {
            name: (1.0 - value / base if base > 0 else 0.0) for name, value in energies.items()
        }
    return savings
