"""Experiment drivers: one entry point per paper table and figure.

The modules in this package glue workloads, policies, the simulation
engine and the metrics together and return plain Python data structures
(rows/series) matching what the corresponding table or figure in the
paper reports.  Request-level drivers are built on the unified
:mod:`repro.api` layer (``Scenario`` + ``SimulationEngine`` +
``run_grid``); the benchmark harness under ``benchmarks/``, the
``python -m repro`` CLI and the example scripts call into these drivers
through :mod:`repro.experiments.registry`.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    run_policy_on_trace,
    run_all_policies,
    recommended_static_servers,
    resolve_static_servers,
)
from repro.experiments.fluid import FluidRunner, FluidResult

__all__ = [
    "ExperimentConfig",
    "run_policy_on_trace",
    "run_all_policies",
    "recommended_static_servers",
    "resolve_static_servers",
    "FluidRunner",
    "FluidResult",
]
