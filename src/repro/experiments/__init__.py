"""Experiment drivers: one entry point per paper table and figure.

The modules in this package glue workloads, policies, the cluster
simulator and the metrics together and return plain Python data
structures (rows/series) matching what the corresponding table or
figure in the paper reports.  The benchmark harness under
``benchmarks/`` and the example scripts call into these drivers.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    run_policy_on_trace,
    run_all_policies,
    recommended_static_servers,
)
from repro.experiments.fluid import FluidRunner, FluidResult

__all__ = [
    "ExperimentConfig",
    "run_policy_on_trace",
    "run_all_policies",
    "recommended_static_servers",
    "FluidRunner",
    "FluidResult",
]
