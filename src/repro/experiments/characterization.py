"""Characterisation experiments: Tables I-IV (Section III-A).

These drivers regenerate the energy heat maps that motivate DynamoLLM:
energy per request type / load / model across tensor parallelism and
GPU frequency, with SLO-violating configurations marked infeasible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.llm.catalog import (
    ModelSpec,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA3_70B,
    MIXTRAL_8X7B,
    MIXTRAL_8X22B,
    FALCON_180B,
)
from repro.perf.config import InstanceConfig, TENSOR_PARALLELISMS
from repro.perf.energy_model import EnergyModel
from repro.workload.arrival import LOAD_LEVELS
from repro.workload.classification import REQUEST_TYPE_NAMES, RequestType
from repro.workload.slo import DEFAULT_SLO_POLICY, SLOPolicy

#: Frequencies shown in the paper's tables (GHz columns).
TABLE_FREQUENCIES_MHZ = (800, 1200, 1600, 1980)

#: Models characterised in Table III.
TABLE3_MODELS: Sequence[ModelSpec] = (
    LLAMA2_13B,
    MIXTRAL_8X7B,
    LLAMA2_70B,
    LLAMA3_70B,
    MIXTRAL_8X22B,
    FALCON_180B,
)


def _heatmap_row(
    energy_model: EnergyModel,
    request_type: RequestType,
    load_tps: float,
    frequencies: Sequence[int] = TABLE_FREQUENCIES_MHZ,
) -> Dict[str, Optional[float]]:
    """One row of the heat map: energy per (TP, frequency), None = infeasible."""
    row: Dict[str, Optional[float]] = {}
    for tp in TENSOR_PARALLELISMS:
        for frequency in frequencies:
            sample = energy_model.evaluate_request_type(
                request_type, InstanceConfig(tp, frequency), load_tps
            )
            key = f"TP{tp}@{frequency}"
            row[key] = sample.energy_per_request_wh if sample.feasible else None
    return row


def table1_energy_heatmap(
    model: ModelSpec = LLAMA2_70B,
    load_tps: float = 2000.0,
    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Table I: energy (Wh/request) per request type x TP x frequency."""
    energy_model = EnergyModel(model, slo_policy=slo_policy)
    return {
        type_name: _heatmap_row(energy_model, RequestType.from_name(type_name), load_tps)
        for type_name in REQUEST_TYPE_NAMES
    }


def table2_load_sweep(
    model: ModelSpec = LLAMA2_70B,
    request_type_name: str = "MM",
    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Table II: energy for MM requests across low/medium/high load."""
    energy_model = EnergyModel(model, slo_policy=slo_policy)
    request_type = RequestType.from_name(request_type_name)
    return {
        level.name: _heatmap_row(energy_model, request_type, level.prompt_tokens_per_second)
        for level in LOAD_LEVELS.values()
    }


def table3_model_sweep(
    models: Sequence[ModelSpec] = TABLE3_MODELS,
    request_type_name: str = "MM",
    load_tps: float = 2000.0,
    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Table III: energy for MM requests across the model catalog."""
    request_type = RequestType.from_name(request_type_name)
    rows: Dict[str, Dict[str, Optional[float]]] = {}
    for model in models:
        energy_model = EnergyModel(model, slo_policy=slo_policy)
        rows[model.name] = _heatmap_row(energy_model, request_type, load_tps)
    return rows


def table4_slo_table(slo_policy: SLOPolicy = DEFAULT_SLO_POLICY) -> Dict[str, Dict[str, float]]:
    """Table IV: classification thresholds and TTFT/TBT SLOs per bucket."""
    from repro.workload.classification import (
        DEFAULT_INPUT_THRESHOLDS,
        DEFAULT_OUTPUT_THRESHOLDS,
    )

    table: Dict[str, Dict[str, float]] = {}
    for index, input_class in enumerate("SML"):
        for output_class in "SML":
            name = f"{input_class}{output_class}"
            request_type = RequestType.from_name(name)
            slo = slo_policy.slo_for(request_type)
            table[name] = {
                "input_threshold": float(DEFAULT_INPUT_THRESHOLDS[index]),
                "output_threshold": float(DEFAULT_OUTPUT_THRESHOLDS["SML".index(output_class)]),
                "ttft_slo_s": slo.ttft_s,
                "tbt_slo_s": slo.tbt_s,
            }
    return table


def best_configs_summary(
    model: ModelSpec = LLAMA2_70B, load_tps: float = 2000.0
) -> Dict[str, Optional[str]]:
    """Minimum-energy SLO-compliant configuration per request type."""
    energy_model = EnergyModel(model)
    summary: Dict[str, Optional[str]] = {}
    for type_name in REQUEST_TYPE_NAMES:
        best = energy_model.best_config(RequestType.from_name(type_name), load_tps)
        summary[type_name] = best.config.name if best is not None else None
    return summary


def format_heatmap(rows: Dict[str, Dict[str, Optional[float]]]) -> List[str]:
    """Render a heat map as fixed-width text lines (for benches/examples)."""
    if not rows:
        return []
    columns = list(next(iter(rows.values())).keys())
    header = f"{'':12s}" + "".join(f"{column:>14s}" for column in columns)
    lines = [header]
    for name, row in rows.items():
        cells = "".join(
            f"{row[column]:14.3f}" if row[column] is not None else f"{'--':>14s}"
            for column in columns
        )
        lines.append(f"{name:12s}{cells}")
    return lines
