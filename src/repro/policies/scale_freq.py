"""ScaleFreq: MultiPool plus dynamic GPU frequency scaling.

Instance managers re-tune the GPU frequency every few seconds to the
lowest SLO-compliant setting for the current load.
"""

from repro.policies.base import PolicySpec, register_policy

SCALE_FREQ = register_policy(
    PolicySpec(
        name="ScaleFreq",
        multi_pool=True,
        scale_instances=False,
        scale_sharding=False,
        scale_frequency=True,
    )
)
