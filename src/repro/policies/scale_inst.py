"""ScaleInst: MultiPool plus dynamic instance-count scaling.

The number of instances per pool follows the current load, but scaling
happens reactively on the critical path (no proactive provisioning), so
new servers pay the full cold-boot overhead of Table V — which is why
the paper observes higher tail latency for this baseline.
"""

from repro.policies.base import PolicySpec, register_policy

SCALE_INST = register_policy(
    PolicySpec(
        name="ScaleInst",
        multi_pool=True,
        scale_instances=True,
        scale_sharding=False,
        scale_frequency=False,
        proactive_provisioning=False,
    )
)
