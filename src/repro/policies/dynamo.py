"""DynamoLLM: all knobs enabled (the paper's full system).

Per-request-type pools, dynamic instance counts with proactive
provisioning, dynamic tensor parallelism with overhead-aware staggered
re-sharding, dynamic per-instance GPU frequency, fragmentation handling
across pools, and emergency handling for mis-predictions.
"""

from repro.policies.base import PolicySpec, register_policy

DYNAMO_LLM = register_policy(
    PolicySpec(
        name="DynamoLLM",
        multi_pool=True,
        scale_instances=True,
        scale_sharding=True,
        scale_frequency=True,
        proactive_provisioning=True,
        fragmentation_handling=True,
        overhead_aware=True,
        emergency_handling=True,
    )
)
