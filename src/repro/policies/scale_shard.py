"""ScaleShard: MultiPool plus dynamic model-parallelism scaling.

Each pool keeps its static GPU budget but re-shards its instances (TP2 /
TP4 / TP8) to match the current load, using the minimal-movement
re-sharding plan.
"""

from repro.policies.base import PolicySpec, register_policy

SCALE_SHARD = register_policy(
    PolicySpec(
        name="ScaleShard",
        multi_pool=True,
        scale_instances=False,
        scale_sharding=True,
        scale_frequency=False,
    )
)
