"""The six evaluated systems (Section V-A).

* ``SinglePool`` — state-of-the-practice baseline: one pool, statically
  provisioned for the peak, TP8 at the maximum GPU frequency.
* ``MultiPool`` — per-request-type pools, still statically provisioned
  at the highest-performance configuration.
* ``ScaleInst`` / ``ScaleShard`` / ``ScaleFreq`` — MultiPool plus exactly
  one dynamic knob (instance count, model parallelism, GPU frequency).
* ``DynamoLLM`` — all knobs, plus proactive provisioning, fragmentation
  handling, overhead-aware staggered reconfiguration and emergency
  handling.

Each policy is described by a :class:`~repro.policies.base.PolicySpec`
and materialised into a :class:`~repro.core.framework.DynamoLLM`
controller by :func:`~repro.policies.base.build_policy`.
"""

from repro.policies.base import PolicySpec, build_policy, POLICY_REGISTRY, get_policy_spec
from repro.policies.single_pool import SINGLE_POOL
from repro.policies.multi_pool import MULTI_POOL
from repro.policies.scale_inst import SCALE_INST
from repro.policies.scale_shard import SCALE_SHARD
from repro.policies.scale_freq import SCALE_FREQ
from repro.policies.dynamo import DYNAMO_LLM

ALL_POLICIES = (
    SINGLE_POOL,
    MULTI_POOL,
    SCALE_INST,
    SCALE_SHARD,
    SCALE_FREQ,
    DYNAMO_LLM,
)

__all__ = [
    "PolicySpec",
    "build_policy",
    "POLICY_REGISTRY",
    "get_policy_spec",
    "SINGLE_POOL",
    "MULTI_POOL",
    "SCALE_INST",
    "SCALE_SHARD",
    "SCALE_FREQ",
    "DYNAMO_LLM",
    "ALL_POLICIES",
]
