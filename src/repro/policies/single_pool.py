"""SinglePool: the state-of-the-practice baseline (Section V-A).

All requests share one pool of instances, statically provisioned for the
peak load, every instance running TP8 at the highest GPU frequency.
"""

from repro.policies.base import PolicySpec, register_policy

SINGLE_POOL = register_policy(
    PolicySpec(
        name="SinglePool",
        multi_pool=False,
        scale_instances=False,
        scale_sharding=False,
        scale_frequency=False,
    )
)
