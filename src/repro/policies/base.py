"""Policy specifications and the factory turning them into controllers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.cluster import GPUCluster
from repro.core.framework import ControllerEpochs, ControllerKnobs, DynamoLLM
from repro.llm.catalog import ModelSpec
from repro.perf.profile import EnergyPerformanceProfile
from repro.workload.classification import (
    ClassificationScheme,
    DEFAULT_SCHEME,
    REQUEST_TYPE_NAMES,
)
from repro.workload.load_predictor import TemplateLoadPredictor
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY

#: Single-pool classification: all nine buckets share one pool.
SINGLE_POOL_SCHEME = ClassificationScheme(
    name="1pool", groups=(tuple(REQUEST_TYPE_NAMES),)
)


@dataclass(frozen=True)
class PolicySpec:
    """Declarative description of one evaluated system."""

    name: str
    multi_pool: bool
    scale_instances: bool
    scale_sharding: bool
    scale_frequency: bool
    proactive_provisioning: bool = False
    fragmentation_handling: bool = False
    overhead_aware: bool = False
    emergency_handling: bool = False
    optimized_frequency_switching: bool = True

    def knobs(self) -> ControllerKnobs:
        return ControllerKnobs(
            scale_instances=self.scale_instances,
            scale_sharding=self.scale_sharding,
            scale_frequency=self.scale_frequency,
            fragmentation_handling=self.fragmentation_handling,
            overhead_aware=self.overhead_aware,
            staggered_reconfiguration=True,
            emergency_handling=self.emergency_handling,
        )

    def scheme(self, override: Optional[ClassificationScheme] = None) -> ClassificationScheme:
        if override is not None and self.multi_pool:
            return override
        return DEFAULT_SCHEME if self.multi_pool else SINGLE_POOL_SCHEME


#: Registry filled in by the per-policy modules at import time.
POLICY_REGISTRY: Dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec) -> PolicySpec:
    POLICY_REGISTRY[spec.name] = spec
    return spec


def get_policy_spec(name: str) -> PolicySpec:
    try:
        return POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise KeyError(f"unknown policy {name!r}; known policies: {known}") from None


def build_policy(
    spec: PolicySpec,
    model: ModelSpec,
    cluster: GPUCluster,
    profile: EnergyPerformanceProfile,
    static_servers: int,
    expected_load_fractions: Optional[Dict[str, float]] = None,
    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY,
    predictor: Optional[OutputLengthPredictor] = None,
    load_predictor: Optional[TemplateLoadPredictor] = None,
    scheme: Optional[ClassificationScheme] = None,
    epochs: Optional[ControllerEpochs] = None,
) -> DynamoLLM:
    """Materialise a policy spec into a configured controller."""
    return DynamoLLM(
        model=model,
        cluster=cluster,
        profile=profile,
        scheme=spec.scheme(scheme),
        slo_policy=slo_policy,
        predictor=predictor,
        load_predictor=load_predictor,
        knobs=spec.knobs(),
        epochs=epochs or ControllerEpochs(),
        static_servers=static_servers,
        expected_load_fractions=expected_load_fractions,
        name=spec.name,
    )
