"""MultiPool: per-request-type pools without dynamic reconfiguration.

Requests are separated by type into dedicated pools, which removes
head-of-line blocking, but every pool is still provisioned statically at
the highest-performance configuration (TP8, maximum frequency), so the
total energy grows relative to SinglePool (about +20% in the paper).
"""

from repro.policies.base import PolicySpec, register_policy

MULTI_POOL = register_policy(
    PolicySpec(
        name="MultiPool",
        multi_pool=True,
        scale_instances=False,
        scale_sharding=False,
        scale_frequency=False,
    )
)
