"""Whole-program facts: import graph, call graph, taint, layering.

PR 6's rules were per-file: each rule saw one AST and nothing else.
This module is the *project* half of the analyzer.  For every linted
file it extracts a serializable :class:`ModuleFacts` record (imports,
function signatures, resolved call sites, suffixed call-assignments,
frozen classes), then :func:`build_project_graph` assembles the records
into a :class:`ProjectGraph`:

* an **import graph** between project modules (``repro.*`` stripped to
  layer-package paths like ``sim.clock``), with per-edge source
  locations, top-level/deferred flags and the imported names — the
  substrate for the ``ARC`` architecture rules;
* a **call graph** between project functions, resolved through import
  aliases, ``from``-imports, relative imports and ``self.`` method
  calls — the substrate for the interprocedural ``DET005`` /
  ``UNT004`` rules;
* a **determinism taint table**: every function whose body calls a
  wall-clock or global-RNG sink (directly or transitively through
  other project functions) is tainted, with the chain retained so rule
  messages can show the full laundering path
  (``elapsed_s() -> _read_clock() -> time.time()``);
* the declared **layer order** of the architecture;
* a **project-facts hash** over the *cross-file-visible* projection of
  the facts (signatures, taint chains, cycles, frozen classes, layers
  — not line numbers).  The incremental cache keys per-file findings
  by ``(file content hash, facts hash)``, so editing one file only
  invalidates other files' results when something another file can
  actually observe changed.

Facts extraction is deliberately conservative: only call targets that
resolve through explicit imports, local definitions or ``self.`` are
recorded.  Dynamic dispatch (``obj.method()`` on an arbitrary object,
callables passed as values) is out of scope — the graph under-reports
rather than guessing.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import _has_frozen_decorator, _relative_parts
from repro.lint.sinks import LEGACY_NP_RANDOM, WALL_CLOCK_CALLS

#: Bump when the facts schema or any graph-consuming rule changes
#: behaviour: it flows into the facts hash, so a bump invalidates every
#: cached finding at once.  v2: per-module ``classes`` facts (ARC004).
GRAPH_SCHEMA_VERSION = "repro-lint-graph-v2"

#: Declared architecture, lowest layer first.  A module may import
#: sideways (same layer) or downward; importing upward is ARC001.
#: ``perf`` (analytical energy/latency models) sits in the foundation
#: layer alongside the simulator kernel it feeds: it is imported by
#: ``core``, ``cluster`` and ``policies`` alike.
LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("foundation", ("sim", "llm", "core", "workload", "perf")),
    ("accounting", ("metrics", "policies", "cluster")),
    ("orchestration", ("api", "experiments")),
    ("tooling", ("lint",)),
)

#: package name -> layer index (0 = foundation).
LAYER_INDEX: Dict[str, int] = {
    package: index
    for index, (_, packages) in enumerate(LAYERS)
    for package in packages
}

#: layer index -> human-readable layer name.
LAYER_NAMES: Tuple[str, ...] = tuple(name for name, _ in LAYERS)


# ----------------------------------------------------------------------
# Serializable facts records
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One import statement (or one ``from``-import) in a module."""

    line: int
    col: int
    #: Normalized project module path (``cluster.cluster``) when
    #: ``is_project``; the external dotted module (``numpy``) otherwise.
    #: ``""`` means the bare ``repro`` root package.
    target: str
    is_project: bool
    #: True for module-body imports; function-level imports are deferred
    #: (they still count for layering, but cannot form import-time cycles).
    top_level: bool
    #: ``from``-imported names as ``(name, line, col)``.
    names: Tuple[Tuple[str, int, int], ...]


@dataclasses.dataclass(frozen=True)
class FunctionSig:
    """A function or method defined in a module."""

    #: Module-local qualified name: ``scale`` or ``Engine.step``.
    qualname: str
    #: Positional parameter names in binding order (``self``/``cls``
    #: excluded for methods).
    params: Tuple[str, ...]
    is_method: bool
    line: int


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression, with its best-effort resolved target."""

    line: int
    col: int
    #: Module-local qualname of the enclosing function (``None`` at
    #: module level).
    caller: Optional[str]
    #: ``"project"`` (resolved into the project namespace),
    #: ``"external"`` (resolved to a non-project dotted path) or
    #: ``"unknown"``.
    kind: str
    #: Project module the target lives in (``kind == "project"``); may
    #: need re-splitting against the known module set at assembly time.
    module: str = ""
    #: Member path inside the module: ``scale`` or ``Engine.step``.
    member: str = ""
    #: External dotted call target (``time.time``).
    dotted: str = ""
    #: Non-empty when the call is a determinism sink (``time.time()``).
    sink: str = ""
    #: Display names of positional arguments (``None`` for non-name
    #: expressions, which have unknown units).
    pos_args: Tuple[Optional[str], ...] = ()
    #: True when the call uses ``*args`` — positional binding unknown.
    has_star: bool = False


@dataclasses.dataclass(frozen=True)
class SuffixedAssign:
    """``target_kwh = helper_wh(...)`` — both names carry unit suffixes."""

    line: int
    col: int
    target: str
    func: str


@dataclasses.dataclass(frozen=True)
class ModuleFacts:
    """Everything the project graph needs to know about one file."""

    #: Dotted module path after the ``src``/``repro`` marker
    #: (``sim.clock``); files outside the package keep their full
    #: dotted path (``tests.test_api``).
    module: str
    #: First component of ``module`` (``sim``) — the layering unit.
    package: str
    #: The path exactly as the engine saw it (findings carry it).
    path: str
    is_package: bool
    imports: Tuple[ImportEdge, ...]
    functions: Tuple[FunctionSig, ...]
    calls: Tuple[CallSite, ...]
    suffixed_assigns: Tuple[SuffixedAssign, ...]
    frozen_classes: Tuple[str, ...]
    #: Module-local qualnames of every class defined in the module
    #: (``GPUFleet``, ``Outer.Inner``) — the construction targets ARC004
    #: resolves calls against.
    classes: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def facts_from_dict(data: Dict[str, object]) -> ModuleFacts:
    """Rebuild :class:`ModuleFacts` from its JSON form (cache loads)."""

    def _names(raw: Iterable[Sequence[object]]) -> Tuple[Tuple[str, int, int], ...]:
        return tuple((str(n), int(l), int(c)) for n, l, c in raw)

    return ModuleFacts(
        module=str(data["module"]),
        package=str(data["package"]),
        path=str(data["path"]),
        is_package=bool(data["is_package"]),
        imports=tuple(
            ImportEdge(
                line=int(e["line"]),
                col=int(e["col"]),
                target=str(e["target"]),
                is_project=bool(e["is_project"]),
                top_level=bool(e["top_level"]),
                names=_names(e["names"]),
            )
            for e in data["imports"]  # type: ignore[union-attr,index]
        ),
        functions=tuple(
            FunctionSig(
                qualname=str(f["qualname"]),
                params=tuple(str(p) for p in f["params"]),
                is_method=bool(f["is_method"]),
                line=int(f["line"]),
            )
            for f in data["functions"]  # type: ignore[union-attr,index]
        ),
        calls=tuple(
            CallSite(
                line=int(c["line"]),
                col=int(c["col"]),
                caller=None if c["caller"] is None else str(c["caller"]),
                kind=str(c["kind"]),
                module=str(c["module"]),
                member=str(c["member"]),
                dotted=str(c["dotted"]),
                sink=str(c["sink"]),
                pos_args=tuple(
                    None if a is None else str(a) for a in c["pos_args"]
                ),
                has_star=bool(c["has_star"]),
            )
            for c in data["calls"]  # type: ignore[union-attr,index]
        ),
        suffixed_assigns=tuple(
            SuffixedAssign(
                line=int(s["line"]),
                col=int(s["col"]),
                target=str(s["target"]),
                func=str(s["func"]),
            )
            for s in data["suffixed_assigns"]  # type: ignore[union-attr,index]
        ),
        frozen_classes=tuple(str(n) for n in data["frozen_classes"]),
        classes=tuple(str(n) for n in data.get("classes", ())),
    )


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
def module_name_for(path: str) -> Tuple[str, str, bool]:
    """``(module, package, is_package)`` for a file path.

    ``src/repro/sim/clock.py`` -> ``("sim.clock", "sim", False)``;
    ``src/repro/api/__init__.py`` -> ``("api", "api", True)``;
    ``tests/test_api.py`` -> ``("tests.test_api", "tests", False)``.
    Top-level modules of the package (``__main__.py``,
    ``quick_comparison.py``) get a single-component name and an empty
    package: they orchestrate across layers and are exempt from ARC.
    """
    parts = list(_relative_parts(path))
    if not parts:
        return "", "", False
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    is_package = leaf == "__init__"
    components = parts[:-1] if is_package else parts[:-1] + [leaf]
    if not components:
        return "", "", is_package
    module = ".".join(components)
    package = components[0] if len(components) > 1 or is_package else ""
    return module, package, is_package


def layer_of(package: str) -> Optional[int]:
    """Layer index of a package, ``None`` when the package is unlayered
    (tests, benchmarks, examples, top-level orchestrators)."""
    return LAYER_INDEX.get(package)


# ----------------------------------------------------------------------
# Sink classification (shared with the DET family)
# ----------------------------------------------------------------------
def sink_label(dotted: str, seeded: bool) -> str:
    """Non-empty display label when a resolved external call is a
    determinism sink (wall clock or process-global RNG).

    Mirrors DET001-003: seeded ``random.Random(seed)`` instances are
    fine; the module-level ``random.*`` functions, an unseeded
    ``Random()`` and numpy's legacy global-state functions are sinks.
    """
    if dotted in WALL_CLOCK_CALLS:
        return f"{dotted}()"
    if dotted == "random.Random":
        return "" if seeded else "random.Random()"
    if dotted.startswith("random.") or dotted == "random":
        return f"{dotted}()"
    if (
        dotted.startswith("numpy.random.")
        and dotted.rsplit(".", 1)[1] in LEGACY_NP_RANDOM
    ):
        return f"{dotted}()"
    return ""


# ----------------------------------------------------------------------
# Facts extraction
# ----------------------------------------------------------------------
def _normalize_project_target(dotted: str) -> Optional[str]:
    """``repro.sim.clock`` -> ``sim.clock``; non-project paths -> None."""
    if dotted == "repro":
        return ""
    if dotted.startswith("repro."):
        return dotted[len("repro.") :]
    return None


class _Env:
    """Name bindings visible in a module (imports flattened file-wide).

    Function-local imports are merged into the module environment —
    the same approximation PR 6's alias collector made.  A name maps to
    either a module (``("module", path, is_project)``) or an imported
    member (``("member", module_path, name, is_project)``).
    """

    def __init__(self) -> None:
        self.modules: Dict[str, Tuple[str, bool]] = {}
        self.members: Dict[str, Tuple[str, str, bool]] = {}

    def bind_module(self, local: str, path: str, is_project: bool) -> None:
        self.modules[local] = (path, is_project)

    def bind_member(
        self, local: str, module: str, name: str, is_project: bool
    ) -> None:
        self.members[local] = (module, name, is_project)


def _resolve_relative(package_path: str, level: int, module: Optional[str]) -> str:
    """Resolve ``from ..x import y`` against the importer's package."""
    base = package_path.split(".") if package_path else []
    # level=1 is the current package; each extra level pops one component.
    for _ in range(level - 1):
        if base:
            base.pop()
    if module:
        base.extend(module.split("."))
    return ".".join(base)


def extract_module_facts(path: str, tree: ast.AST) -> ModuleFacts:
    """Extract the serializable project facts from one parsed file."""
    module, package, is_package = module_name_for(path)
    package_path = module if is_package else module.rpartition(".")[0]

    env = _Env()
    imports: List[ImportEdge] = []
    functions: List[FunctionSig] = []
    frozen: List[str] = []
    classes: List[str] = []

    # Pass A: imports, function/method signatures, frozen classes.
    # ``depth`` tracks nesting inside function/class bodies so import
    # edges know whether they execute at module import time.
    def collect(node: ast.AST, class_stack: Tuple[str, ...], top: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                for alias in child.names:
                    project = _normalize_project_target(alias.name)
                    is_project = project is not None
                    target = project if project is not None else alias.name
                    if alias.asname:
                        env.bind_module(alias.asname, target, is_project)
                    else:
                        root = alias.name.split(".")[0]
                        root_project = _normalize_project_target(root)
                        env.bind_module(
                            root,
                            root_project if root_project is not None else root,
                            root_project is not None,
                        )
                    imports.append(
                        ImportEdge(
                            line=child.lineno,
                            col=child.col_offset + 1,
                            target=target,
                            is_project=is_project,
                            top_level=top,
                            names=(),
                        )
                    )
            elif isinstance(child, ast.ImportFrom):
                if child.level:
                    # Relative imports only exist inside the project
                    # (or a fixture mini-package): treat them as project
                    # edges resolved against the importer's package.
                    target: Optional[str] = _resolve_relative(
                        package_path, child.level, child.module
                    )
                    project_edge = True
                else:
                    target = child.module or ""
                    project = _normalize_project_target(target)
                    project_edge = project is not None
                    if project_edge:
                        target = project
                names = []
                for alias in child.names:
                    local = alias.asname or alias.name
                    if alias.name == "*":
                        continue
                    names.append((alias.name, child.lineno, child.col_offset + 1))
                    if project_edge and target == "":
                        # ``from repro import api`` binds a subpackage.
                        env.bind_module(local, alias.name, True)
                    else:
                        env.bind_member(
                            local, target or "", alias.name, project_edge
                        )
                imports.append(
                    ImportEdge(
                        line=child.lineno,
                        col=child.col_offset + 1,
                        target=target or "",
                        is_project=project_edge,
                        top_level=top,
                        names=tuple(names),
                    )
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join((*class_stack, child.name))
                args = child.args
                params = [a.arg for a in (*args.posonlyargs, *args.args)]
                is_method = bool(class_stack)
                if is_method and params and params[0] in ("self", "cls"):
                    params = params[1:]
                functions.append(
                    FunctionSig(
                        qualname=qual,
                        params=tuple(params),
                        is_method=is_method,
                        line=child.lineno,
                    )
                )
                collect(child, class_stack, top=False)
            elif isinstance(child, ast.ClassDef):
                if _has_frozen_decorator(child):
                    frozen.append(child.name)
                classes.append(".".join((*class_stack, child.name)))
                collect(child, (*class_stack, child.name), top=False)
            else:
                collect(
                    child,
                    class_stack,
                    top=top and _transparent(child) and not _type_checking_if(child),
                )

    collect(tree, (), top=True)

    local_functions = {f.qualname for f in functions}
    local_bare = {
        f.qualname for f in functions if "." not in f.qualname
    }

    calls: List[CallSite] = []
    assigns: List[SuffixedAssign] = []

    def resolve_call(
        func: ast.AST, class_stack: Tuple[str, ...]
    ) -> Optional[CallSite]:
        """Best-effort resolution of a call target (location added later)."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_bare:
                return CallSite(0, 0, None, "project", module=module, member=name)
            if name in env.members:
                target_module, member, is_project = env.members[name]
                if is_project:
                    return CallSite(
                        0, 0, None, "project", module=target_module, member=member
                    )
                dotted = f"{target_module}.{member}" if target_module else member
                return CallSite(0, 0, None, "external", dotted=dotted)
            return None
        if isinstance(func, ast.Attribute):
            chain: List[str] = []
            node: ast.AST = func
            while isinstance(node, ast.Attribute):
                chain.append(node.attr)
                node = node.value
            chain.reverse()
            if isinstance(node, ast.Name):
                base = node.id
                if base == "self" and len(chain) == 1 and class_stack:
                    method = ".".join((*class_stack, chain[0]))
                    if method in local_functions:
                        return CallSite(
                            0, 0, None, "project", module=module, member=method
                        )
                    return None
                if base in env.modules:
                    target_module, is_project = env.modules[base]
                    member = ".".join(chain)
                    if is_project:
                        return CallSite(
                            0,
                            0,
                            None,
                            "project",
                            module=target_module,
                            member=member,
                        )
                    dotted = (
                        f"{target_module}.{member}" if target_module else member
                    )
                    return CallSite(0, 0, None, "external", dotted=dotted)
                if base in env.members:
                    target_module, name, is_project = env.members[base]
                    member = ".".join((name, *chain))
                    if is_project:
                        return CallSite(
                            0,
                            0,
                            None,
                            "project",
                            module=target_module,
                            member=member,
                        )
                    dotted = (
                        f"{target_module}.{member}" if target_module else member
                    )
                    return CallSite(0, 0, None, "external", dotted=dotted)
            return None
        return None

    def display_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    # Pass B: call sites and suffixed call-assignments, attributed to
    # their enclosing function.
    def walk_calls(
        node: ast.AST, caller: Optional[str], class_stack: Tuple[str, ...]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join((*class_stack, child.name))
                walk_calls(child, qual, class_stack)
                continue
            if isinstance(child, ast.ClassDef):
                walk_calls(child, caller, (*class_stack, child.name))
                continue
            if isinstance(child, ast.Call):
                resolved = resolve_call(child.func, class_stack)
                seeded = bool(child.args or child.keywords)
                sink = ""
                if resolved is not None and resolved.kind == "external":
                    sink = sink_label(resolved.dotted, seeded)
                if resolved is not None:
                    calls.append(
                        dataclasses.replace(
                            resolved,
                            line=child.lineno,
                            col=child.col_offset + 1,
                            caller=caller,
                            sink=sink,
                            pos_args=tuple(
                                display_name(a)
                                for a in child.args
                                if not isinstance(a, ast.Starred)
                            ),
                            has_star=any(
                                isinstance(a, ast.Starred) for a in child.args
                            ),
                        )
                    )
            if isinstance(child, (ast.Assign, ast.AnnAssign)):
                value = child.value
                if isinstance(value, ast.Call):
                    func_name = display_name(value.func)
                    if func_name is not None:
                        targets = (
                            child.targets
                            if isinstance(child, ast.Assign)
                            else [child.target]
                        )
                        for target in targets:
                            target_name = display_name(target)
                            if target_name is not None:
                                assigns.append(
                                    SuffixedAssign(
                                        line=child.lineno,
                                        col=child.col_offset + 1,
                                        target=target_name,
                                        func=func_name,
                                    )
                                )
            walk_calls(child, caller, class_stack)

    walk_calls(tree, None, ())

    return ModuleFacts(
        module=module,
        package=package,
        path=path,
        is_package=is_package,
        imports=tuple(imports),
        functions=tuple(functions),
        calls=tuple(calls),
        suffixed_assigns=tuple(assigns),
        frozen_classes=tuple(sorted(frozen)),
        classes=tuple(sorted(classes)),
    )


def _transparent(node: ast.AST) -> bool:
    """Child statements of these nodes still run at module import time."""
    return isinstance(node, (ast.If, ast.Try, ast.With))


def _type_checking_if(node: ast.AST) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` — imports in
    the body are type-only and never execute, so they are deferred for
    cycle purposes (they still count as layering edges)."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


# ----------------------------------------------------------------------
# Graph assembly
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class TaintInfo:
    """How a function reaches a determinism sink."""

    #: Display label of the sink (``time.time()``).
    sink: str
    #: Global qualname of the next function toward the sink (``None``
    #: when this function calls the sink directly).
    via: Optional[str]


class ProjectGraph:
    """Assembled whole-program view over a set of :class:`ModuleFacts`."""

    def __init__(self, facts: Sequence[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        self.by_path: Dict[str, ModuleFacts] = {}
        for record in facts:
            self.by_path[record.path] = record
            # First definition wins on (pathological) module-name clashes.
            self.modules.setdefault(record.module, record)
        #: per-module lookup: member path -> module-local qualname.
        #: ``scale`` and ``Engine.step`` are both valid member keys.
        self._names: Dict[str, Dict[str, str]] = {}
        for name, record in self.modules.items():
            self._names[name] = {
                sig.qualname: sig.qualname for sig in record.functions
            }
        self._signatures: Dict[str, FunctionSig] = {}
        for name, record in self.modules.items():
            for sig in record.functions:
                self._signatures[f"{name}:{sig.qualname}"] = sig
        #: per-module class-qualname sets — ARC004's construction targets.
        self._classes: Dict[str, Set[str]] = {
            name: set(record.classes) for name, record in self.modules.items()
        }
        self.tainted: Dict[str, TaintInfo] = {}
        self.cycles: Dict[str, Tuple[str, ...]] = {}
        self._propagate_taint()
        self._find_cycles()
        self.facts_hash = self._hash_cross_file_facts()

    # -- resolution ----------------------------------------------------
    def resolve(self, facts: ModuleFacts, call: CallSite) -> Optional[str]:
        """Global qualname (``module:member``) of a project call target."""
        if call.kind != "project":
            return None
        candidates: List[Tuple[str, str]] = [(call.module, call.member)]
        parts = call.member.split(".")
        for cut in range(1, len(parts)):
            prefix = ".".join(parts[:cut])
            module = f"{call.module}.{prefix}" if call.module else prefix
            candidates.append((module, ".".join(parts[cut:])))
        for module, member in candidates:
            table = self._names.get(module)
            if table is None or not member:
                continue
            qual = table.get(member)
            if qual is not None:
                return f"{module}:{qual}"
        return None

    def resolve_class(self, call: CallSite) -> Optional[Tuple[str, str]]:
        """``(module, class_qualname)`` when a project call constructs a
        class defined in the project, ``None`` otherwise.

        Uses the same member-path re-splitting as :meth:`resolve`:
        ``cluster.accounting`` + ``GPUFleet`` resolves directly, while
        ``cluster`` + ``accounting.GPUFleet`` (a module-attribute call)
        re-splits against the known module set.
        """
        if call.kind != "project":
            return None
        candidates: List[Tuple[str, str]] = [(call.module, call.member)]
        parts = call.member.split(".")
        for cut in range(1, len(parts)):
            prefix = ".".join(parts[:cut])
            module = f"{call.module}.{prefix}" if call.module else prefix
            candidates.append((module, ".".join(parts[cut:])))
        for module, member in candidates:
            table = self._classes.get(module)
            if table is None or not member:
                continue
            if member in table:
                return module, member
        return None

    def signature(self, qualname: str) -> Optional[FunctionSig]:
        return self._signatures.get(qualname)

    def layer_of_module(self, module: str) -> Optional[int]:
        return layer_of(module.split(".")[0]) if module else None

    # -- taint ---------------------------------------------------------
    def _propagate_taint(self) -> None:
        edges: List[Tuple[str, str]] = []
        for record in self.modules.values():
            for call in record.calls:
                if call.caller is None:
                    continue
                caller = f"{record.module}:{call.caller}"
                if call.sink:
                    self.tainted.setdefault(
                        caller, TaintInfo(sink=call.sink, via=None)
                    )
                    continue
                callee = self.resolve(record, call)
                if callee is not None:
                    edges.append((caller, callee))
        reverse: Dict[str, List[str]] = {}
        for caller, callee in edges:
            reverse.setdefault(callee, []).append(caller)
        queue = sorted(self.tainted)
        while queue:
            current = queue.pop(0)
            for caller in sorted(reverse.get(current, ())):
                if caller not in self.tainted:
                    self.tainted[caller] = TaintInfo(
                        sink=self.tainted[current].sink, via=current
                    )
                    queue.append(caller)

    def taint_chain(self, qualname: str, limit: int = 12) -> Tuple[str, ...]:
        """Display chain from ``qualname`` down to its sink label."""
        chain: List[str] = []
        current: Optional[str] = qualname
        seen: Set[str] = set()
        while current is not None and current not in seen and len(chain) < limit:
            seen.add(current)
            chain.append(f"{current.replace(':', '.')}()")
            info = self.tainted.get(current)
            if info is None:
                break
            if info.via is None:
                chain.append(info.sink)
                return tuple(chain)
            current = info.via
        chain.append("...")
        return tuple(chain)

    # -- cycles --------------------------------------------------------
    def _find_cycles(self) -> None:
        adjacency: Dict[str, List[str]] = {}
        for name, record in self.modules.items():
            targets: List[str] = []
            for edge in record.imports:
                if (
                    edge.is_project
                    and edge.top_level
                    and edge.target in self.modules
                    and edge.target != name
                ):
                    targets.append(edge.target)
            adjacency[name] = sorted(set(targets))
        for component in _strongly_connected(adjacency):
            if len(component) < 2:
                continue
            members = tuple(sorted(component))
            for member in members:
                self.cycles[member] = members

    # -- hashing -------------------------------------------------------
    def _hash_cross_file_facts(self) -> str:
        """Hash of everything one file's findings can observe about the
        *other* files (line numbers excluded — they are per-file)."""
        projection = {
            "version": GRAPH_SCHEMA_VERSION,
            "layers": LAYERS,
            "frozen": sorted(
                {
                    name
                    for record in self.modules.values()
                    for name in record.frozen_classes
                }
            ),
            "signatures": {
                qual: [sig.params, sig.is_method]
                for qual, sig in sorted(self._signatures.items())
            },
            "tainted": {
                qual: list(self.taint_chain(qual))
                for qual in sorted(self.tainted)
            },
            "cycles": {
                module: list(members)
                for module, members in sorted(self.cycles.items())
            },
            "classes": {
                module: sorted(names)
                for module, names in sorted(self._classes.items())
                if names
            },
            "modules": sorted(self.modules),
        }
        payload = json.dumps(projection, sort_keys=True, default=list)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _strongly_connected(adjacency: Dict[str, List[str]]) -> List[Set[str]]:
    """Iterative Tarjan SCC over a small module graph."""
    index_counter = 0
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Set[str]] = []

    for root in sorted(adjacency):
        if root in indices:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if node not in indices:
                indices[node] = lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in indices:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def build_project_graph(facts: Sequence[ModuleFacts]) -> ProjectGraph:
    """Assemble the whole-program graph for one lint run."""
    return ProjectGraph(facts)
