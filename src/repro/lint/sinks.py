"""Determinism-sink vocabulary, shared by DET rules and the graph.

A *sink* is a call that makes results depend on process state outside
the experiment seed: wall-clock reads and process-global RNG.  The
per-file DET001-004 rules flag direct sink calls; the project graph
(:mod:`repro.lint.graph`) uses the same vocabulary to propagate taint
through wrappers for DET005.  This module is a dependency leaf so both
can import it without a cycle.
"""

from __future__ import annotations

#: Wall-clock reads: module-dotted call targets that make results depend
#: on when the process ran.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Legacy numpy functions that read/write the process-global RNG state.
LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "lognormal",
        "poisson",
        "exponential",
        "get_state",
        "set_state",
    }
)

#: Constructors that create RNGs outside the seed-derivation scheme.
#: Deliberately *not* taint sinks: a seeded ``default_rng(seed)`` is
#: deterministic — DET004 polices construction site, not reproducibility.
GENERATOR_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
    }
)
