"""Incremental lint cache: skip re-analysis of unchanged files.

The cache is a single JSON document keyed by absolute file path.  Each
entry stores two independently reusable layers:

* **facts** — the serialized :class:`~repro.lint.graph.ModuleFacts`
  (or the parse-error finding for an unparsable file), keyed by the
  SHA-256 of the file's text.  Reusing facts means the file is never
  re-parsed; the project graph is reassembled from cached facts in
  milliseconds.
* **results** — the file's raw findings (before ``--select`` /
  ``--ignore`` filtering, after suppressions) plus its suppressed
  count, keyed by ``(content hash, project-facts hash)``.  The facts
  hash covers only the *cross-file-visible* projection of the project
  (signatures, taint chains, cycles, frozen classes, layer config), so
  editing one file re-lints other files only when something they could
  actually observe changed.

Invalidation is automatic: a content change misses both layers for
that file; a cross-file-facts change misses the results layer for
every file but reuses all facts.  A version bump
(:data:`CACHE_FORMAT_VERSION`, or :data:`~repro.lint.graph.GRAPH_SCHEMA_VERSION`
via the facts hash) discards the whole cache.  A corrupt or
foreign-format cache file is silently ignored and rebuilt — the cache
is a pure accelerator and never changes findings.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

#: Bump on any change to the on-disk cache layout.  v2: ``ModuleFacts``
#: gained the ``classes`` field (ARC004) — cached v1 facts would
#: deserialize with it empty and silently under-report constructions.
CACHE_FORMAT_VERSION = "repro-lint-cache-v2"


def content_hash(source: str) -> str:
    """SHA-256 of a file's text (the per-file cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class LintCache:
    """One cache file, loaded eagerly and written back atomically."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._files: Dict[str, Dict[str, object]] = {}
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            if (
                isinstance(data, dict)
                and data.get("version") == CACHE_FORMAT_VERSION
                and isinstance(data.get("files"), dict)
            ):
                self._files = data["files"]
        except (OSError, ValueError):
            pass

    # -- facts layer ---------------------------------------------------
    def facts_for(
        self, key: str, digest: str
    ) -> Optional[Tuple[Optional[Dict[str, object]], Optional[Dict[str, object]]]]:
        """Cached ``(facts, parse_error)`` for a file, or ``None``."""
        entry = self._files.get(key)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            return None
        facts = entry.get("facts")
        error = entry.get("parse_error")
        return (
            facts if isinstance(facts, dict) else None,
            error if isinstance(error, dict) else None,
        )

    def store_facts(
        self,
        key: str,
        digest: str,
        facts: Optional[Dict[str, object]],
        parse_error: Optional[Dict[str, object]],
    ) -> None:
        self._files[key] = {
            "hash": digest,
            "facts": facts,
            "parse_error": parse_error,
            "results": {},
        }
        self._dirty = True

    # -- results layer -------------------------------------------------
    def results_for(
        self, key: str, digest: str, facts_hash: str
    ) -> Optional[Dict[str, object]]:
        """Cached ``{"findings": [...], "suppressed": n}`` or ``None``."""
        entry = self._files.get(key)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            self.misses += 1
            return None
        results = entry.get("results")
        cached = results.get(facts_hash) if isinstance(results, dict) else None
        if isinstance(cached, dict):
            self.hits += 1
            return cached
        self.misses += 1
        return None

    def store_results(
        self,
        key: str,
        digest: str,
        facts_hash: str,
        findings: List[Dict[str, object]],
        suppressed: int,
    ) -> None:
        entry = self._files.get(key)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            entry = {"hash": digest, "facts": None, "parse_error": None}
            self._files[key] = entry
        # One results entry per file: an outdated facts hash is dead
        # weight (the project changed under it), so replace rather than
        # accumulate.
        entry["results"] = {
            facts_hash: {"findings": findings, "suppressed": suppressed}
        }
        self._dirty = True

    # -- persistence ---------------------------------------------------
    def save(self) -> None:
        """Atomically rewrite the cache file (best-effort: an unwritable
        cache directory degrades to an uncached run, never an error)."""
        if not self._dirty:
            return
        payload = {"version": CACHE_FORMAT_VERSION, "files": self._files}
        directory = os.path.dirname(os.path.abspath(self.path))
        temp_path = None
        try:
            fd, temp_path = tempfile.mkstemp(
                prefix=".repro-lint-cache-", dir=directory
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_path, self.path)
            self._dirty = False
        except OSError:
            if temp_path is not None:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
