"""Rule registry: one module per rule family.

Adding a family = adding a module here that exposes ``RULES`` (a tuple
of :class:`repro.lint.engine.Rule` instances) and appending it to the
import list below.  ``ALL_RULES`` is what the engine runs by default.

Per-file families (determinism, units, concurrency, immutability) see
one AST at a time; the whole-program families (architecture, flow-*)
additionally consume the project graph built by
:mod:`repro.lint.graph` before any rule runs.
"""

from repro.lint.rules.architecture import RULES as ARCHITECTURE_RULES
from repro.lint.rules.concurrency import RULES as CONCURRENCY_RULES
from repro.lint.rules.determinism import RULES as DETERMINISM_RULES
from repro.lint.rules.flow import RULES as FLOW_RULES
from repro.lint.rules.immutability import RULES as IMMUTABILITY_RULES
from repro.lint.rules.units import RULES as UNIT_RULES

ALL_RULES = (
    *DETERMINISM_RULES,
    *UNIT_RULES,
    *CONCURRENCY_RULES,
    *IMMUTABILITY_RULES,
    *ARCHITECTURE_RULES,
    *FLOW_RULES,
)

__all__ = ["ALL_RULES"]
