"""Rule registry: one module per rule family.

Adding a family = adding a module here that exposes ``RULES`` (a tuple
of :class:`repro.lint.engine.Rule` instances) and appending it to the
import list below.  ``ALL_RULES`` is what the engine runs by default.
"""

from repro.lint.rules.concurrency import RULES as CONCURRENCY_RULES
from repro.lint.rules.determinism import RULES as DETERMINISM_RULES
from repro.lint.rules.immutability import RULES as IMMUTABILITY_RULES
from repro.lint.rules.units import RULES as UNIT_RULES

ALL_RULES = (
    *DETERMINISM_RULES,
    *UNIT_RULES,
    *CONCURRENCY_RULES,
    *IMMUTABILITY_RULES,
)

__all__ = ["ALL_RULES"]
