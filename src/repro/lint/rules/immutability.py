"""Immutability rules (``IMM``): frozen dataclasses stay frozen.

``Scenario`` and ``TraceSpec`` are the durability contract of resumable
sweeps: their ``key`` is what results files record, so mutating one
after construction silently re-keys work that already ran.  They are
``@dataclass(frozen=True)`` precisely so that cannot happen — but
``object.__setattr__`` (and attribute writes the type checker never
sees) can still punch through.  These rules flag the punch-throughs:

* ``IMM001`` — ``object.__setattr__(...)`` anywhere outside a
  ``__post_init__`` (the one sanctioned use: frozen dataclasses
  initialising derived fields).
* ``IMM002`` — plain attribute assignment on a value that is statically
  known to be a frozen dataclass: a parameter annotated with a frozen
  class, a local constructed from one, or ``self`` inside a frozen
  class's methods.

The frozen-class name set is collected by the engine's project pre-pass
over every linted file, unioned with the domain anchors below so a
single-file run still knows the core API types.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.engine import FileContext, Finding, Rule

#: Frozen types the rules must know even when their defining module is
#: not part of the linted file set (e.g. linting one plugin file).
DOMAIN_FROZEN = frozenset({"Scenario", "TraceSpec", "Event"})


def _annotation_frozen_name(node: Optional[ast.AST], frozen: Set[str]) -> Optional[str]:
    """The frozen class an annotation names, if any.

    Handles ``Scenario``, ``"Scenario"`` (string annotation),
    ``module.Scenario`` and ``Optional[Scenario]``-style subscripts.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name) and node.id in frozen:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in frozen:
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text if text in frozen else None
    if isinstance(node, ast.Subscript):
        for inner in ast.walk(node.slice):
            found = _annotation_frozen_name(inner, frozen)
            if found:
                return found
    return None


def _constructed_frozen_name(node: ast.AST, frozen: Set[str]) -> Optional[str]:
    """The frozen class a value expression constructs, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in frozen:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in frozen:
        return func.attr
    return None


class _FrozenMutationVisitor(ast.NodeVisitor):
    """Tracks name → frozen-class bindings per scope and flags writes."""

    def __init__(self, ctx: FileContext, frozen: Set[str]) -> None:
        self.ctx = ctx
        self.frozen = frozen
        self.findings: List[Finding] = []
        self.scopes: List[Dict[str, str]] = [{}]
        #: (class name, is_frozen) for the innermost enclosing class.
        self.class_stack: List[tuple] = []
        self.func_stack: List[str] = []

    # -- scope management -------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        from repro.lint.engine import _has_frozen_decorator

        self.class_stack.append((node.name, _has_frozen_decorator(node)))
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        bindings: Dict[str, str] = {}
        args = node.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        for arg in all_args:
            name = _annotation_frozen_name(arg.annotation, self.frozen)
            if name:
                bindings[arg.arg] = name
        # ``self`` in a frozen class's methods: attribute writes raise
        # FrozenInstanceError at runtime; catch them statically.
        if self.class_stack and self.class_stack[-1][1] and all_args:
            bindings.setdefault(all_args[0].arg, self.class_stack[-1][0])
        self.scopes.append(bindings)
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- bindings ---------------------------------------------------------
    def _bind_from_value(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            name = _constructed_frozen_name(value, self.frozen)
            if name:
                self.scopes[-1][target.id] = name
            else:
                # Rebinding to anything else clears the tracked type.
                self.scopes[-1].pop(target.id, None)

    def _frozen_type_of(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- checks -----------------------------------------------------------
    def _check_attribute_write(self, target: ast.AST, node: ast.AST) -> None:
        if not (
            isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name)
        ):
            return
        class_name = self._frozen_type_of(target.value.id)
        if class_name is None:
            return
        self.findings.append(
            self.ctx.finding(
                node,
                "IMM002",
                f"attribute assignment `{target.value.id}.{target.attr} = "
                f"...` mutates frozen dataclass {class_name}; derive a new "
                "instance (with_/dataclasses.replace) instead",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_attribute_write(target, node)
            self._bind_from_value(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_attribute_write(node.target, node)
        if node.value is not None:
            self._bind_from_value(node.target, node.value)
        elif isinstance(node.target, ast.Name):
            name = _annotation_frozen_name(node.annotation, self.frozen)
            if name:
                self.scopes[-1][node.target.id] = name
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_attribute_write(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_attribute_write(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and (not self.func_stack or self.func_stack[-1] != "__post_init__")
        ):
            self.findings.append(
                self.ctx.finding(
                    node,
                    "IMM001",
                    "object.__setattr__ outside __post_init__ punches "
                    "through frozen dataclasses; derive a new instance "
                    "instead",
                )
            )
        self.generic_visit(node)


class ImmutabilityRule(Rule):
    family = "immutability"
    invariant = (
        "frozen dataclasses (Scenario, TraceSpec, ...) are never "
        "mutated after construction — their keys are the durability "
        "contract of resumable sweeps"
    )
    catalog = {
        "IMM001": (
            "object.__setattr__ outside __post_init__ bypasses frozen-"
            "dataclass protection"
        ),
        "IMM002": (
            "attribute assignment on a value statically known to be a "
            "frozen dataclass (Scenario/TraceSpec/...)"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "lint" in ctx.dir_parts:
            return
        frozen = set(DOMAIN_FROZEN) | set(ctx.project.frozen_classes)
        visitor = _FrozenMutationVisitor(ctx, frozen)
        visitor.visit(ctx.tree)
        yield from visitor.findings


RULES = (ImmutabilityRule(),)
