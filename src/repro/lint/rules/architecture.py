"""Architecture rules (``ARC``): the layer order is law.

The package is layered so that accounting can trust the kernel and
orchestration can trust both::

    foundation     sim, llm, core, workload, perf
    accounting     metrics, policies, cluster
    orchestration  api, experiments
    tooling        lint

A module may import **downward** (toward the foundation) or **sideways**
(within its own layer); importing upward couples the kernel to its
consumers, and an import cycle makes module initialisation order — and
therefore behaviour — depend on which entry point loaded first.  Both
are exactly the coupling the ROADMAP's cross-host/heterogeneous-fleet
tentpoles would otherwise accrete silently.

* ``ARC001`` — upward import: a module imports a package in a higher
  layer (deferred function-level imports count too; layering is about
  dependency direction, not import time).
* ``ARC002`` — import cycle: the module participates in a top-level
  import cycle (strongly connected component of the import graph).
  Function-level imports are excluded here — deferring an import is the
  sanctioned way to break a cycle.
* ``ARC003`` — privacy reach: a module imports a ``_private`` name or
  ``_private`` module from a *different* top-level package.  Underscore
  names are a package's internal surface; reaching across packages for
  one bypasses the public API that the layer contract is about.
* ``ARC004`` — upward construction: a module *instantiates* a concrete
  class defined in a higher layer.  A deferred function-level import
  keeps ARC001 honest about the dependency, but actually calling the
  class constructor is worse than referencing it: the lower layer now
  hard-codes which implementation exists.  Lower layers must *receive*
  such objects (dependency injection at the composition roots), never
  build them.  Resolved through the whole-program call graph, so
  aliased and deferred imports are seen too.

Only modules inside the layered packages are checked: tests,
benchmarks, examples and the top-level orchestrators (``__main__``,
``quick_comparison``) may import anything.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule
from repro.lint.graph import (
    LAYER_NAMES,
    CallSite,
    ImportEdge,
    ProjectGraph,
    layer_of,
)


def _is_private_name(name: str) -> bool:
    leaf = name.rsplit(".", 1)[-1]
    return leaf.startswith("_") and not leaf.startswith("__")


def _private_module_component(target: str) -> str:
    """First ``_private`` component of a dotted module path, or ``""``."""
    for component in target.split("."):
        if _is_private_name(component):
            return component
    return ""


class ArchitectureRule(Rule):
    family = "architecture"
    invariant = (
        "imports point downward or sideways in the declared layer order "
        "(sim/llm/core/workload/perf -> metrics/policies/cluster -> "
        "api/experiments -> lint), never form cycles, never reach "
        "another package's _private names, and never construct classes "
        "from a higher layer"
    )
    catalog = {
        "ARC001": (
            "upward import: a module imports a package from a higher "
            "layer of the declared architecture"
        ),
        "ARC002": (
            "top-level import cycle: module initialisation order (and "
            "behaviour) depends on which entry point loaded first"
        ),
        "ARC003": (
            "cross-package reach into a _private name or _private "
            "module — underscore names are internal to their package"
        ),
        "ARC004": (
            "upward construction: a module constructs a concrete class "
            "from a higher layer (even via a deferred import) — lower "
            "layers receive such objects, they never build them"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        facts = ctx.module_facts
        graph = ctx.project.graph
        if facts is None or graph is None:
            return
        layer = layer_of(facts.package)
        if layer is None:
            return  # unlayered: tests, benchmarks, orchestrators

        cycle = graph.cycles.get(facts.module)
        reported_cycle_edges: Set[Tuple[int, int]] = set()
        for edge in facts.imports:
            if not edge.is_project or edge.target == "":
                continue
            target_package = edge.target.split(".")[0]
            yield from self._check_upward(
                ctx, facts.package, layer, target_package, edge
            )
            if (
                cycle is not None
                and edge.top_level
                and edge.target in cycle
                and edge.target != facts.module
                and (edge.line, edge.col) not in reported_cycle_edges
            ):
                reported_cycle_edges.add((edge.line, edge.col))
                yield Finding(
                    path=ctx.path,
                    line=edge.line,
                    col=edge.col,
                    rule="ARC002",
                    message=(
                        f"import of '{edge.target}' closes a top-level "
                        "import cycle: "
                        + " <-> ".join(cycle)
                        + " — defer one import into the function that "
                        "needs it"
                    ),
                )
            yield from self._check_privacy(ctx, facts.package, target_package, edge)
        for call in facts.calls:
            yield from self._check_construction(ctx, facts.package, layer, graph, call)

    def _check_construction(
        self,
        ctx: FileContext,
        package: str,
        layer: int,
        graph: ProjectGraph,
        call: CallSite,
    ) -> Iterator[Finding]:
        resolved = graph.resolve_class(call)
        if resolved is None:
            return
        target_module, class_name = resolved
        target_layer = layer_of(target_module.split(".")[0])
        if target_layer is None or target_layer <= layer:
            return
        yield Finding(
            path=ctx.path,
            line=call.line,
            col=call.col,
            rule="ARC004",
            message=(
                f"upward construction: '{package}' ({LAYER_NAMES[layer]} "
                f"layer) constructs '{target_module}.{class_name}' "
                f"({LAYER_NAMES[target_layer]} layer); lower layers must "
                "receive such objects through injection at a composition "
                "root, never build them"
            ),
        )

    def _check_upward(
        self,
        ctx: FileContext,
        package: str,
        layer: int,
        target_package: str,
        edge: ImportEdge,
    ) -> Iterator[Finding]:
        target_layer = layer_of(target_package)
        if target_layer is None or target_layer <= layer:
            return
        yield Finding(
            path=ctx.path,
            line=edge.line,
            col=edge.col,
            rule="ARC001",
            message=(
                f"upward import: '{package}' ({LAYER_NAMES[layer]} layer) "
                f"imports '{edge.target}' ({LAYER_NAMES[target_layer]} "
                "layer); imports must point downward or sideways in the "
                "architecture"
            ),
        )

    def _check_privacy(
        self,
        ctx: FileContext,
        package: str,
        target_package: str,
        edge: ImportEdge,
    ) -> Iterator[Finding]:
        if target_package == package:
            return  # intra-package privacy is the package's business
        private_module = _private_module_component(edge.target)
        if private_module:
            yield Finding(
                path=ctx.path,
                line=edge.line,
                col=edge.col,
                rule="ARC003",
                message=(
                    f"import of private module '{edge.target}' from "
                    f"another package ('{package}' -> '{target_package}'): "
                    f"'{private_module}' is internal to its package — "
                    "use (or add) a public API"
                ),
            )
            return
        for name, line, col in edge.names:
            if _is_private_name(name):
                yield Finding(
                    path=ctx.path,
                    line=line,
                    col=col,
                    rule="ARC003",
                    message=(
                        f"import of private name '{name}' from "
                        f"'{edge.target}' in another package "
                        f"('{package}' -> '{target_package}'): underscore "
                        "names are internal — use (or add) a public API"
                    ),
                )


RULES = (ArchitectureRule(),)
