"""Whole-program flow rules: taint and unit flow across call boundaries.

PR 6's per-file rules stop at the function call: ``elapsed_s()`` looks
innocent at its call site even when its body (or its callee's body,
three wrappers down) reads ``time.time()``; a ``_kw`` value passed
positionally into a ``_wh`` parameter is invisible without the callee's
signature.  These rules consume the project graph
(:mod:`repro.lint.graph`) to see through the boundary:

* ``DET005`` — transitive determinism taint.  A call site in layered
  simulation code whose (transitively resolved) target reaches a
  wall-clock or global-RNG sink is flagged, with the full laundering
  path in the message: ``sim.engine.step() -> sim.helpers.elapsed_s()
  -> time.time()``.  Suppressing the sink line silences DET001 but
  does *not* clean the taint — a suppression is a local waiver, not a
  determinism proof.
* ``UNT004`` — interprocedural argument flow: a suffixed name passed
  *positionally* binds to a parameter whose suffix names a different
  unit (keyword arguments are already covered per-file by UNT002).
* ``UNT005`` — return-suffix flow: assignment from a function whose
  name carries a unit suffix to a target with a conflicting suffix
  (``total_kwh = step_energy_wh(...)``).  Conversion helpers named
  ``<a>_to_<b>`` carry the *result* suffix, so
  ``total_kwh = wh_to_kwh(x)`` passes naturally.

DET005 reports only call sites in layered, non-exempt modules (the
same exemption set as DET001-004): test harnesses and benchmarks may
time whatever they like.  The UNT rules skip the linter's own sources,
matching UNT001-003.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.engine import FileContext, Finding, Rule
from repro.lint.rules.determinism import _exempt
from repro.lint.rules.units import _mix_message, suffix_of


class FlowDeterminismRule(Rule):
    family = "flow-determinism"
    invariant = (
        "no function reachable from layered simulation code transitively "
        "calls a wall-clock or global-RNG sink, however many wrappers "
        "deep"
    )
    catalog = {
        "DET005": (
            "call target transitively reaches a wall-clock/global-RNG "
            "sink through the project call graph (taint path shown)"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        facts = ctx.module_facts
        graph = ctx.project.graph
        if facts is None or graph is None:
            return
        if graph.layer_of_module(facts.module) is None or _exempt(ctx):
            return
        for call in facts.calls:
            if call.kind != "project":
                continue
            target = graph.resolve(facts, call)
            if target is None or target not in graph.tainted:
                continue
            chain = " -> ".join(graph.taint_chain(target))
            display = call.member.rsplit(".", 1)[-1]
            yield Finding(
                path=ctx.path,
                line=call.line,
                col=call.col,
                rule="DET005",
                message=(
                    f"call to {display}() transitively reaches a "
                    f"wall-clock/global-RNG sink: {chain}; thread "
                    "simulated time / a seeded rng stream through the "
                    "call instead"
                ),
            )


class FlowUnitsRule(Rule):
    family = "flow-units"
    invariant = (
        "unit suffixes agree across call boundaries: positional "
        "arguments match parameter suffixes and assigned results match "
        "the called function's declared suffix"
    )
    catalog = {
        "UNT004": (
            "suffixed positional argument binds to a parameter with a "
            "conflicting unit suffix in the callee's signature"
        ),
        "UNT005": (
            "assignment target's unit suffix conflicts with the called "
            "function's name suffix"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "lint" in ctx.dir_parts:
            return
        facts = ctx.module_facts
        graph = ctx.project.graph
        if facts is None or graph is None:
            return

        for call in facts.calls:
            if call.kind != "project" or call.has_star or not call.pos_args:
                continue
            target = graph.resolve(facts, call)
            if target is None:
                continue
            sig = graph.signature(target)
            if sig is None:
                continue
            display = call.member.rsplit(".", 1)[-1]
            for index, arg_name in enumerate(call.pos_args):
                if arg_name is None or index >= len(sig.params):
                    continue
                arg_suffix = suffix_of(arg_name)
                param = sig.params[index]
                param_suffix = suffix_of(param)
                if arg_suffix and param_suffix and arg_suffix != param_suffix:
                    yield Finding(
                        path=ctx.path,
                        line=call.line,
                        col=call.col,
                        rule="UNT004",
                        message=_mix_message(
                            param_suffix,
                            arg_suffix,
                            f"call to {display}() binds {arg_name!r} to "
                            f"parameter {param!r};",
                        ),
                    )

        for assign in facts.suffixed_assigns:
            target_suffix = suffix_of(assign.target)
            func_suffix = suffix_of(assign.func)
            if target_suffix and func_suffix and target_suffix != func_suffix:
                yield Finding(
                    path=ctx.path,
                    line=assign.line,
                    col=assign.col,
                    rule="UNT005",
                    message=_mix_message(
                        target_suffix,
                        func_suffix,
                        f"assignment of {assign.func}()'s result to "
                        f"{assign.target!r}",
                    ),
                )


RULES = (FlowDeterminismRule(), FlowUnitsRule())
