"""Determinism rules (``DET``): no wall clock, no process-global RNG.

Byte-identical resume and cross-backend equivalence require that every
run of a scenario makes exactly the same decisions.  Wall-clock reads
(``time.time()``, ``datetime.now()``) and process-global random state
(the ``random`` stdlib module, legacy ``np.random.*`` functions) break
that: results then depend on when the run happened and on what else
drew from the shared generator.  Seeded randomness must flow through
:mod:`repro.sim.rng` (``make_rng`` / ``RngStream``), whose streams
derive from the experiment seed by name.

Exempt files:

* ``repro/__main__.py`` — CLI wall-clock *reporting* (``perf_counter``
  around a sweep) is legitimate; it never feeds simulation state.
* ``repro/lint/**`` — the linter itself.
* ``repro/sim/rng.py`` — the one sanctioned home of
  ``np.random.default_rng``.
* ``benchmarks/**`` and ``examples/**`` — wall-clock timing is the
  point there (benchmark guards, example scripts reporting elapsed
  time).

``random.Random(seed)`` — an *instance-local, explicitly seeded*
generator — is allowed (the property tests seed one per test); the
module-level functions and an unseeded ``Random()`` are what destroy
reproducibility.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.lint.engine import FileContext, Finding, Rule

# Sink vocabulary lives in the leaf module repro.lint.sinks (shared with
# the project graph's taint propagation); re-exported here for callers
# that treat the DET family as the source of truth.
from repro.lint.sinks import (
    GENERATOR_CONSTRUCTORS,
    LEGACY_NP_RANDOM,
    WALL_CLOCK_CALLS,
)

__all__ = [
    "GENERATOR_CONSTRUCTORS",
    "LEGACY_NP_RANDOM",
    "WALL_CLOCK_CALLS",
    "DeterminismRule",
    "RULES",
]


def _exempt(ctx: FileContext) -> bool:
    if ctx.basename == "__main__.py":
        return True
    for part in ("lint", "benchmarks", "examples"):
        if part in ctx.dir_parts:
            return True
    return False


class _AliasCollector(ast.NodeVisitor):
    """Maps local names to the dotted module paths they import."""

    def __init__(self) -> None:
        #: ``import time as t`` → {"t": "time"}
        self.modules: Dict[str, str] = {}
        #: ``from time import time as now`` → {"now": "time.time"}
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.modules[local] = alias.name if alias.asname else alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never reach stdlib time/random/numpy
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"


def _dotted(node: ast.AST, aliases: _AliasCollector) -> Optional[str]:
    """Resolve a Name/Attribute chain to its imported dotted path."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    if node.id in aliases.names:
        root = aliases.names[node.id]
    elif node.id in aliases.modules:
        root = aliases.modules[node.id]
    else:
        return None
    return ".".join([root, *reversed(parts)]) if parts else root


class DeterminismRule(Rule):
    family = "determinism"
    invariant = (
        "simulation results depend only on the scenario and its seed — "
        "never on wall-clock time or process-global RNG state"
    )
    catalog = {
        "DET001": (
            "wall-clock read (time.time/monotonic/perf_counter, "
            "datetime.now) in simulation code — results must not depend "
            "on when the run happened; simulated time comes from sim.clock"
        ),
        "DET002": (
            "stdlib `random` is process-global state — draw from a "
            "seeded repro.sim.rng stream instead"
        ),
        "DET003": (
            "legacy np.random.* call uses the process-global generator — "
            "draw from a seeded repro.sim.rng stream instead"
        ),
        "DET004": (
            "RNG constructed outside repro.sim.rng — use "
            "make_rng(seed, name)/RngStream so streams derive from the "
            "experiment seed"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if _exempt(ctx):
            return
        aliases = _AliasCollector()
        aliases.visit(ctx.tree)
        is_rng_module = ctx.ends_with("sim", "rng.py")

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, aliases)
            if dotted is None:
                continue
            if dotted in WALL_CLOCK_CALLS:
                yield ctx.finding(
                    node,
                    "DET001",
                    f"wall-clock call {dotted}() in simulation code; "
                    "simulated time must come from the engine clock",
                )
            elif dotted == "random" or dotted.startswith("random."):
                if dotted == "random.Random" and (node.args or node.keywords):
                    continue  # instance-local, explicitly seeded: fine
                detail = (
                    "unseeded random.Random()"
                    if dotted == "random.Random"
                    else f"{dotted}()"
                )
                yield ctx.finding(
                    node,
                    "DET002",
                    f"{detail} uses process-global / unseeded stdlib "
                    "randomness; seed an instance explicitly or draw from "
                    "a repro.sim.rng stream",
                )
            elif (
                dotted.startswith("numpy.random.")
                and dotted.rsplit(".", 1)[1] in LEGACY_NP_RANDOM
            ):
                yield ctx.finding(
                    node,
                    "DET003",
                    f"{dotted}() uses numpy's process-global generator; "
                    "draw from a seeded repro.sim.rng stream",
                )
            elif dotted in GENERATOR_CONSTRUCTORS and not is_rng_module:
                detail = (
                    "unseeded " if not node.args and not node.keywords else ""
                )
                yield ctx.finding(
                    node,
                    "DET004",
                    f"{detail}{dotted}(...) bypasses the seed-derivation "
                    "scheme; construct RNGs via repro.sim.rng.make_rng / "
                    "RngStream",
                )


RULES = (DeterminismRule(),)
