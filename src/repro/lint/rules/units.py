"""Unit-suffix rules (``UNT``): don't mix kW into a kJ accumulator.

The repo's energy/carbon accounting (DynamoLLM Figures 6/14-16) lives
or dies on unit discipline: W vs kW, Wh vs kWh, kgCO2/kWh.  The
convention is a *suffix vocabulary* — a name ending in one of

    ``_s`` ``_ms`` (time)   ``_w`` ``_kw`` (power)
    ``_j`` ``_wh`` ``_kwh`` (energy)   ``_kg`` (mass)   ``_usd`` (currency)

declares its unit, and two names with *different* suffixes must not
meet in ``+``/``-``, comparisons, plain assignment or ``+=``/``-=``
without an explicit conversion in between.

The rules only fire when **both** sides carry a known suffix — a
function call, arithmetic expression or unsuffixed name has unknown
units and passes.  That makes any conversion an automatic escape hatch:
``total_kwh = wh_to_kwh(step_wh)`` and ``total_wh + step_kwh * 1000.0``
are both fine because a call/expression has no suffix.  Name conversion
helpers ``convert_*`` or ``<unit>_to_<unit>`` so intent is readable.

Denominator suffixes are not quantities: ``price_per_kwh`` is USD/kWh,
not an energy, so ``*_per_<suffix>`` names are treated as unsuffixed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule

#: Longest-match-first suffix vocabulary → dimension.
SUFFIX_DIMENSIONS: Tuple[Tuple[str, str], ...] = (
    ("_kwh", "energy"),
    ("_usd", "currency"),
    ("_ms", "time"),
    ("_kg", "mass"),
    ("_wh", "energy"),
    ("_kw", "power"),
    ("_j", "energy"),
    ("_s", "time"),
    ("_w", "power"),
)


def suffix_of(name: str) -> Optional[str]:
    """The unit suffix a name declares, or ``None``.

    ``*_per_<suffix>`` names (rates with the unit in the denominator)
    and bare suffixes (a variable literally named ``s`` has no stem) are
    unsuffixed.
    """
    lowered = name.lower()
    for suffix, _ in SUFFIX_DIMENSIONS:
        if lowered.endswith(suffix):
            stem = lowered[: -len(suffix)]
            if not stem or stem.endswith("_per"):
                return None
            return suffix
    return None


def dimension_of(suffix: str) -> str:
    return dict(SUFFIX_DIMENSIONS)[suffix]


def _expr_suffix(node: ast.AST) -> Optional[str]:
    """Suffix of a plain name/attribute; anything else is unknown."""
    if isinstance(node, ast.Name):
        return suffix_of(node.id)
    if isinstance(node, ast.Attribute):
        return suffix_of(node.attr)
    return None


def _mix_message(left: str, right: str, context: str) -> str:
    if dimension_of(left) == dimension_of(right):
        return (
            f"{context} mixes {left!r} and {right!r}: same dimension, "
            "different scales — convert explicitly (e.g. a convert_*/"
            "*_to_* helper or an inline factor)"
        )
    return (
        f"{context} mixes {left!r} ({dimension_of(left)}) and {right!r} "
        f"({dimension_of(right)}): incompatible dimensions"
    )


_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


class UnitSuffixRule(Rule):
    family = "units"
    invariant = (
        "names with different unit suffixes never meet in arithmetic, "
        "comparison or binding without an explicit conversion"
    )
    catalog = {
        "UNT001": (
            "additive arithmetic or comparison between names with "
            "different unit suffixes"
        ),
        "UNT002": (
            "assignment (or keyword argument) binds a value to a name "
            "with a different unit suffix"
        ),
        "UNT003": (
            "augmented +=/-= accumulates a value with a different unit "
            "suffix into the target"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "lint" in ctx.dir_parts:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = _expr_suffix(node.left)
                right = _expr_suffix(node.right)
                if left and right and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield ctx.finding(
                        node, "UNT001", _mix_message(left, right, f"`{op}`")
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for index, op in enumerate(node.ops):
                    if not isinstance(op, _COMPARE_OPS):
                        continue
                    left = _expr_suffix(operands[index])
                    right = _expr_suffix(operands[index + 1])
                    if left and right and left != right:
                        yield ctx.finding(
                            node,
                            "UNT001",
                            _mix_message(left, right, "comparison"),
                        )
            elif isinstance(node, ast.Assign):
                value = _expr_suffix(node.value)
                if value is None:
                    continue
                for target in node.targets:
                    target_suffix = _expr_suffix(target)
                    if target_suffix and target_suffix != value:
                        yield ctx.finding(
                            node,
                            "UNT002",
                            _mix_message(target_suffix, value, "assignment"),
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = _expr_suffix(node.value)
                target_suffix = _expr_suffix(node.target)
                if value and target_suffix and target_suffix != value:
                    yield ctx.finding(
                        node,
                        "UNT002",
                        _mix_message(target_suffix, value, "assignment"),
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                value = _expr_suffix(node.value)
                target_suffix = _expr_suffix(node.target)
                if value and target_suffix and target_suffix != value:
                    op = "+=" if isinstance(node.op, ast.Add) else "-="
                    yield ctx.finding(
                        node,
                        "UNT003",
                        _mix_message(target_suffix, value, f"`{op}`"),
                    )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    param = suffix_of(keyword.arg)
                    value = _expr_suffix(keyword.value)
                    if param and value and param != value:
                        yield ctx.finding(
                            keyword.value,
                            "UNT002",
                            _mix_message(
                                param, value, f"keyword `{keyword.arg}=`"
                            ),
                        )


RULES = (UnitSuffixRule(),)
