"""Concurrency rules (``CNC``): executor-submitted callables stay pure.

The sweep executors (:mod:`repro.api.executor`,
:mod:`repro.api.campaign`) fan scenarios out over thread/process pools
and stream results through a single :class:`~repro.api.sinks.ResultSink`
on the **consuming** side of ``as_completed``.  Three hazards this
family catches:

* mutable default arguments — shared across every call, including calls
  racing on a thread pool;
* ``pool.submit(lambda: ...)`` — the lambda closes over loop variables
  and shared mutable state by *reference*, so by the time the pool runs
  it, the captured values may have moved on;
* a function handed to ``submit`` that writes a result sink — sinks are
  single-writer by contract (one open file handle, `count` bookkeeping),
  so writes belong on the consuming side of ``as_completed``, never
  inside the submitted job.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.engine import FileContext, Finding, Rule

_MUTABLE_CALLS = frozenset({"list", "dict", "set"})
_SINK_WRITERS = frozenset({"write", "write_error"})


def _mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    )


def _submitted_names(tree: ast.AST) -> Set[str]:
    """Names of functions passed (directly or via partial) to ``.submit``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            continue
        target = node.args[0]
        if (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Name)
            and target.func.id == "partial"
            and target.args
        ):
            target = target.args[0]
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


class ConcurrencyRule(Rule):
    family = "concurrency"
    invariant = (
        "work fanned out to executor pools is pure: no shared mutable "
        "defaults, no by-reference captures, sinks written only by the "
        "as_completed consumer"
    )
    catalog = {
        "CNC001": (
            "mutable default argument ([]/{}/set()) is shared across "
            "calls — and across pool workers; default to None and build "
            "inside the function"
        ),
        "CNC002": (
            "lambda submitted to an executor pool captures enclosing "
            "state by reference; submit a named function with explicit "
            "arguments instead"
        ),
        "CNC003": (
            "callable submitted to an executor pool writes a result "
            "sink; sinks are single-writer — write from the consuming "
            "side of as_completed"
        ),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "lint" in ctx.dir_parts:
            return
        submitted = _submitted_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                defaults: List[ast.AST] = list(args.defaults) + [
                    default for default in args.kw_defaults if default is not None
                ]
                for default in defaults:
                    if _mutable_default(default):
                        name = getattr(node, "name", "<lambda>")
                        yield ctx.finding(
                            default,
                            "CNC001",
                            f"mutable default argument in {name}(); the "
                            "object is created once and shared by every "
                            "call (and every pool worker)",
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
                and isinstance(node.args[0], ast.Lambda)
            ):
                yield ctx.finding(
                    node.args[0],
                    "CNC002",
                    "lambda passed to .submit() closes over enclosing "
                    "variables by reference; pass a named function and "
                    "explicit arguments",
                )
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in submitted
            ):
                yield from self._sink_writes(ctx, node)

    def _sink_writes(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SINK_WRITERS
            ):
                continue
            base = node.func.value
            if isinstance(base, ast.Name) and "sink" in base.id.lower():
                yield ctx.finding(
                    node,
                    "CNC003",
                    f"{func.name}() is submitted to an executor pool but "
                    f"writes `{base.id}.{node.func.attr}(...)`; result "
                    "sinks are single-writer — hand results back and "
                    "write them from the as_completed consumer",
                )


RULES = (ConcurrencyRule(),)
