"""Rule engine: file walking, AST dispatch, suppression and filtering.

The engine is deliberately small: it parses each file once, hands the
tree to every registered :class:`Rule`, and post-processes the emitted
:class:`Finding` objects (per-line ``# repro-lint: disable=...``
suppressions, ``--select`` / ``--ignore`` filtering).  Rules are
plugins: a rule family lives in one module under
:mod:`repro.lint.rules`, subclasses :class:`Rule`, declares the finding
ids it can emit in ``catalog``, and yields findings from ``check``.

A *project pre-pass* runs before any rule: it collects the names of
every ``@dataclass(frozen=True)`` class across the linted file set into
:attr:`ProjectContext.frozen_classes`, so the immutability rules know
the domain's frozen types (``Scenario``, ``TraceSpec``, ``Event``, ...)
without hard-coding the whole list.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from repro.lint.cache import LintCache
    from repro.lint.graph import ModuleFacts, ProjectGraph

#: Finding id used for files the engine cannot parse at all.
PARSE_ERROR_ID = "E001"


class LintUsageError(ValueError):
    """A caller mistake (exit code 2), not a finding: e.g. explicitly
    passing a non-Python file to lint."""

#: Directory names never descended into while walking a directory
#: argument.  ``lint_fixtures`` holds *deliberate* violations for the
#: golden tests — explicitly-passed file paths are always linted, so the
#: fixture tests still reach them.
EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".eggs",
        "build",
        "dist",
        "lint_fixtures",
    }
)

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable=([A-Za-z0-9_,\s]+)", re.IGNORECASE
)


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordered by (path, line, col, rule) so reports and golden files are
    stable regardless of rule registration order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclasses.dataclass
class ProjectContext:
    """Cross-file facts collected before rules run."""

    #: Names of every ``@dataclass(frozen=True)`` class seen in the
    #: linted file set, unioned with the domain anchors the immutability
    #: rules must know even on single-file runs.
    frozen_classes: Set[str] = dataclasses.field(default_factory=set)
    #: Whole-program view (import graph, call graph, determinism taint,
    #: layering) assembled by :mod:`repro.lint.graph` before rules run.
    graph: Optional["ProjectGraph"] = None


class FileContext:
    """Everything a rule needs about one file."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.AST,
        project: ProjectContext,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.project = project
        self.rel_parts = _relative_parts(path)

    @property
    def dir_parts(self) -> Tuple[str, ...]:
        """Path components of the containing directory (for scoping)."""
        return self.rel_parts[:-1]

    @property
    def basename(self) -> str:
        return self.rel_parts[-1] if self.rel_parts else self.path

    def ends_with(self, *parts: str) -> bool:
        """True when the normalised path ends with ``parts``."""
        return self.rel_parts[-len(parts):] == tuple(parts)

    @property
    def module_facts(self) -> Optional["ModuleFacts"]:
        """This file's record in the project graph (``None`` without one)."""
        if self.project.graph is None:
            return None
        return self.project.graph.by_path.get(self.path)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def _relative_parts(path: str) -> Tuple[str, ...]:
    """Path components after the innermost ``repro``/``src`` marker.

    ``/root/repo/src/repro/sim/rng.py`` → ``("sim", "rng.py")`` and
    ``tests/test_api.py`` → ``("tests", "test_api.py")``, so rules can
    scope themselves by package regardless of how the path was spelled.
    """
    parts = tuple(p for p in os.path.normpath(path).split(os.sep) if p not in ("", "."))
    for marker in ("repro", "src"):
        if marker in parts[:-1]:
            # Innermost occurrence: len(parts[:-1]) - 1 - reversed-index.
            position = len(parts) - 2 - tuple(reversed(parts[:-1])).index(marker)
            return parts[position + 1 :]
    return parts


class Rule:
    """Base class for one rule family.

    Subclasses set ``family`` (short kebab-case name), ``invariant``
    (the one-line property the family defends, shown by
    ``--list-rules``) and ``catalog`` (finding id → one-line
    description; the ids the family can emit) and implement
    :meth:`check`.
    """

    family: str = ""
    invariant: str = ""
    catalog: Dict[str, str] = {}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    #: Files whose findings were served from the incremental cache.
    files_reused: int = 0
    #: The linted file paths, as given (baseline stale-checks scope to
    #: these: a baseline entry for an unlinted file is never "stale").
    paths: Tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "files_reused": self.files_reused,
        }


# ----------------------------------------------------------------------
# Selection / suppression
# ----------------------------------------------------------------------
def _normalise_ids(ids: Optional[Iterable[str]]) -> Optional[Tuple[str, ...]]:
    if ids is None:
        return None
    flat: List[str] = []
    for entry in ids:
        flat.extend(part.strip().upper() for part in entry.split(",") if part.strip())
    return tuple(flat) or None

def rule_selected(
    rule_id: str,
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> bool:
    """Prefix-matched filtering: ``DET`` selects the whole family.

    ``select`` keeps only matching ids (``None`` keeps all); ``ignore``
    then drops matching ids.  Ignore wins on overlap, mirroring every
    mainstream linter.  The parse-error pseudo-rule is never filtered
    out by ``select`` (an unparsable file is broken regardless of which
    families the caller asked for) but can be explicitly ignored.
    """
    rule_id = rule_id.upper()
    if ignore and any(rule_id.startswith(prefix) for prefix in ignore):
        return False
    if rule_id == PARSE_ERROR_ID:
        return True
    if select is None:
        return True
    return any(rule_id.startswith(prefix) for prefix in select)

def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line suppression sets: line number → upper-cased ids.

    ``# repro-lint: disable=UNT001`` suppresses that id on its physical
    line; ``disable=UNT001,DET002`` lists several; ``disable=all``
    suppresses everything on the line.  The comment must sit on the
    *first* line of the flagged statement (where the finding points).
    """
    suppressions: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match:
            ids = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
            if ids:
                suppressions[number] = ids
    return suppressions

def _suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return "ALL" in ids or finding.rule.upper() in ids


# ----------------------------------------------------------------------
# Project pre-pass
# ----------------------------------------------------------------------
def collect_frozen_classes(tree: ast.AST) -> Set[str]:
    """Names of ``@dataclass(frozen=True)`` classes defined in ``tree``."""
    frozen: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _has_frozen_decorator(node):
            frozen.add(node.name)
    return frozen

def _has_frozen_decorator(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


# ----------------------------------------------------------------------
# Walking and running
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files and directories into the ``.py`` files to lint.

    Directories are walked recursively, skipping :data:`EXCLUDED_DIRS`
    and hidden directories; explicitly-named files are always yielded
    (that is how the fixture tests lint the deliberate violations under
    ``tests/lint_fixtures/``).
    """
    seen: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in EXCLUDED_DIRS and not d.startswith(".")
                    and not d.endswith(".egg-info")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(dirpath, filename)
                        if full not in seen:
                            seen.add(full)
                            yield full
        elif path not in seen:
            if not os.path.exists(path):
                raise FileNotFoundError(
                    f"cannot lint {path!r}: no such file or directory"
                )
            if not path.endswith(".py"):
                raise LintUsageError(
                    f"cannot lint {path!r}: not a Python file (directories "
                    "are walked for *.py files; explicitly-passed files "
                    "must end in .py)"
                )
            seen.add(path)
            yield path

def default_rules() -> List[Rule]:
    from repro.lint.rules import ALL_RULES

    return list(ALL_RULES)

def rule_catalog() -> Dict[str, str]:
    """Every finding id the registered rules can emit, with descriptions."""
    catalog: Dict[str, str] = {
        PARSE_ERROR_ID: "file could not be parsed as Python"
    }
    for rule in default_rules():
        catalog.update(rule.catalog)
    return dict(sorted(catalog.items()))

def _lint_tree(ctx: FileContext, rules: Sequence[Rule]) -> Tuple[List[Finding], int]:
    """Run every rule on one file: (unfiltered findings, suppressed count).

    Suppressions are applied here (they are a per-file fact, so the
    result is cacheable); ``--select``/``--ignore`` filtering happens in
    the caller, on top of cached or fresh findings alike.
    """
    suppressions = parse_suppressions(ctx.source)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if _suppressed(finding, suppressions):
                suppressed += 1
                continue
            kept.append(finding)
    return kept, suppressed

def _parse_error_finding(path: str, error: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=error.lineno or 1,
        col=(error.offset or 0) + 1,
        rule=PARSE_ERROR_ID,
        message=f"syntax error: {error.msg}",
    )

def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project: Optional[ProjectContext] = None,
) -> List[Finding]:
    """Lint one source string (the unit-test entry point).

    Without a ``project``, a single-file project graph is assembled so
    the whole-program families (ARC/flow) see intra-file facts.
    """
    from repro.lint.graph import build_project_graph, extract_module_facts

    select = _normalise_ids(select)
    ignore = _normalise_ids(ignore)
    rules = list(rules) if rules is not None else default_rules()
    if project is None:
        project = ProjectContext()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        finding = _parse_error_finding(path, error)
        return [finding] if rule_selected(PARSE_ERROR_ID, select, ignore) else []
    facts = extract_module_facts(path, tree)
    project.frozen_classes |= set(facts.frozen_classes)
    if project.graph is None:
        project.graph = build_project_graph([facts])
    ctx = FileContext(path, source, tree, project)
    findings, _ = _lint_tree(ctx, rules)
    return sorted(
        f for f in findings if rule_selected(f.rule, select, ignore)
    )

def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
    cache: Union["LintCache", str, None] = None,
) -> LintReport:
    """Lint files/directories and return the filtered, sorted report.

    ``cache`` (a path or a :class:`~repro.lint.cache.LintCache`) enables
    the incremental cache; it is ignored when a custom ``rules`` list is
    passed, since cached findings would not reflect it.
    """
    from repro.lint.cache import LintCache, content_hash
    from repro.lint.graph import (
        ModuleFacts,
        build_project_graph,
        extract_module_facts,
        facts_from_dict,
    )

    select = _normalise_ids(select)
    ignore = _normalise_ids(ignore)
    custom_rules = rules is not None
    rules = list(rules) if rules is not None else default_rules()
    store: Optional[LintCache] = None
    if cache is not None and not custom_rules:
        store = cache if isinstance(cache, LintCache) else LintCache(cache)

    # Pass 1: read every file, reusing cached per-file facts (no parse)
    # where the content hash matches; parse + extract the rest.
    parsed: List[
        Tuple[str, str, str, Optional[ast.AST], Optional[ModuleFacts], Optional[Finding]]
    ] = []
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise FileNotFoundError(
                f"cannot lint {path!r}: {error.strerror or error}"
            ) from None
        digest = content_hash(source)
        key = os.path.abspath(path)
        tree: Optional[ast.AST] = None
        facts: Optional[ModuleFacts] = None
        parse_error: Optional[Finding] = None
        cached = store.facts_for(key, digest) if store is not None else None
        if cached is not None:
            facts_dict, error_dict = cached
            if facts_dict is not None:
                facts = dataclasses.replace(
                    facts_from_dict(facts_dict), path=path
                )
            elif error_dict is not None:
                parse_error = Finding(
                    path=path,
                    line=int(error_dict["line"]),  # type: ignore[arg-type]
                    col=int(error_dict["col"]),  # type: ignore[arg-type]
                    rule=PARSE_ERROR_ID,
                    message=str(error_dict["message"]),
                )
        else:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as error:
                parse_error = _parse_error_finding(path, error)
            else:
                facts = extract_module_facts(path, tree)
            if store is not None:
                store.store_facts(
                    key,
                    digest,
                    facts.to_dict() if facts is not None else None,
                    {
                        "line": parse_error.line,
                        "col": parse_error.col,
                        "message": parse_error.message,
                    }
                    if parse_error is not None
                    else None,
                )
        parsed.append((path, source, digest, tree, facts, parse_error))

    # Pass 2: assemble the whole-program graph — import graph, call
    # graph, determinism taint, layering — and the cross-file facts
    # hash that keys the per-file results cache.
    graph = build_project_graph(
        [facts for *_, facts, _ in parsed if facts is not None]
    )
    project = ProjectContext(
        frozen_classes={
            name
            for *_, facts, _ in parsed
            if facts is not None
            for name in facts.frozen_classes
        },
        graph=graph,
    )

    # Pass 3: per-file rule runs, served from the results cache where
    # (content hash, facts hash) both match.
    findings: List[Finding] = []
    suppressed = 0
    reused = 0
    for path, source, digest, tree, facts, parse_error in parsed:
        if facts is None:
            if parse_error is not None and rule_selected(
                PARSE_ERROR_ID, select, ignore
            ):
                findings.append(parse_error)
            continue
        key = os.path.abspath(path)
        raw: List[Finding]
        cached_results = (
            store.results_for(key, digest, graph.facts_hash)
            if store is not None
            else None
        )
        if cached_results is not None:
            raw = [
                Finding(
                    path=path,
                    line=int(entry["line"]),  # type: ignore[arg-type, index, call-overload]
                    col=int(entry["col"]),  # type: ignore[arg-type, index, call-overload]
                    rule=str(entry["rule"]),  # type: ignore[index, call-overload]
                    message=str(entry["message"]),  # type: ignore[index, call-overload]
                )
                for entry in cached_results["findings"]  # type: ignore[union-attr, index]
            ]
            file_suppressed = int(cached_results["suppressed"])  # type: ignore[arg-type, index, call-overload]
            reused += 1
        else:
            if tree is None:
                tree = ast.parse(source, filename=path)
            ctx = FileContext(path, source, tree, project)
            raw, file_suppressed = _lint_tree(ctx, rules)
            raw.sort()
            if store is not None:
                store.store_results(
                    key,
                    digest,
                    graph.facts_hash,
                    [
                        {
                            "line": f.line,
                            "col": f.col,
                            "rule": f.rule,
                            "message": f.message,
                        }
                        for f in raw
                    ],
                    file_suppressed,
                )
        suppressed += file_suppressed
        findings.extend(
            f for f in raw if rule_selected(f.rule, select, ignore)
        )
    if store is not None:
        store.save()
    return LintReport(
        findings=sorted(findings),
        files_checked=len(parsed),
        suppressed=suppressed,
        files_reused=reused,
        paths=tuple(entry[0] for entry in parsed),
    )
