"""Findings ratchet: adopt stricter rules without a flag day.

A *baseline* is a reviewed inventory of the findings the tree is known
to carry (``lint_baseline.json``, committed next to the code).  With
``--baseline``, a lint run fails only on findings **not** in the
inventory — new debt is blocked the moment it is introduced, while the
documented debt is paid down incrementally.  The ratchet only turns one
way: a baselined finding that no longer occurs makes its entry *stale*,
and stale entries fail the run until pruned with ``--update-baseline``
— the baseline can shrink but never silently pad itself.

Fingerprints are ``(path, rule, message)`` with an occurrence count —
deliberately **not** line numbers, so unrelated edits above a baselined
finding don't break CI.  Paths are stored relative to the baseline
file's directory (the repo root in practice), so the file is stable
across checkouts.

Partial runs are safe: staleness is only assessed for entries whose
file was actually linted in this run (or whose file no longer exists) —
a pre-commit invocation that lints two files cannot invalidate entries
for the other two hundred.  ``--update-baseline`` likewise rewrites
only the linted files' entries and carries the rest forward unchanged,
and is idempotent: updating twice writes byte-identical JSON.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Dict, List, Tuple

from repro.lint.engine import Finding, LintReport, LintUsageError

#: Bump on any change to the on-disk baseline layout.
BASELINE_FORMAT_VERSION = "repro-lint-baseline-v1"

#: (relative path, rule id, message) — the identity of a finding for
#: ratchet purposes.  Line/column excluded on purpose.
FingerprintKey = Tuple[str, str, str]


def _relative(path: str, base_dir: str) -> str:
    """Finding/linted path -> baseline-relative posix path."""
    rel = os.path.relpath(os.path.abspath(path), base_dir)
    return rel.replace(os.sep, "/")


def fingerprint(finding: Finding, base_dir: str) -> FingerprintKey:
    return (_relative(finding.path, base_dir), finding.rule, finding.message)


@dataclasses.dataclass
class Baseline:
    """Parsed baseline file: fingerprint -> expected occurrence count."""

    path: str
    entries: Dict[FingerprintKey, int] = dataclasses.field(default_factory=dict)
    #: True when the file existed on disk (an absent baseline is empty:
    #: every finding is new).
    existed: bool = False

    @property
    def base_dir(self) -> str:
        return os.path.dirname(os.path.abspath(self.path))

    def total(self) -> int:
        return sum(self.entries.values())


@dataclasses.dataclass(frozen=True)
class BaselineResult:
    """Outcome of subtracting a baseline from a report."""

    #: Findings not covered by the baseline — these fail the run.
    new_findings: Tuple[Finding, ...]
    #: Findings absorbed by the baseline.
    matched: int
    #: Baseline entries (fingerprint, missing count) whose finding no
    #: longer occurs — the ratchet: these fail the run until pruned.
    stale: Tuple[Tuple[FingerprintKey, int], ...]

    @property
    def clean(self) -> bool:
        return not self.new_findings and not self.stale


def load_baseline(path: str) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    baseline = Baseline(path=path)
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return baseline
    except (OSError, ValueError) as error:
        raise LintUsageError(f"unreadable baseline {path!r}: {error}") from None
    if not isinstance(data, dict) or data.get("version") != BASELINE_FORMAT_VERSION:
        raise LintUsageError(
            f"baseline {path!r} is not a {BASELINE_FORMAT_VERSION} document"
        )
    findings = data.get("findings")
    if not isinstance(findings, list):
        raise LintUsageError(f"baseline {path!r}: 'findings' must be a list")
    baseline.existed = True
    for entry in findings:
        if not isinstance(entry, dict):
            raise LintUsageError(f"baseline {path!r}: malformed entry {entry!r}")
        try:
            key = (
                str(entry["path"]),
                str(entry["rule"]),
                str(entry["message"]),
            )
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError):
            raise LintUsageError(
                f"baseline {path!r}: malformed entry {entry!r}"
            ) from None
        if count < 1:
            raise LintUsageError(
                f"baseline {path!r}: entry for {key[0]!r} has count {count}"
            )
        baseline.entries[key] = baseline.entries.get(key, 0) + count
    return baseline


def _linted_relpaths(report: LintReport, base_dir: str) -> frozenset[str]:
    return frozenset(_relative(path, base_dir) for path in report.paths)


def apply_baseline(report: LintReport, baseline: Baseline) -> BaselineResult:
    """Subtract the baseline from a report.

    Exact subtraction: each baseline entry absorbs at most ``count``
    occurrences of its fingerprint; occurrences beyond the count — and
    any fingerprint not in the baseline — are new findings.  Entries
    whose file was linted this run but whose finding occurred fewer
    times than recorded are stale (so are entries whose file is gone).
    """
    base_dir = baseline.base_dir
    remaining = dict(baseline.entries)
    new: List[Finding] = []
    matched = 0
    for finding in report.findings:
        key = fingerprint(finding, base_dir)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(finding)
    linted = _linted_relpaths(report, base_dir)
    stale: List[Tuple[FingerprintKey, int]] = []
    for key in sorted(baseline.entries):
        missing = remaining.get(key, 0)
        if missing <= 0:
            continue
        rel_path = key[0]
        if rel_path in linted:
            stale.append((key, missing))
        elif not os.path.exists(os.path.join(base_dir, rel_path)):
            stale.append((key, missing))
    return BaselineResult(
        new_findings=tuple(new), matched=matched, stale=tuple(stale)
    )


def update_baseline(report: LintReport, baseline: Baseline) -> bool:
    """Rewrite the baseline from the report; returns True if it changed.

    Entries for files linted in this run are replaced by the run's
    findings; entries for un-linted files that still exist are carried
    forward (partial updates never drop sibling debt).  The write is
    atomic and the output canonical (sorted), so back-to-back updates
    are byte-identical.
    """
    base_dir = baseline.base_dir
    linted = _linted_relpaths(report, base_dir)
    merged: Dict[FingerprintKey, int] = {}
    for key, count in baseline.entries.items():
        if key[0] in linted:
            continue
        if not os.path.exists(os.path.join(base_dir, key[0])):
            continue
        merged[key] = count
    for finding in report.findings:
        key = fingerprint(finding, base_dir)
        merged[key] = merged.get(key, 0) + 1
    changed = merged != baseline.entries or not baseline.existed
    payload = {
        "version": BASELINE_FORMAT_VERSION,
        "findings": [
            {"path": path, "rule": rule, "message": message, "count": count}
            for (path, rule, message), count in sorted(merged.items())
        ],
    }
    directory = base_dir or "."
    fd, temp_path = tempfile.mkstemp(prefix=".lint-baseline-", dir=directory)
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, os.path.abspath(baseline.path))
    baseline.entries = merged
    baseline.existed = True
    return changed
