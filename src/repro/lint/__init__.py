"""`repro lint` — whole-program static analysis for the reproduction.

The repo's headline guarantees (byte-identical resume, golden-pinned
figure tables, cross-backend equivalence) rest on invariants that are
easy to break silently: a policy calling ``time.time()``, a new
observer seeding from wall clock, kW mixed into a kJ accumulator, a
frozen :class:`~repro.api.scenario.Scenario` mutated after
construction.  This package checks those invariants *statically*, before
any simulation runs.

The engine runs in two passes: pass one parses every file and extracts
per-module facts (imports, function signatures, sink calls, suffixed
assignments — :mod:`repro.lint.graph`); pass two assembles the
project-wide import and call graphs, propagates determinism taint and
detects import cycles; then the per-file rules run with the whole
program visible.

Six rule families (see :mod:`repro.lint.rules`):

* **determinism** (``DET``) — no wall-clock reads, no process-global
  RNG; seeded randomness must flow through :mod:`repro.sim.rng`.
* **units** (``UNT``) — the suffix vocabulary (``_s``/``_ms``/``_w``/
  ``_kw``/``_wh``/``_j``/``_kwh``/``_kg``/``_usd``) must not mix across
  arithmetic, comparisons or assignments without an explicit conversion.
* **concurrency** (``CNC``) — callables submitted to executor pools must
  not use mutable default arguments or capture state via lambdas, and
  result sinks are written only from the consuming side of
  ``as_completed``.
* **immutability** (``IMM``) — no attribute assignment on frozen
  dataclasses outside ``__post_init__``.
* **architecture** (``ARC``) — the declared layering
  (``sim/llm/core/workload/perf`` → ``metrics/policies/cluster`` →
  ``api/experiments`` → ``lint``) admits no upward imports, no import
  cycles, and no cross-package reach into ``_private`` names.
* **flow** (``DET005``, ``UNT004``/``UNT005``) — interprocedural:
  simulation code must not reach a wall-clock/global-RNG sink through
  any chain of wrappers, and unit suffixes must agree across call
  bindings and returned values.

Pre-existing findings are ratcheted via ``lint_baseline.json``
(:mod:`repro.lint.baseline`): CI fails only on *new* findings, and the
baseline may only shrink.  Re-runs are incremental through an on-disk
cache (:mod:`repro.lint.cache`) keyed by file content and the
cross-file facts hash.

Run it with ``python -m repro lint [paths]`` (or the ``repro-lint``
console script).  Per-line suppressions: ``# repro-lint: disable=RULE``
(comma-separated ids, or ``all``) on the flagged line — note a
suppressed sink still taints its callers (a waiver is not a proof).
"""

from repro.lint.engine import (
    Finding,
    LintReport,
    Rule,
    lint_paths,
    lint_source,
    rule_catalog,
)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "lint_paths",
    "lint_source",
    "rule_catalog",
]
