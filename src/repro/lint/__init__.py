"""`repro lint` — domain-aware static analysis for the reproduction.

The repo's headline guarantees (byte-identical resume, golden-pinned
figure tables, cross-backend equivalence) rest on invariants that are
easy to break silently: a policy calling ``time.time()``, a new
observer seeding from wall clock, kW mixed into a kJ accumulator, a
frozen :class:`~repro.api.scenario.Scenario` mutated after
construction.  This package checks those invariants *statically*, before
any simulation runs.

Four rule families (see :mod:`repro.lint.rules`):

* **determinism** (``DET``) — no wall-clock reads, no process-global
  RNG; seeded randomness must flow through :mod:`repro.sim.rng`.
* **units** (``UNT``) — the suffix vocabulary (``_s``/``_ms``/``_w``/
  ``_kw``/``_wh``/``_j``/``_kwh``/``_kg``/``_usd``) must not mix across
  arithmetic, comparisons or assignments without an explicit conversion.
* **concurrency** (``CNC``) — callables submitted to executor pools must
  not use mutable default arguments or capture state via lambdas, and
  result sinks are written only from the consuming side of
  ``as_completed``.
* **immutability** (``IMM``) — no attribute assignment on frozen
  dataclasses outside ``__post_init__``.

Run it with ``python -m repro lint [paths]`` (or the ``repro-lint``
console script).  Per-line suppressions: ``# repro-lint: disable=RULE``
(comma-separated ids, or ``all``) on the flagged line.
"""

from repro.lint.engine import (
    Finding,
    LintReport,
    Rule,
    lint_paths,
    lint_source,
    rule_catalog,
)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "lint_paths",
    "lint_source",
    "rule_catalog",
]
