"""Command-line front end: ``python -m repro lint`` / ``repro-lint``.

Exit codes: 0 — no findings (or all findings baselined); 1 — new
findings or stale baseline entries reported; 2 — usage error (unknown
rule id, missing path, non-Python file, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import (
    BaselineResult,
    apply_baseline,
    load_baseline,
    update_baseline,
)
from repro.lint.engine import (
    PARSE_ERROR_ID,
    Finding,
    LintReport,
    default_rules,
    lint_paths,
    rule_catalog,
)

#: Default ratchet file, resolved relative to the current directory.
DEFAULT_BASELINE = "lint_baseline.json"


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Lint options, shared by the subcommand and the console script."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src); directories "
        "are walked recursively, skipping lint_fixtures/; explicitly "
        "named files must be .py",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="IDS",
        help="only report these rule ids (comma-separated; a family "
        "prefix like DET selects the family); repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="IDS",
        help="drop these rule ids (comma-separated, prefix-matched; "
        "wins over --select); repeatable",
    )
    parser.add_argument(
        "--format",
        dest="format",
        default="text",
        choices=("text", "json", "github"),
        help="report format: human-readable lines, a JSON document, or "
        "GitHub workflow ::error annotations",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help="subtract the reviewed findings inventory (ratchet): only "
        "new findings fail, and stale entries fail until pruned "
        f"(default file: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings (prunes "
        "stale entries for linted files) and exit 0",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=".repro-lint-cache.json",
        default=None,
        metavar="FILE",
        help="incremental cache file: unchanged files are served from "
        "cache, keyed by (content hash, project-facts hash) "
        "(default file: .repro-lint-cache.json)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog grouped by family (with each "
        "family's invariant) and exit 0",
    )


def _known_prefixes() -> List[str]:
    catalog = rule_catalog()
    prefixes = set(catalog)
    prefixes.update(rule_id[:3] for rule_id in catalog)
    return sorted(prefixes)


def _validate_ids(entries: Optional[Sequence[str]], option: str) -> None:
    if not entries:
        return
    known = _known_prefixes()
    for entry in entries:
        for part in entry.split(","):
            part = part.strip().upper()
            if part and part not in known:
                raise ValueError(
                    f"{option} {part!r} matches no known rule id or family; "
                    f"known: {', '.join(known)}"
                )


def _print_rules() -> None:
    """The catalog, one block per family, invariant first."""
    print("engine")
    print("  invariant: every linted file parses as Python")
    print(f"  {PARSE_ERROR_ID}  file could not be parsed as Python")
    for rule in default_rules():
        print()
        print(rule.family)
        if rule.invariant:
            print(f"  invariant: {rule.invariant}")
        for rule_id, description in sorted(rule.catalog.items()):
            print(f"  {rule_id}  {description}")


def _escape_data(value: str) -> str:
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_property(value: str) -> str:
    return _escape_data(value).replace(":", "%3A").replace(",", "%2C")


def _github_annotation(finding: Finding) -> str:
    return (
        f"::error file={_escape_property(finding.path)},"
        f"line={finding.line},col={finding.col},"
        f"title={_escape_property(finding.rule)}::"
        f"{_escape_data(f'{finding.rule} {finding.message}')}"
    )


def _emit(
    report: LintReport,
    findings: Sequence[Finding],
    ratchet: Optional[BaselineResult],
    fmt: str,
) -> None:
    if fmt == "json":
        document: Dict[str, object] = {
            "findings": [finding.to_dict() for finding in findings],
            "files_checked": report.files_checked,
            "files_reused": report.files_reused,
            "suppressed": report.suppressed,
        }
        if ratchet is not None:
            document["baseline"] = {
                "matched": ratchet.matched,
                "stale": [
                    {
                        "path": path,
                        "rule": rule,
                        "message": message,
                        "missing": missing,
                    }
                    for (path, rule, message), missing in ratchet.stale
                ],
            }
        print(json.dumps(document, indent=2))
        return
    for finding in findings:
        print(
            _github_annotation(finding) if fmt == "github" else finding.format()
        )
    if ratchet is not None:
        for (path, rule, message), missing in ratchet.stale:
            text = (
                f"stale baseline entry: {path}: {rule} {message!r} "
                f"({missing} missing occurrence(s)) — the finding was "
                "fixed; prune it with --update-baseline"
            )
            if fmt == "github":
                print(
                    f"::error file={_escape_property(path)},"
                    f"title={_escape_property(rule + ' (stale baseline)')}::"
                    f"{_escape_data(text)}"
                )
            else:
                print(text)
    summary = (
        f"{len(findings)} finding(s) in {report.files_checked} file(s) "
        f"({report.suppressed} suppressed, {report.files_reused} from cache"
    )
    if ratchet is not None:
        summary += (
            f", {ratchet.matched} baselined, {len(ratchet.stale)} stale "
            "baseline entr(y/ies)"
        )
    summary += ")"
    print(summary, file=sys.stderr)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (the subcommand entry point)."""
    if args.list_rules:
        _print_rules()
        return 0
    _validate_ids(args.select, "--select")
    _validate_ids(args.ignore, "--ignore")
    baseline_path: Optional[str] = args.baseline
    if args.update_baseline and baseline_path is None:
        baseline_path = DEFAULT_BASELINE
    try:
        report = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            cache=args.cache,
        )
    except FileNotFoundError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2
    if baseline_path is None:
        _emit(report, report.findings, None, args.format)
        return report.exit_code
    baseline = load_baseline(baseline_path)
    if args.update_baseline:
        changed = update_baseline(report, baseline)
        state = "updated" if changed else "unchanged"
        print(
            f"baseline {baseline.path} {state}: {baseline.total()} "
            f"finding(s) across {len(baseline.entries)} entr(y/ies)",
            file=sys.stderr,
        )
        return 0
    ratchet = apply_baseline(report, baseline)
    _emit(report, ratchet.new_findings, ratchet, args.format)
    return 0 if ratchet.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-aware static analysis: determinism, unit-suffix, "
            "concurrency, immutability, architecture and whole-program "
            "flow rules for the DynamoLLM reproduction."
        ),
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run(args)
    except BrokenPipeError:
        # `repro-lint ... | head` closes stdout early: die quietly like
        # a well-behaved filter.  Redirect stdout to devnull so the
        # interpreter's shutdown flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ValueError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
